#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/async_simulation.hpp"
#include "core/gossip_simulation.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tanglefl::obs {
namespace {

TEST(Timeline, JsonlShapeAndKeyOrder) {
  Timeline timeline;
  timeline.begin_run("a");
  timeline.record(1, "zeta", 2.0);
  timeline.record(1, "alpha", 1.5);
  timeline.record(2, "alpha", 3.0);
  EXPECT_EQ(timeline.to_jsonl(),
            "{\"round\":1,\"run\":\"a\",\"alpha\":1.5,\"zeta\":2.0}\n"
            "{\"round\":2,\"run\":\"a\",\"alpha\":3.0}\n");
}

TEST(Timeline, CsvUnionWithEmptyCells) {
  Timeline timeline;
  timeline.begin_run("a");
  timeline.record(1, "x", 1.0);
  timeline.begin_run("b");
  timeline.record(1, "y", 2.5);
  EXPECT_EQ(timeline.to_csv(),
            "run,round,x,y\n"
            "a,1,1.0,\n"
            "b,1,,2.5\n");
}

TEST(Timeline, ReRecordOverwritesAndBeginRunResumes) {
  Timeline timeline;
  timeline.begin_run("a");
  timeline.record(1, "x", 1.0);
  timeline.begin_run("b");
  timeline.record(1, "x", 9.0);
  timeline.begin_run("a");  // resume, not a new run
  timeline.record(1, "x", 4.0);
  EXPECT_EQ(timeline.run_count(), 2u);
  EXPECT_EQ(timeline.to_jsonl(),
            "{\"round\":1,\"run\":\"a\",\"x\":4.0}\n"
            "{\"round\":1,\"run\":\"b\",\"x\":9.0}\n");
}

TEST(Timeline, UnnamedRunAndEmpty) {
  Timeline timeline;
  EXPECT_TRUE(timeline.empty());
  timeline.record(3, "x", 0.5);
  EXPECT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.to_jsonl(), "{\"round\":3,\"run\":\"\",\"x\":0.5}\n");
}

TEST(Timeline, CsvEscapesLabels) {
  Timeline timeline;
  timeline.begin_run("p=0.1, \"hot\"");
  timeline.record(1, "x", 1.0);
  EXPECT_EQ(timeline.to_csv(),
            "run,round,x\n\"p=0.1, \"\"hot\"\"\",1,1.0\n");
}

// Closed-form check: values {2,4,6,8} in buckets (-inf,4], (4,8] give
// bucket counts {2,2}. With the observed range [2,8] anchoring the first
// bucket, linear interpolation yields p50=4, p75=6, and p100 lands on the
// range maximum.
TEST(BucketQuantile, ClosedForm) {
  const std::vector<double> bounds = {4.0, 8.0};
  const std::vector<std::uint64_t> counts = {2, 2};
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, counts, 0.50, 2.0, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, counts, 0.75, 2.0, 8.0), 6.0);
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, counts, 1.00, 2.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, counts, 0.0, 2.0, 8.0), 2.0);
  // Empty histogram and out-of-range q degrade gracefully.
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, {0, 0}, 0.5, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket_quantile(bounds, counts, 1.5, 2.0, 8.0), 8.0);
}

TEST(BucketQuantile, SnapshotQuantileMatchesBucketMath) {
  MetricsRegistry registry;
  Histogram& hist =
      registry.histogram("test.values", BucketLayout::linear(4.0, 4.0, 2));
  for (const double v : {2.0, 4.0, 6.0, 8.0}) hist.record(v);
  const auto snap = registry.snapshot(SnapshotKind::kDeterministic);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.75), 6.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.99), 7.92);
}

TEST(RegistrySampler, CounterDeltasGaugeAbsolutes) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("test.hits");
  Gauge& level = registry.gauge("test.level");
  hits.add(3);  // pre-sampler traffic must not leak into round 1
  RegistrySampler sampler(registry);
  Timeline timeline;
  timeline.begin_run("r");

  hits.add(2);
  level.set(7.0);
  sampler.sample(timeline, 1);
  hits.add(5);
  level.set(6.0);
  sampler.sample(timeline, 2);

  EXPECT_EQ(timeline.to_jsonl(),
            "{\"round\":1,\"run\":\"r\",\"test.hits\":2.0,"
            "\"test.level\":7.0}\n"
            "{\"round\":2,\"run\":\"r\",\"test.hits\":5.0,"
            "\"test.level\":6.0}\n");
}

TEST(RegistrySampler, HistogramWindowedQuantiles) {
  MetricsRegistry registry;
  Histogram& hist =
      registry.histogram("test.lat", BucketLayout::linear(4.0, 4.0, 2));
  RegistrySampler sampler(registry);
  Timeline timeline;
  timeline.begin_run("r");

  for (const double v : {2.0, 4.0, 6.0, 8.0}) hist.record(v);
  sampler.sample(timeline, 1);
  sampler.sample(timeline, 2);  // empty window: no row at all

  // Closed-form windowed quantiles over the round's bucket deltas:
  // p50=4, p90=4+(1.6/2)*4=7.2, p99=4+(1.96/2)*4=7.92.
  EXPECT_EQ(timeline.to_jsonl(),
            "{\"round\":1,\"run\":\"r\",\"test.lat.count\":4.0,"
            "\"test.lat.p50\":" + json_number(4.0) +
            ",\"test.lat.p90\":" + json_number(7.2) +
            ",\"test.lat.p99\":" + json_number(7.92) + "}\n");
}

TEST(RoundScope, SamplesAtScopeExit) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("test.hits");
  RegistrySampler sampler(registry);
  Timeline timeline;
  {
    RoundScope scope(sampler, timeline, 1);
    hits.add(4);  // recorded even though the scope exits below
  }
  EXPECT_EQ(timeline.to_jsonl(),
            "{\"round\":1,\"run\":\"\",\"test.hits\":4.0}\n");
}

// ---- engine integration: the determinism contract for timeline output ----

data::FederatedDataset small_dataset(std::uint64_t seed = 3) {
  data::FemnistSynthConfig config;
  config.num_users = 10;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = seed;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

core::SimulationConfig sync_config(std::size_t threads) {
  core::SimulationConfig config;
  config.rounds = 4;
  config.nodes_per_round = 4;
  config.eval_every = 2;
  config.eval_nodes_fraction = 0.5;
  config.node.training.epochs = 1;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 1;
  config.threads = threads;
  return config;
}

TEST(TimelineEngine, SyncByteIdenticalAcrossThreadCounts) {
  const auto dataset = small_dataset();
  std::string jsonl[3], csv[3];
  const std::size_t threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    // Fresh registry state per run: sampler deltas baseline at engine
    // construction, but histogram min/max anchors are lifetime state.
    MetricsRegistry::global().reset();
    Timeline timeline;
    core::SimulationConfig config = sync_config(threads[i]);
    config.timeline = &timeline;
    (void)core::run_tangle_learning(dataset, small_factory(), config, "run");
    jsonl[i] = timeline.to_jsonl();
    csv[i] = timeline.to_csv();
  }
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_EQ(jsonl[0], jsonl[2]);
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(csv[0], csv[2]);
  // One row per round carrying the health probes and ledger size.
  EXPECT_NE(jsonl[0].find("\"tangle.health.tip_count\":"), std::string::npos);
  EXPECT_NE(jsonl[0].find("\"tangle.health.orphan_rate\":"),
            std::string::npos);
  EXPECT_NE(jsonl[0].find("\"sim.ledger_bytes\":"), std::string::npos);
  EXPECT_NE(jsonl[0].find("\"round\":4,"), std::string::npos);
}

TEST(TimelineEngine, SyncTimelineDoesNotPerturbSimulation) {
  // Attaching a timeline (and with it the health probes) must not change
  // the simulation itself: probe randomness comes from a dedicated stream.
  const auto dataset = small_dataset();
  MetricsRegistry::global().reset();
  core::TangleSimulation plain(dataset, small_factory(), sync_config(1));
  const core::RunResult without = plain.run();

  MetricsRegistry::global().reset();
  Timeline timeline;
  core::SimulationConfig config = sync_config(1);
  config.timeline = &timeline;
  core::TangleSimulation probed(dataset, small_factory(), config);
  const core::RunResult with = probed.run();

  ASSERT_EQ(plain.tangle().size(), probed.tangle().size());
  ASSERT_EQ(without.history.size(), with.history.size());
  for (std::size_t i = 0; i < without.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(without.history[i].accuracy, with.history[i].accuracy);
  }
}

TEST(TimelineEngine, AsyncRepeatRunsIdentical) {
  const auto dataset = small_dataset();
  std::string jsonl[2];
  for (int i = 0; i < 2; ++i) {
    MetricsRegistry::global().reset();
    Timeline timeline;
    core::AsyncSimulationConfig config;
    config.duration_seconds = 20.0;
    config.wake_rate_per_node = 0.2;
    config.mean_training_seconds = 1.0;
    config.eval_every_seconds = 5.0;
    config.eval_nodes_fraction = 0.5;
    config.node.training.epochs = 1;
    config.seed = 7;
    config.timeline = &timeline;
    (void)core::run_async_tangle_learning(dataset, small_factory(), config,
                                          "async");
    jsonl[i] = timeline.to_jsonl();
  }
  EXPECT_FALSE(jsonl[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_NE(jsonl[0].find("\"run\":\"async\""), std::string::npos);
}

TEST(TimelineEngine, GossipRepeatRunsIdentical) {
  const auto dataset = small_dataset();
  std::string jsonl[2];
  for (int i = 0; i < 2; ++i) {
    MetricsRegistry::global().reset();
    Timeline timeline;
    core::GossipConfig config;
    config.rounds = 4;
    config.nodes_per_round = 4;
    config.peers_per_node = 2;
    config.eval_every = 2;
    config.eval_nodes_fraction = 0.5;
    config.node.training.epochs = 1;
    config.seed = 7;
    config.timeline = &timeline;
    (void)core::run_gossip_tangle_learning(dataset, small_factory(), config,
                                           "gossip");
    jsonl[i] = timeline.to_jsonl();
  }
  EXPECT_FALSE(jsonl[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_NE(jsonl[0].find("\"gossip.coverage\":"), std::string::npos);
}

}  // namespace
}  // namespace tanglefl::obs
