#include "tangle/model_store.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tanglefl::tangle {
namespace {

TEST(ModelStore, AddAndGet) {
  ModelStore store;
  const auto added = store.add({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(store.get(added.id), (nn::ParamVector{1.0f, 2.0f, 3.0f}));
  EXPECT_FALSE(added.deduplicated);
}

TEST(ModelStore, DeduplicatesIdenticalPayloads) {
  ModelStore store;
  const auto first = store.add({1.0f, 2.0f});
  const auto second = store.add({1.0f, 2.0f});
  EXPECT_EQ(first.id, second.id);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ModelStore, DistinctPayloadsGetDistinctIds) {
  ModelStore store;
  const auto a = store.add({1.0f});
  const auto b = store.add({2.0f});
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(to_hex(a.hash), to_hex(b.hash));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ModelStore, HashMatchesStaticHasher) {
  ModelStore store;
  const nn::ParamVector params = {0.5f, -1.5f};
  const auto added = store.add(params);
  EXPECT_EQ(to_hex(added.hash), to_hex(ModelStore::hash_params(params)));
  EXPECT_EQ(to_hex(store.hash_of(added.id)), to_hex(added.hash));
}

TEST(ModelStore, UnknownIdThrows) {
  ModelStore store;
  EXPECT_THROW((void)store.get(0), std::out_of_range);
  EXPECT_THROW((void)store.hash_of(42), std::out_of_range);
}

TEST(ModelStore, ReferencesStableAcrossGrowth) {
  ModelStore store;
  const auto first = store.add({7.0f});
  const nn::ParamVector* address = &store.get(first.id);
  for (int i = 0; i < 100; ++i) {
    store.add({static_cast<float>(i) + 100.0f});
  }
  EXPECT_EQ(&store.get(first.id), address);
  EXPECT_EQ(store.get(first.id)[0], 7.0f);
}

TEST(ModelStore, TotalParameters) {
  ModelStore store;
  store.add({1, 2, 3});
  store.add({4, 5});
  EXPECT_EQ(store.total_parameters(), 5u);
}

TEST(ModelStore, ConcurrentReadsAndWrites) {
  ModelStore store;
  const auto base = store.add({1.0f, 2.0f});
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (store.get(base.id).size() != 2) failed = true;
        // Offset to avoid colliding with the base payload {1, 2}.
        store.add({static_cast<float>(t) + 10.0f, static_cast<float>(i)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  // 4 threads x 200 unique (t, i) pairs plus the base payload.
  EXPECT_EQ(store.size(), 801u);
}

TEST(ModelStore, EmptyPayloadAllowed) {
  ModelStore store;
  const auto added = store.add({});
  EXPECT_TRUE(store.get(added.id).empty());
}

TEST(ModelStore, ReleaseKeepsHashDropsParams) {
  ModelStore store;
  const auto a = store.add({1.0f, 2.0f});
  const auto b = store.add({3.0f});
  store.release(a.id);
  EXPECT_TRUE(store.is_released(a.id));
  EXPECT_FALSE(store.is_released(b.id));
  EXPECT_THROW((void)store.get(a.id), std::logic_error);
  EXPECT_EQ(to_hex(store.hash_of(a.id)), to_hex(a.hash));  // hash survives
  EXPECT_EQ(store.get(b.id), (nn::ParamVector{3.0f}));
  EXPECT_EQ(store.total_parameters(), 1u);  // only b's params remain
  store.release(a.id);  // idempotent
  EXPECT_EQ(store.size(), 2u);
}

TEST(ModelStore, ReleasedHashCanBeReAdded) {
  // Releasing drops the dedup index entry: re-adding the same params mints
  // a fresh id instead of resurrecting the tombstone.
  ModelStore store;
  const auto a = store.add({4.0f, 5.0f});
  store.release(a.id);
  const auto again = store.add({4.0f, 5.0f});
  EXPECT_NE(again.id, a.id);
  EXPECT_FALSE(again.deduplicated);
  EXPECT_TRUE(store.is_released(a.id));
  EXPECT_EQ(store.get(again.id), (nn::ParamVector{4.0f, 5.0f}));
}

TEST(ModelStore, SerializeRoundTripsReleasedEntries) {
  ModelStore store;
  const auto a = store.add({1.0f, 2.0f});
  const auto b = store.add({3.0f, 4.0f});
  const auto c = store.add({5.0f});
  store.release(b.id);

  ByteWriter writer;
  store.serialize(writer);
  ByteReader reader(writer.bytes());
  ModelStore restored;
  ModelStore::deserialize_into(reader, restored);

  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.get(a.id), (nn::ParamVector{1.0f, 2.0f}));
  EXPECT_TRUE(restored.is_released(b.id));
  EXPECT_EQ(to_hex(restored.hash_of(b.id)), to_hex(b.hash));
  EXPECT_THROW((void)restored.get(b.id), std::logic_error);
  EXPECT_EQ(restored.get(c.id), (nn::ParamVector{5.0f}));
}

}  // namespace
}  // namespace tanglefl::tangle
