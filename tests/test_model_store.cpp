#include "tangle/model_store.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tanglefl::tangle {
namespace {

TEST(ModelStore, AddAndGet) {
  ModelStore store;
  const auto added = store.add({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(store.get(added.id), (nn::ParamVector{1.0f, 2.0f, 3.0f}));
  EXPECT_FALSE(added.deduplicated);
}

TEST(ModelStore, DeduplicatesIdenticalPayloads) {
  ModelStore store;
  const auto first = store.add({1.0f, 2.0f});
  const auto second = store.add({1.0f, 2.0f});
  EXPECT_EQ(first.id, second.id);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ModelStore, DistinctPayloadsGetDistinctIds) {
  ModelStore store;
  const auto a = store.add({1.0f});
  const auto b = store.add({2.0f});
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(to_hex(a.hash), to_hex(b.hash));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ModelStore, HashMatchesStaticHasher) {
  ModelStore store;
  const nn::ParamVector params = {0.5f, -1.5f};
  const auto added = store.add(params);
  EXPECT_EQ(to_hex(added.hash), to_hex(ModelStore::hash_params(params)));
  EXPECT_EQ(to_hex(store.hash_of(added.id)), to_hex(added.hash));
}

TEST(ModelStore, UnknownIdThrows) {
  ModelStore store;
  EXPECT_THROW((void)store.get(0), std::out_of_range);
  EXPECT_THROW((void)store.hash_of(42), std::out_of_range);
}

TEST(ModelStore, ReferencesStableAcrossGrowth) {
  ModelStore store;
  const auto first = store.add({7.0f});
  const nn::ParamVector* address = &store.get(first.id);
  for (int i = 0; i < 100; ++i) {
    store.add({static_cast<float>(i) + 100.0f});
  }
  EXPECT_EQ(&store.get(first.id), address);
  EXPECT_EQ(store.get(first.id)[0], 7.0f);
}

TEST(ModelStore, TotalParameters) {
  ModelStore store;
  store.add({1, 2, 3});
  store.add({4, 5});
  EXPECT_EQ(store.total_parameters(), 5u);
}

TEST(ModelStore, ConcurrentReadsAndWrites) {
  ModelStore store;
  const auto base = store.add({1.0f, 2.0f});
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (store.get(base.id).size() != 2) failed = true;
        // Offset to avoid colliding with the base payload {1, 2}.
        store.add({static_cast<float>(t) + 10.0f, static_cast<float>(i)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  // 4 threads x 200 unique (t, i) pairs plus the base payload.
  EXPECT_EQ(store.size(), 801u);
}

TEST(ModelStore, EmptyPayloadAllowed) {
  ModelStore store;
  const auto added = store.add({});
  EXPECT_TRUE(store.get(added.id).empty());
}

TEST(ModelStore, ReleaseKeepsHashDropsParams) {
  ModelStore store;
  const auto a = store.add({1.0f, 2.0f});
  const auto b = store.add({3.0f});
  store.release(a.id);
  EXPECT_TRUE(store.is_released(a.id));
  EXPECT_FALSE(store.is_released(b.id));
  EXPECT_THROW((void)store.get(a.id), std::logic_error);
  EXPECT_EQ(to_hex(store.hash_of(a.id)), to_hex(a.hash));  // hash survives
  EXPECT_EQ(store.get(b.id), (nn::ParamVector{3.0f}));
  EXPECT_EQ(store.total_parameters(), 1u);  // only b's params remain
  store.release(a.id);  // idempotent
  EXPECT_EQ(store.size(), 2u);
}

TEST(ModelStore, ReleasedHashCanBeReAdded) {
  // Releasing drops the dedup index entry: re-adding the same params mints
  // a fresh id instead of resurrecting the tombstone.
  ModelStore store;
  const auto a = store.add({4.0f, 5.0f});
  store.release(a.id);
  const auto again = store.add({4.0f, 5.0f});
  EXPECT_NE(again.id, a.id);
  EXPECT_FALSE(again.deduplicated);
  EXPECT_TRUE(store.is_released(a.id));
  EXPECT_EQ(store.get(again.id), (nn::ParamVector{4.0f, 5.0f}));
}

TEST(ModelStore, LiveBytesTracksAddsAndReleases) {
  // Regression: released entries must leave the live-payload accounting,
  // and hash-only tombstones contribute nothing.
  ModelStore store;
  EXPECT_EQ(store.live_bytes(), 0u);
  const auto a = store.add({1.0f, 2.0f, 3.0f});
  const auto b = store.add({4.0f, 5.0f});
  EXPECT_EQ(store.live_bytes(), 5 * sizeof(float));
  EXPECT_EQ(store.live_bytes(), store.total_parameters() * sizeof(float));

  store.release(a.id);
  EXPECT_EQ(store.live_bytes(), 2 * sizeof(float));
  store.release(a.id);  // idempotent: no double subtraction
  EXPECT_EQ(store.live_bytes(), 2 * sizeof(float));

  const nn::ParamVector tombstone = {9.0f};
  store.add_released(ModelStore::hash_params(tombstone));
  EXPECT_EQ(store.live_bytes(), 2 * sizeof(float));
  store.release(b.id);
  EXPECT_EQ(store.live_bytes(), 0u);
  EXPECT_EQ(store.total_parameters(), 0u);
}

// ------------------------------------------------------------- chunked store

/// Tiny chunks so a handful of floats spans several of them.
ChunkParams tiny_chunks() {
  ChunkParams params;
  params.min_bytes = 8;
  params.max_bytes = 64;
  params.mask_bits = 4;
  return params;
}

nn::ParamVector patterned_params(std::size_t n, float seed) {
  nn::ParamVector params(n);
  for (std::size_t i = 0; i < n; ++i) {
    params[i] = seed + static_cast<float>(i) * 0.25f;
  }
  return params;
}

/// Slot-table size as persisted by serialize(): chunked flag (u8), three
/// cutter parameters (u64, u64, u32), then the u64 slot count.
std::uint64_t serialized_chunk_slots(const ModelStore& store) {
  ByteWriter writer;
  store.serialize(writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u8(), 1u);
  (void)reader.read_u64();
  (void)reader.read_u64();
  (void)reader.read_u32();
  return reader.read_u64();
}

TEST(ModelStoreChunked, ConfigureRules) {
  ModelStore store;
  ChunkParams bad = tiny_chunks();
  bad.min_bytes = 0;
  EXPECT_THROW(store.configure_chunking(bad), std::invalid_argument);
  bad = tiny_chunks();
  bad.max_bytes = bad.min_bytes - 1;
  EXPECT_THROW(store.configure_chunking(bad), std::invalid_argument);

  EXPECT_FALSE(store.chunking_enabled());
  store.configure_chunking(tiny_chunks());
  EXPECT_TRUE(store.chunking_enabled());
  EXPECT_EQ(store.chunk_params().min_bytes, tiny_chunks().min_bytes);

  ModelStore busy;
  busy.add({1.0f});
  EXPECT_THROW(busy.configure_chunking(tiny_chunks()), std::logic_error);
}

TEST(ModelStoreChunked, PayloadsReadBackExactly) {
  ModelStore store;
  store.configure_chunking(tiny_chunks());
  const nn::ParamVector params = patterned_params(100, 1.0f);
  const auto added = store.add(params);
  EXPECT_EQ(store.get(added.id), params);
  EXPECT_GT(store.chunk_count(), 1u);
}

TEST(ModelStoreChunked, SharedContentDeduplicatesChunks) {
  // Two payloads sharing a long prefix must share its chunks: adding the
  // second grows the chunk table by far less than a standalone copy would.
  ModelStore store;
  store.configure_chunking(tiny_chunks());
  nn::ParamVector first = patterned_params(200, 1.0f);
  nn::ParamVector second = first;
  second.back() += 1.0f;  // distinct payload, nearly identical bytes

  store.add(first);
  const std::size_t after_first = store.chunk_count();
  store.add(second);
  const std::size_t after_second = store.chunk_count();
  EXPECT_GT(after_first, 1u);
  // Only the tail chunk(s) differ.
  EXPECT_LT(after_second - after_first, after_first / 2 + 1);
}

TEST(ModelStoreChunked, ReleaseFreesChunksAndRecyclesSlots) {
  ModelStore store;
  store.configure_chunking(tiny_chunks());
  const auto a = store.add(patterned_params(150, 1.0f));
  const auto b = store.add(patterned_params(150, 500.0f));
  const std::size_t live_before = store.chunk_count();
  const std::uint64_t slots_before = serialized_chunk_slots(store);

  store.release(a.id);
  EXPECT_LT(store.chunk_count(), live_before);
  EXPECT_THROW((void)store.get(a.id), std::logic_error);
  EXPECT_EQ(store.get(b.id), patterned_params(150, 500.0f));

  // Re-adding the released content re-chunks to the same cuts, so the
  // freed slots are recycled and the table does not grow.
  store.add(patterned_params(150, 1.0f));
  EXPECT_EQ(store.chunk_count(), live_before);
  EXPECT_EQ(serialized_chunk_slots(store), slots_before);
}

TEST(ModelStoreChunked, SerializeRoundTripsChunkedStore) {
  ModelStore store;
  store.configure_chunking(tiny_chunks());
  const auto a = store.add(patterned_params(120, 1.0f));
  const auto b = store.add(patterned_params(80, 50.0f));
  const auto c = store.add(patterned_params(64, 75.0f));
  store.release(b.id);

  ByteWriter writer;
  store.serialize(writer);
  ByteReader reader(writer.bytes());
  ModelStore restored;
  ModelStore::deserialize_into(reader, restored);

  ASSERT_EQ(restored.size(), 3u);
  EXPECT_TRUE(restored.chunking_enabled());
  EXPECT_EQ(restored.chunk_params().max_bytes, tiny_chunks().max_bytes);
  EXPECT_EQ(restored.get(a.id), patterned_params(120, 1.0f));
  EXPECT_TRUE(restored.is_released(b.id));
  EXPECT_EQ(to_hex(restored.hash_of(b.id)), to_hex(b.hash));
  EXPECT_EQ(restored.get(c.id), patterned_params(64, 75.0f));
  EXPECT_EQ(restored.chunk_count(), store.chunk_count());
  EXPECT_EQ(restored.live_bytes(), store.live_bytes());
}

TEST(ModelStoreChunked, FlatDumpLoadsIntoFlatStore) {
  // The chunked flag is per-dump: a flat store's dump must stay loadable
  // and flat (byte-compatible with the pre-chunking v2 body).
  ModelStore flat;
  flat.add({1.0f, 2.0f});
  ByteWriter writer;
  flat.serialize(writer);
  ByteReader reader(writer.bytes());
  ModelStore restored;
  ModelStore::deserialize_into(reader, restored);
  EXPECT_FALSE(restored.chunking_enabled());
  EXPECT_EQ(restored.get(0), (nn::ParamVector{1.0f, 2.0f}));
}

TEST(ModelStore, SerializeRoundTripsReleasedEntries) {
  ModelStore store;
  const auto a = store.add({1.0f, 2.0f});
  const auto b = store.add({3.0f, 4.0f});
  const auto c = store.add({5.0f});
  store.release(b.id);

  ByteWriter writer;
  store.serialize(writer);
  ByteReader reader(writer.bytes());
  ModelStore restored;
  ModelStore::deserialize_into(reader, restored);

  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.get(a.id), (nn::ParamVector{1.0f, 2.0f}));
  EXPECT_TRUE(restored.is_released(b.id));
  EXPECT_EQ(to_hex(restored.hash_of(b.id)), to_hex(b.hash));
  EXPECT_THROW((void)restored.get(b.id), std::logic_error);
  EXPECT_EQ(restored.get(c.id), (nn::ParamVector{5.0f}));
}

}  // namespace
}  // namespace tanglefl::tangle
