#include "core/node.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "tangle/model_store.hpp"

namespace tanglefl::core {
namespace {

using tangle::ModelStore;
using tangle::Tangle;
using tangle::TxIndex;

/// Small separable 2-feature task so nodes can actually improve models.
data::DataSplit make_separable(std::size_t n, Rng& rng, float margin = 2.0f) {
  data::DataSplit split;
  split.features = nn::Tensor({n, 2});
  split.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    split.features.at(i, 0) =
        static_cast<float>(rng.normal()) + (positive ? margin : -margin);
    split.features.at(i, 1) = static_cast<float>(rng.normal());
    split.labels[i] = positive ? 1 : 0;
  }
  return split;
}

struct Fixture {
  nn::ModelFactory factory = [] { return nn::make_mlp(2, 6, 2); };
  ModelStore store;
  Tangle tangle;
  data::UserData user;

  Fixture() : tangle(make_genesis(store, factory)) {
    Rng rng(100);
    user.user_id = "node-under-test";
    user.train = make_separable(40, rng);
    user.test = make_separable(20, rng);
  }

  static Tangle make_genesis(ModelStore& store,
                             const nn::ModelFactory& factory) {
    nn::Model model = factory();
    Rng rng(55);
    model.init(rng);
    const auto added = store.add(model.get_parameters());
    return Tangle(added.id, added.hash);
  }

  /// Publishes a payload approving `parents`.
  TxIndex add(std::vector<TxIndex> parents, nn::ParamVector params,
              std::uint64_t round) {
    const auto added = store.add(std::move(params));
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }

  /// A model trained well on the node's own data distribution.
  nn::ParamVector good_params(std::uint64_t seed, std::size_t epochs = 8) {
    nn::Model model = factory();
    Rng init(seed);
    model.init(init);
    data::TrainConfig config;
    config.epochs = epochs;
    config.sgd.learning_rate = 0.2;
    Rng rng(seed + 1);
    Rng data_rng(seed + 2);
    const data::DataSplit train = make_separable(60, data_rng);
    (void)data::train_local(model, train, config, rng);
    return model.get_parameters();
  }

  /// Standard-normal noise parameters (the Fig. 5 poison payload).
  nn::ParamVector poison_params(std::uint64_t seed) {
    nn::Model model = factory();
    nn::ParamVector params(model.parameter_count());
    Rng rng(seed);
    for (auto& p : params) p = static_cast<float>(rng.normal());
    return params;
  }

  NodeContext context(std::uint64_t round, const tangle::TangleView& view,
                      std::uint64_t seed = 9) {
    return NodeContext{view, store, factory, round, Rng(seed)};
  }
};

TEST(HonestNode, PublishesWhenTrainingImproves) {
  Fixture f;
  NodeConfig config;
  config.training.epochs = 6;
  config.training.sgd.learning_rate = 0.2;
  HonestNode node(config);

  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  const auto publish = node.step(context, f.user);
  ASSERT_TRUE(publish.has_value());
  EXPECT_EQ(publish->parents.size(), 2u);
  for (const TxIndex p : publish->parents) EXPECT_EQ(p, 0u);
  EXPECT_EQ(publish->params.size(), f.factory().parameter_count());
}

TEST(HonestNode, AbstainsWhenNoImprovementPossible) {
  Fixture f;
  NodeConfig config;
  config.training.epochs = 0;  // Train() is a no-op -> w_new == w_avg == w_r
  HonestNode node(config);

  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  EXPECT_FALSE(node.step(context, f.user).has_value());
}

TEST(HonestNode, AbstainsWithoutTrainingData) {
  Fixture f;
  f.user.train = data::DataSplit{};
  HonestNode node(NodeConfig{});
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  EXPECT_FALSE(node.step(context, f.user).has_value());
}

TEST(HonestNode, ChooseParentsBasicReturnsRequestedCount) {
  Fixture f;
  f.add({0}, f.good_params(1), 1);
  f.add({0}, f.good_params(2), 1);
  NodeConfig config;
  config.num_tips = 3;
  config.tip_sample_size = 3;
  HonestNode node(config);
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(2, view);
  EXPECT_EQ(node.choose_parents(context, f.user.test).size(), 3u);
}

TEST(HonestNode, RobustSelectionAvoidsPoisonTip) {
  Fixture f;
  // Three tips: two well-trained, one random-noise poison.
  const TxIndex good1 = f.add({0}, f.good_params(1), 1);
  const TxIndex good2 = f.add({0}, f.good_params(2), 1);
  const TxIndex poison = f.add({0}, f.poison_params(3), 1);

  NodeConfig config;
  config.num_tips = 2;
  config.tip_sample_size = 12;  // sample widely so all tips are seen
  config.tip_selection.alpha = 0.0;
  HonestNode node(config);

  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(2, view);
  const auto parents = node.choose_parents(context, f.user.test);
  ASSERT_EQ(parents.size(), 2u);
  for (const TxIndex p : parents) {
    EXPECT_NE(p, poison);
    EXPECT_TRUE(p == good1 || p == good2);
  }
}

TEST(HonestNode, BasicSelectionCanPickPoisonTip) {
  // Without the defence (sample == tips) the poison tip gets selected with
  // its natural walk probability — this is the vulnerability of Algorithm 2
  // that Section III-E fixes.
  Fixture f;
  f.add({0}, f.good_params(1), 1);
  const TxIndex poison = f.add({0}, f.poison_params(3), 1);

  NodeConfig config;
  config.num_tips = 2;
  config.tip_sample_size = 2;
  config.tip_selection.alpha = 0.0;
  HonestNode node(config);

  const tangle::TangleView view = f.tangle.view();
  bool poison_selected = false;
  for (std::uint64_t seed = 0; seed < 16 && !poison_selected; ++seed) {
    NodeContext context = f.context(2, view, seed);
    for (const TxIndex p : node.choose_parents(context, f.user.test)) {
      if (p == poison) poison_selected = true;
    }
  }
  EXPECT_TRUE(poison_selected);
}

TEST(HonestNode, RobustSelectionFillsWithBestWhenFewDistinctTips) {
  Fixture f;  // only genesis
  NodeConfig config;
  config.num_tips = 2;
  config.tip_sample_size = 6;
  HonestNode node(config);
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  const auto parents = node.choose_parents(context, f.user.test);
  EXPECT_EQ(parents, (std::vector<TxIndex>{0, 0}));
}

TEST(HonestNode, StepIsDeterministicInContextRng) {
  Fixture f;
  f.add({0}, f.good_params(1), 1);
  NodeConfig config;
  config.training.epochs = 2;
  config.training.sgd.learning_rate = 0.1;
  HonestNode node(config);
  const tangle::TangleView view = f.tangle.view();

  NodeContext a = f.context(2, view, 7);
  NodeContext b = f.context(2, view, 7);
  const auto pa = node.step(a, f.user);
  const auto pb = node.step(b, f.user);
  ASSERT_EQ(pa.has_value(), pb.has_value());
  if (pa) {
    EXPECT_EQ(pa->parents, pb->parents);
    EXPECT_EQ(pa->params, pb->params);
  }
}

TEST(RandomPoisonNode, AlwaysPublishesNoise) {
  Fixture f;
  RandomPoisonNode node(NodeConfig{});
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  const auto publish = node.step(context, f.user);
  ASSERT_TRUE(publish.has_value());
  EXPECT_TRUE(node.is_malicious());

  // Standard normal: mean ~0, variance ~1.
  double sum = 0.0, sum_sq = 0.0;
  for (const float p : publish->params) {
    sum += p;
    sum_sq += static_cast<double>(p) * p;
  }
  const auto n = static_cast<double>(publish->params.size());
  EXPECT_NEAR(sum / n, 0.0, 0.3);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.4);
}

TEST(RandomPoisonNode, AttachesToViewTips) {
  Fixture f;
  const TxIndex a = f.add({0}, f.good_params(1), 1);
  RandomPoisonNode node(NodeConfig{});
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(2, view);
  const auto publish = node.step(context, f.user);
  ASSERT_TRUE(publish.has_value());
  for (const TxIndex p : publish->parents) EXPECT_EQ(p, a);
}

TEST(LabelFlipNode, AbstainsWithoutSourceSamples) {
  Fixture f;
  LabelFlipNode node(NodeConfig{});
  data::UserData empty;
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  EXPECT_FALSE(node.step(context, empty).has_value());
  EXPECT_TRUE(node.is_malicious());
}

TEST(LabelFlipNode, TrainsTowardTargetOnPoisonedData) {
  Fixture f;
  // Poisoned data: class-0 features labeled as class 1. A node training on
  // this and validating on it will publish a model that misclassifies.
  Rng rng(200);
  data::UserData poisoned;
  poisoned.train = make_separable(40, rng);
  poisoned.test = make_separable(20, rng);
  for (auto& label : poisoned.train.labels) label = 1;
  for (auto& label : poisoned.test.labels) label = 1;

  NodeConfig config;
  config.training.epochs = 6;
  config.training.sgd.learning_rate = 0.2;
  LabelFlipNode node(config);
  const tangle::TangleView view = f.tangle.view();
  NodeContext context = f.context(1, view);
  const auto publish = node.step(context, poisoned);
  ASSERT_TRUE(publish.has_value());

  // The published model predicts class 1 everywhere.
  nn::Model model = f.factory();
  model.set_parameters(publish->params);
  const double rate =
      data::targeted_misclassification_rate(model, f.user.test, 0, 1);
  EXPECT_GT(rate, 0.9);
}

}  // namespace
}  // namespace tanglefl::core
