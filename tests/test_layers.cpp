// Layer-level behavioural tests complementing the numerical gradient
// checks: output shapes, caching semantics, dropout statistics, cloning,
// and the edge cases (batch 1, sequence 1, stride != window).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hpp"

namespace tanglefl::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.values()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(LinearLayer, OutputShape) {
  Linear layer(5, 3);
  Rng rng(1);
  layer.init(rng);
  const Tensor y = layer.forward(random_tensor({7, 5}, 2), false);
  EXPECT_EQ(y.dim(0), 7u);
  EXPECT_EQ(y.dim(1), 3u);
}

TEST(LinearLayer, BatchOfOne) {
  Linear layer(4, 2);
  Rng rng(1);
  layer.init(rng);
  const Tensor y = layer.forward(random_tensor({1, 4}, 2), false);
  EXPECT_EQ(y.dim(0), 1u);
}

TEST(LinearLayer, BiasInitializedToZero) {
  Linear layer(4, 6);
  Rng rng(1);
  layer.init(rng);
  for (const float b : layer.bias().values()) EXPECT_EQ(b, 0.0f);
}

TEST(LinearLayer, ZeroInputGivesBias) {
  Linear layer(3, 2);
  Rng rng(1);
  layer.init(rng);
  // Force known bias values.
  std::vector<Tensor*> params = layer.parameters();
  params[1]->values()[0] = 0.5f;
  params[1]->values()[1] = -0.25f;
  const Tensor y = layer.forward(Tensor({1, 3}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -0.25f);
}

TEST(ReLULayer, ClampsNegatives) {
  ReLU layer;
  const Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(DropoutLayer, EvalModeIsIdentity) {
  Dropout layer(0.5);
  Rng rng(3);
  layer.init(rng);
  const Tensor x = random_tensor({4, 8}, 4);
  EXPECT_TRUE(layer.forward(x, false).equals(x));
}

TEST(DropoutLayer, TrainModeDropsApproximatelyP) {
  Dropout layer(0.3);
  Rng rng(5);
  layer.init(rng);
  Tensor x({100, 100});
  x.fill(1.0f);
  const Tensor y = layer.forward(x, true);
  std::size_t zeros = 0;
  for (const float v : y.values()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()),
              0.3, 0.02);
}

TEST(DropoutLayer, SurvivorsRescaled) {
  Dropout layer(0.5);
  Rng rng(6);
  layer.init(rng);
  Tensor x({10, 10});
  x.fill(1.0f);
  const Tensor y = layer.forward(x, true);
  for (const float v : y.values()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-6f);
  }
}

TEST(DropoutLayer, ExpectationPreserved) {
  Dropout layer(0.4);
  Rng rng(7);
  layer.init(rng);
  Tensor x({100, 100});
  x.fill(1.0f);
  const Tensor y = layer.forward(x, true);
  EXPECT_NEAR(y.sum() / static_cast<float>(y.size()), 1.0f, 0.05f);
}

TEST(DropoutLayer, ZeroProbabilityIsIdentityInTraining) {
  Dropout layer(0.0);
  Rng rng(8);
  layer.init(rng);
  const Tensor x = random_tensor({3, 3}, 9);
  EXPECT_TRUE(layer.forward(x, true).equals(x));
}

TEST(Conv2DLayer, ShapeWithStrideAndPadding) {
  Conv2D layer(1, 2, 3, 2, 1);
  Rng rng(1);
  layer.init(rng);
  const Tensor y = layer.forward(random_tensor({2, 1, 9, 9}, 2), false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 2u);
  EXPECT_EQ(y.dim(2), 5u);  // (9 + 2 - 3) / 2 + 1
  EXPECT_EQ(y.dim(3), 5u);
}

TEST(MaxPoolLayer, StrideSmallerThanWindow) {
  MaxPool2D layer(3, 1);
  const Tensor y = layer.forward(random_tensor({1, 1, 5, 5}, 3), false);
  EXPECT_EQ(y.dim(2), 3u);
  EXPECT_EQ(y.dim(3), 3u);
}

TEST(MaxPoolLayer, DefaultStrideEqualsWindow) {
  MaxPool2D layer(2);
  const Tensor y = layer.forward(random_tensor({1, 2, 6, 6}, 4), false);
  EXPECT_EQ(y.dim(2), 3u);
}

TEST(FlattenLayer, RoundTripShape) {
  Flatten layer;
  const Tensor x = random_tensor({3, 2, 4, 4}, 5);
  const Tensor y = layer.forward(x, false);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 32u);
  const Tensor dx = layer.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(EmbeddingLayer, LooksUpRows) {
  Embedding layer(5, 3);
  Rng rng(6);
  layer.init(rng);
  Tensor tokens({1, 2});
  tokens.at(0, 0) = 4.0f;
  tokens.at(0, 1) = 0.0f;
  const Tensor y = layer.forward(tokens, false);
  // Row 4 and row 0 of the weight matrix.
  const Tensor& w = *layer.parameters()[0];
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(y.at(0, 0, d), w.at(4, d));
    EXPECT_FLOAT_EQ(y.at(0, 1, d), w.at(0, d));
  }
}

TEST(LstmLayer, SequenceOfOne) {
  LSTM layer(3, 4);
  Rng rng(7);
  layer.init(rng);
  const Tensor y = layer.forward(random_tensor({2, 1, 3}, 8), false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_EQ(y.dim(2), 4u);
}

TEST(LstmLayer, HiddenBounded) {
  // tanh(c) * sigmoid(o) is bounded by 1 in magnitude.
  LSTM layer(4, 6);
  Rng rng(9);
  layer.init(rng);
  const Tensor y = layer.forward(random_tensor({3, 10, 4}, 10), false);
  for (const float v : y.values()) {
    EXPECT_LE(std::abs(v), 1.0f);
  }
}

TEST(LstmLayer, ForgetGateBiasInitialized) {
  LSTM layer(2, 3);
  Rng rng(11);
  layer.init(rng);
  const Tensor& bias = *layer.parameters()[2];
  // Layout [i | f | g | o]: forget block is ones, others zero.
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_EQ(bias[h], 0.0f);
    EXPECT_EQ(bias[3 + h], 1.0f);
    EXPECT_EQ(bias[6 + h], 0.0f);
    EXPECT_EQ(bias[9 + h], 0.0f);
  }
}

TEST(LastTimestepLayer, PicksFinalStep) {
  LastTimestep layer;
  Tensor x({1, 3, 2});
  x.at(0, 2, 0) = 7.0f;
  x.at(0, 2, 1) = -3.0f;
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -3.0f);
}

TEST(AllLayers, ClonePreservesForward) {
  Rng rng(12);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Linear>(6, 4));
  layers.push_back(std::make_unique<Conv2D>(1, 2, 3, 1, 1));
  layers.push_back(std::make_unique<LSTM>(3, 4));
  layers.push_back(std::make_unique<Embedding>(8, 3));

  for (auto& layer : layers) {
    Rng init = rng.split(reinterpret_cast<std::uintptr_t>(layer.get()));
    layer->init(init);
    const auto copy = layer->clone();

    Tensor input;
    if (layer->name() == "Linear") input = random_tensor({2, 6}, 1);
    else if (layer->name() == "Conv2D") input = random_tensor({1, 1, 6, 6}, 2);
    else if (layer->name() == "LSTM") input = random_tensor({2, 4, 3}, 3);
    else {
      input = Tensor({2, 3});
      for (auto& v : input.values()) v = 2.0f;
    }
    EXPECT_TRUE(layer->forward(input, false).equals(
        copy->forward(input, false)))
        << layer->name();
  }
}

}  // namespace
}  // namespace tanglefl::nn
