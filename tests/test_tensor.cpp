#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tanglefl::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstructorZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ValueConstructor) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, RowMajorAccessors) {
  Tensor t3({2, 3, 4});
  t3.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t3[1 * 12 + 2 * 4 + 3], 7.0f);

  Tensor t4({2, 3, 4, 5});
  t4.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t4[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at(1, 5) = 3.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.at(2, 3), 3.0f);  // same flat index 11
}

TEST(Tensor, ReshapedCopyLeavesOriginal) {
  Tensor t({4});
  const Tensor r = t.reshaped({2, 2});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(r.rank(), 2u);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t.sum(), 7.5f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, AddAndAddScaled) {
  Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {10, 20, 30});
  a.add(b);
  EXPECT_EQ(a[1], 22.0f);
  a.add_scaled(b, -0.5f);
  EXPECT_EQ(a[2], 18.0f);
}

TEST(Tensor, Scale) {
  Tensor a({2}, {2, -4});
  a.scale(0.5f);
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(a[1], -2.0f);
}

TEST(Tensor, ArgmaxRow) {
  const Tensor t({2, 4}, {0, 5, 2, 1, 9, 0, 0, 10});
  EXPECT_EQ(t.argmax_row(0), 1u);
  EXPECT_EQ(t.argmax_row(1), 3u);
}

TEST(Tensor, ArgmaxRowFirstOfTies) {
  const Tensor t({1, 3}, {7, 7, 7});
  EXPECT_EQ(t.argmax_row(0), 0u);
}

TEST(Tensor, L2Norm) {
  const Tensor t({2}, {3, 4});
  EXPECT_FLOAT_EQ(t.l2_norm(), 5.0f);
}

TEST(Tensor, Equals) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {1, 2});
  const Tensor c({2}, {1, 3});
  const Tensor d({1, 2}, {1, 2});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(d));  // same data, different shape
}

TEST(Tensor, ShapeString) {
  const Tensor t({2, 3});
  EXPECT_EQ(t.shape_string(), "[2, 3]");
}

TEST(Tensor, ElementCount) {
  const std::vector<std::size_t> shape = {2, 3, 4};
  EXPECT_EQ(Tensor::element_count(shape), 24u);
  const std::vector<std::size_t> empty = {};
  EXPECT_EQ(Tensor::element_count(empty), 1u);
}

}  // namespace
}  // namespace tanglefl::nn
