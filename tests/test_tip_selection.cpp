#include "tangle/tip_selection.hpp"

#include <gtest/gtest.h>

#include <map>

#include "tangle/model_store.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(TipSelection, GenesisOnlyReturnsGenesis) {
  Fixture f;
  Rng rng(1);
  const auto tips = select_tips(f.tangle.view(), 3, rng, {});
  EXPECT_EQ(tips, (std::vector<TxIndex>{0, 0, 0}));
}

TEST(TipSelection, SingleChainReachesTip) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  const TxIndex c = f.add({b}, 3.0f, 3);
  Rng rng(1);
  const auto tips = select_tips(f.tangle.view(), 5, rng, {});
  for (const TxIndex t : tips) EXPECT_EQ(t, c);
}

TEST(TipSelection, ReachesOnlyActualTips) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({a}, 3.0f, 2);
  (void)c;
  Rng rng(2);
  const auto tip_set = f.tangle.view().tips();
  const auto tips = select_tips(f.tangle.view(), 50, rng, {});
  for (const TxIndex t : tips) {
    EXPECT_TRUE(std::find(tip_set.begin(), tip_set.end(), t) !=
                tip_set.end());
  }
  (void)b;
}

TEST(TipSelection, ZeroAlphaIsRoughlyUniformOnSymmetricFork) {
  Fixture f;
  // Two symmetric tips directly off genesis.
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  Rng rng(3);
  TipSelectionConfig config;
  config.alpha = 0.0;
  std::map<TxIndex, int> counts;
  for (int i = 0; i < 2000; ++i) {
    const auto tips = select_tips(f.tangle.view(), 1, rng, config);
    ++counts[tips[0]];
  }
  EXPECT_NEAR(counts[a], 1000, 120);
  EXPECT_NEAR(counts[b], 1000, 120);
}

TEST(TipSelection, HighAlphaFollowsHeavyBranch) {
  Fixture f;
  // Branch A is much heavier (more approvers) than branch B.
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  TxIndex heavy_tip = a;
  for (int i = 0; i < 8; ++i) {
    heavy_tip = f.add({heavy_tip}, 10.0f + static_cast<float>(i), 2 + static_cast<std::uint64_t>(i));
  }
  Rng rng(4);
  TipSelectionConfig config;
  config.alpha = 10.0;  // near-greedy
  int heavy_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const auto tips = select_tips(f.tangle.view(), 1, rng, config);
    if (tips[0] == heavy_tip) ++heavy_hits;
  }
  EXPECT_GT(heavy_hits, 195);
  (void)b;
}

TEST(TipSelection, ModerateAlphaStillExplores) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  TxIndex heavy_tip = a;
  for (int i = 0; i < 5; ++i) {
    heavy_tip = f.add({heavy_tip}, 10.0f + static_cast<float>(i), 2 + static_cast<std::uint64_t>(i));
  }
  const TxIndex light = f.add({0}, 2.0f, 8);
  Rng rng(5);
  TipSelectionConfig config;
  config.alpha = 0.1;
  int light_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto tips = select_tips(f.tangle.view(), 1, rng, config);
    if (tips[0] == light) ++light_hits;
  }
  EXPECT_GT(light_hits, 50);
  EXPECT_LT(light_hits, 600);
}

TEST(TipSelection, RespectsViewPrefix) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex later = f.add({a}, 2.0f, 2);
  (void)later;
  Rng rng(6);
  const TangleView view = f.tangle.view_prefix(2);
  const auto tips = select_tips(view, 10, rng, {});
  for (const TxIndex t : tips) EXPECT_EQ(t, a);
}

TEST(TipSelection, DeterministicInRng) {
  Fixture f;
  for (int i = 0; i < 6; ++i) {
    f.add({0}, static_cast<float>(i) + 1.0f, 1);
  }
  Rng rng_a(7), rng_b(7);
  const auto tips_a = select_tips(f.tangle.view(), 10, rng_a, {});
  const auto tips_b = select_tips(f.tangle.view(), 10, rng_b, {});
  EXPECT_EQ(tips_a, tips_b);
}

TEST(TipSelection, WalkVisitsIntermediateNode) {
  Fixture f;
  // genesis <- mid <- {t1, t2}: every walk passes through mid.
  const TxIndex mid = f.add({0}, 1.0f, 1);
  const TxIndex t1 = f.add({mid}, 2.0f, 2);
  const TxIndex t2 = f.add({mid}, 3.0f, 2);
  Rng rng(8);
  const auto tips = select_tips(f.tangle.view(), 20, rng, {});
  for (const TxIndex t : tips) {
    EXPECT_TRUE(t == t1 || t == t2);
  }
}

}  // namespace
}  // namespace tanglefl::tangle
