#include "tangle/transaction.hpp"

#include <gtest/gtest.h>

namespace tanglefl::tangle {
namespace {

Sha256Digest digest_of(std::string_view s) { return Sha256::hash(s); }

TEST(Transaction, IdDependsOnParents) {
  const Sha256Digest payload = digest_of("payload");
  const std::vector<TransactionId> parents_a = {digest_of("p1"),
                                                digest_of("p2")};
  const std::vector<TransactionId> parents_b = {digest_of("p1"),
                                                digest_of("p3")};
  EXPECT_NE(to_hex(compute_transaction_id(parents_a, payload, 1, 0)),
            to_hex(compute_transaction_id(parents_b, payload, 1, 0)));
}

TEST(Transaction, IdDependsOnPayload) {
  const std::vector<TransactionId> parents = {digest_of("p1")};
  EXPECT_NE(
      to_hex(compute_transaction_id(parents, digest_of("a"), 1, 0)),
      to_hex(compute_transaction_id(parents, digest_of("b"), 1, 0)));
}

TEST(Transaction, IdDependsOnRoundAndNonce) {
  const std::vector<TransactionId> parents = {digest_of("p")};
  const Sha256Digest payload = digest_of("payload");
  EXPECT_NE(to_hex(compute_transaction_id(parents, payload, 1, 0)),
            to_hex(compute_transaction_id(parents, payload, 2, 0)));
  EXPECT_NE(to_hex(compute_transaction_id(parents, payload, 1, 0)),
            to_hex(compute_transaction_id(parents, payload, 1, 1)));
}

TEST(Transaction, IdDependsOnParentOrder) {
  const Sha256Digest payload = digest_of("payload");
  const std::vector<TransactionId> ab = {digest_of("a"), digest_of("b")};
  const std::vector<TransactionId> ba = {digest_of("b"), digest_of("a")};
  EXPECT_NE(to_hex(compute_transaction_id(ab, payload, 1, 0)),
            to_hex(compute_transaction_id(ba, payload, 1, 0)));
}

TEST(Transaction, IdIsDeterministic) {
  const std::vector<TransactionId> parents = {digest_of("p")};
  const Sha256Digest payload = digest_of("payload");
  EXPECT_EQ(to_hex(compute_transaction_id(parents, payload, 3, 7)),
            to_hex(compute_transaction_id(parents, payload, 3, 7)));
}

TEST(Transaction, PublisherExcludedFromId) {
  Transaction a, b;
  a.parents = {digest_of("p")};
  b.parents = {digest_of("p")};
  a.payload_hash = b.payload_hash = digest_of("payload");
  a.publisher = "alice";
  b.publisher = "bob";
  EXPECT_EQ(to_hex(compute_transaction_id(a.parents, a.payload_hash, 0, 0)),
            to_hex(compute_transaction_id(b.parents, b.payload_hash, 0, 0)));
}

TEST(Transaction, SerializeRoundTrip) {
  Transaction tx;
  tx.parents = {digest_of("p1"), digest_of("p2"), digest_of("p3")};
  tx.payload_hash = digest_of("payload");
  tx.payload = 17;
  tx.round = 42;
  tx.nonce = 9;
  tx.publisher = "writer_3";
  tx.id = compute_transaction_id(tx.parents, tx.payload_hash, tx.round,
                                 tx.nonce);

  ByteWriter writer;
  serialize_transaction(tx, writer);
  ByteReader reader(writer.bytes());
  const Transaction back = deserialize_transaction(reader);

  EXPECT_EQ(to_hex(back.id), to_hex(tx.id));
  ASSERT_EQ(back.parents.size(), 3u);
  EXPECT_EQ(to_hex(back.parents[2]), to_hex(tx.parents[2]));
  EXPECT_EQ(back.payload, 17u);
  EXPECT_EQ(back.round, 42u);
  EXPECT_EQ(back.nonce, 9u);
  EXPECT_EQ(back.publisher, "writer_3");
}

TEST(Transaction, DeserializeRejectsZeroParents) {
  Transaction tx;
  tx.parents = {digest_of("p")};
  ByteWriter writer;
  serialize_transaction(tx, writer);
  // Corrupt the parent count (immediately after the 32-byte id prefix:
  // 8-byte length + 32 bytes + 8-byte count).
  auto bytes = writer.take();
  for (std::size_t i = 40; i < 48; ++i) bytes[i] = 0;
  ByteReader reader(bytes);
  EXPECT_THROW((void)deserialize_transaction(reader), SerializeError);
}

TEST(Transaction, GenesisDetection) {
  Transaction tx;
  tx.payload_hash = digest_of("genesis-model");
  tx.id = compute_transaction_id({}, tx.payload_hash, 0, 0);
  tx.parents = {tx.id};
  EXPECT_TRUE(tx.is_genesis());

  tx.parents = {digest_of("other")};
  EXPECT_FALSE(tx.is_genesis());
}

TEST(Transaction, ShortIdIsPrefix) {
  const TransactionId id = digest_of("x");
  EXPECT_EQ(short_id(id), to_hex(id).substr(0, 8));
}

}  // namespace
}  // namespace tanglefl::tangle
