#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace tanglefl {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"a", "long-header"});
  table.add_row({"xxxxxx", "1"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a       long-header"), std::string::npos);
  EXPECT_NE(text.find("xxxxxx  1"), std::string::npos);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream out;
  table.print(out);  // must not crash
  EXPECT_FALSE(out.str().empty());
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/tanglefl_test_csv.csv";
  {
    CsvWriter csv(path, {"round", "accuracy"});
    csv.add_row({"1", "0.5"});
    csv.add_row({"2", "0.75"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "round,accuracy");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.5");
  std::remove(path.c_str());
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  const std::string path = "/tmp/tanglefl_test_csv2.csv";
  {
    CsvWriter csv(path, {"name"});
    csv.add_row({"has,comma"});
    csv.add_row({"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(FormatFixed, RendersDigits) {
  EXPECT_EQ(format_fixed(0.5, 3), "0.500");
  EXPECT_EQ(format_fixed(-1.23456, 2), "-1.23");
}

TEST(ArgParser, ParsesSpaceSeparated) {
  const char* argv[] = {"prog", "--rounds", "42"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_int("rounds", 1, "h"), 42);
  EXPECT_FALSE(args.should_exit());
}

TEST(ArgParser, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=0.25"};
  ArgParser args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0, "h"), 0.25);
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.get_int("rounds", 7, "h"), 7);
  EXPECT_EQ(args.get_string("out", "x.csv", "h"), "x.csv");
  EXPECT_FALSE(args.get_flag("verbose", "h"));
}

TEST(ArgParser, FlagPresence) {
  const char* argv[] = {"prog", "--verbose"};
  ArgParser args(2, argv);
  EXPECT_TRUE(args.get_flag("verbose", "h"));
}

TEST(ArgParser, UnknownFlagIsError) {
  const char* argv[] = {"prog", "--bogus", "1"};
  ArgParser args(3, argv);
  (void)args.get_int("rounds", 1, "h");
  EXPECT_TRUE(args.should_exit());
}

TEST(ArgParser, MalformedIntIsError) {
  const char* argv[] = {"prog", "--rounds", "abc"};
  ArgParser args(3, argv);
  (void)args.get_int("rounds", 1, "h");
  EXPECT_FALSE(args.error().empty());
}

TEST(ArgParser, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  ArgParser args(2, argv);
  (void)args.get_int("rounds", 1, "the round count");
  EXPECT_TRUE(args.help_requested());
  EXPECT_NE(args.help_text().find("rounds"), std::string::npos);
  EXPECT_NE(args.help_text().find("the round count"), std::string::npos);
}

TEST(ArgParser, NegativeNumberAsValue) {
  const char* argv[] = {"prog", "--shift=-5"};
  ArgParser args(2, argv);
  EXPECT_EQ(args.get_int("shift", 0, "h"), -5);
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  log_info() << "should be suppressed";  // visible check: no crash
  set_log_level(saved);
  SUCCEED();
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.restart();
  EXPECT_GE(watch.seconds(), 0.0);
}

}  // namespace
}  // namespace tanglefl
