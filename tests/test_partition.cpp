#include "data/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tanglefl::data {
namespace {

DataSplit make_pool(std::size_t n, std::size_t classes) {
  DataSplit pool;
  pool.features = nn::Tensor({n, 2});
  pool.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.features.at(i, 0) = static_cast<float>(i);
    pool.labels[i] = static_cast<std::int32_t>(i % classes);
  }
  return pool;
}

TEST(PartitionDirichlet, EverySampleAssignedOnce) {
  Rng rng(1);
  const DataSplit pool = make_pool(120, 4);
  const auto shards = partition_dirichlet(pool, 5, 4, 0.5, rng);
  ASSERT_EQ(shards.size(), 5u);

  std::vector<bool> seen(120, false);
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const auto row = static_cast<std::size_t>(shard.features.at(i, 0));
      EXPECT_FALSE(seen[row]) << "sample assigned twice";
      seen[row] = true;
    }
  }
  EXPECT_EQ(total, 120u);
}

TEST(PartitionDirichlet, SmallAlphaSkewsLabels) {
  Rng rng(2);
  const DataSplit pool = make_pool(400, 4);
  const auto shards = partition_dirichlet(pool, 8, 4, 0.1, rng);

  double mean_max_share = 0.0;
  std::size_t counted = 0;
  for (const auto& shard : shards) {
    if (shard.size() < 10) continue;
    std::vector<int> counts(4, 0);
    for (const auto label : shard.labels) ++counts[static_cast<std::size_t>(label)];
    mean_max_share +=
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(shard.size());
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(mean_max_share / static_cast<double>(counted), 0.4);
}

TEST(PartitionDirichlet, LargeAlphaIsNearIid) {
  Rng rng(3);
  const DataSplit pool = make_pool(800, 4);
  const auto shards = partition_dirichlet(pool, 4, 4, 100.0, rng);
  for (const auto& shard : shards) {
    if (shard.size() < 50) continue;
    std::vector<int> counts(4, 0);
    for (const auto label : shard.labels) ++counts[static_cast<std::size_t>(label)];
    const double max_share =
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(shard.size());
    EXPECT_LT(max_share, 0.4);
  }
}

TEST(PartitionIid, NearEqualShards) {
  Rng rng(4);
  const DataSplit pool = make_pool(103, 3);
  const auto shards = partition_iid(pool, 4, rng);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total = 0;
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 25u);
    EXPECT_LE(shard.size(), 26u);
    total += shard.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(PartitionIid, SingleUserGetsEverything) {
  Rng rng(5);
  const DataSplit pool = make_pool(10, 2);
  const auto shards = partition_iid(pool, 1, rng);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].size(), 10u);
}

TEST(Federate, BuildsDatasetWithSplits) {
  Rng rng(6);
  const DataSplit pool = make_pool(100, 2);
  auto shards = partition_iid(pool, 4, rng);
  const FederatedDataset dataset =
      federate("custom", "MLP", 2, 0.75, std::move(shards), rng);
  EXPECT_EQ(dataset.num_users(), 4u);
  EXPECT_EQ(dataset.name(), "custom");
  for (std::size_t u = 0; u < 4; ++u) {
    const auto& user = dataset.user(u);
    EXPECT_GT(user.train.size(), user.test.size());
  }
}

}  // namespace
}  // namespace tanglefl::data
