#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "data/poison.hpp"
#include "data/training.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl {
namespace {

data::DataSplit make_images(std::size_t n, std::size_t size,
                            std::int32_t label) {
  data::DataSplit split;
  split.features = nn::Tensor({n, 1, size, size});
  split.labels.assign(n, label);
  for (auto& v : split.features.values()) v = 0.2f;
  return split;
}

TEST(BackdoorData, ApplyStampsPatchAndRelabels) {
  const data::DataSplit clean = make_images(3, 6, 2);
  const data::BackdoorTrigger trigger{.target_class = 0,
                                      .patch_size = 2,
                                      .trigger_value = 1.0f};
  const data::DataSplit poisoned = data::apply_backdoor(clean, trigger);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(poisoned.labels[i], 0);
    EXPECT_FLOAT_EQ(poisoned.features.at(i, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(poisoned.features.at(i, 0, 1, 1), 1.0f);
    EXPECT_FLOAT_EQ(poisoned.features.at(i, 0, 3, 3), 0.2f);  // untouched
  }
  // Original untouched.
  EXPECT_FLOAT_EQ(clean.features.at(0, 0, 0, 0), 0.2f);
  EXPECT_EQ(clean.labels[0], 2);
}

TEST(BackdoorData, ApplyRequiresImages) {
  data::DataSplit flat;
  flat.features = nn::Tensor({2, 5});
  flat.labels = {0, 1};
  EXPECT_THROW((void)data::apply_backdoor(flat, {}), std::invalid_argument);
}

TEST(BackdoorData, TrainSplitPoisonsFraction) {
  const data::DataSplit clean = make_images(100, 6, 2);
  Rng rng(1);
  const data::BackdoorTrigger trigger{.target_class = 0,
                                      .patch_size = 2,
                                      .trigger_value = 1.0f};
  const data::DataSplit mixed =
      data::make_backdoor_train_split(clean, trigger, 0.4, rng);
  std::size_t poisoned = 0;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    if (mixed.labels[i] == 0) {
      ++poisoned;
      EXPECT_FLOAT_EQ(mixed.features.at(i, 0, 0, 0), 1.0f);
    } else {
      EXPECT_EQ(mixed.labels[i], 2);
      EXPECT_FLOAT_EQ(mixed.features.at(i, 0, 0, 0), 0.2f);
    }
  }
  EXPECT_EQ(poisoned, 40u);
}

TEST(BackdoorData, PatchClampedToImage) {
  const data::DataSplit tiny = make_images(1, 2, 1);
  const data::BackdoorTrigger trigger{.target_class = 0,
                                      .patch_size = 10,
                                      .trigger_value = 0.9f};
  const data::DataSplit poisoned = data::apply_backdoor(tiny, trigger);
  for (const float v : poisoned.features.values()) EXPECT_FLOAT_EQ(v, 0.9f);
}

TEST(BackdoorMetric, TrainedBackdoorIsDetected) {
  // Train a small CNN on half-poisoned data and check that the success
  // metric sees the backdoor while clean accuracy metrics do not.
  data::FemnistSynthConfig data_config;
  data_config.num_users = 2;
  data_config.num_classes = 3;
  data_config.image_size = 10;
  data_config.mean_samples_per_user = 120.0;
  data_config.seed = 11;
  const auto dataset = data::make_femnist_synth(data_config);

  const data::BackdoorTrigger trigger{.target_class = 1,
                                      .patch_size = 3,
                                      .trigger_value = 1.0f};
  Rng rng(2);
  const data::DataSplit poisoned_train = data::make_backdoor_train_split(
      dataset.user(0).train, trigger, 0.5, rng);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 10;
  model_config.num_classes = 3;
  nn::Model model = nn::make_image_cnn(model_config);
  Rng init_rng(3);
  model.init(init_rng);
  data::TrainConfig train_config;
  train_config.epochs = 10;
  train_config.sgd.learning_rate = 0.08;
  Rng train_rng(4);
  (void)data::train_local(model, poisoned_train, train_config, train_rng);

  const double success =
      data::backdoor_success_rate(model, dataset.user(0).test, trigger);
  EXPECT_GT(success, 0.8);
  // Stealth: clean accuracy remains useful.
  EXPECT_GT(data::evaluate(model, dataset.user(0).train).accuracy, 0.6);
}

TEST(BackdoorMetric, CleanModelHasLowSuccess) {
  data::FemnistSynthConfig data_config;
  data_config.num_users = 2;
  data_config.num_classes = 4;
  data_config.image_size = 10;
  data_config.mean_samples_per_user = 80.0;
  data_config.seed = 12;
  const auto dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 10;
  model_config.num_classes = 4;
  nn::Model model = nn::make_image_cnn(model_config);
  Rng init_rng(5);
  model.init(init_rng);
  data::TrainConfig train_config;
  train_config.epochs = 8;
  train_config.sgd.learning_rate = 0.08;
  Rng train_rng(6);
  (void)data::train_local(model, dataset.user(0).train, train_config,
                          train_rng);

  const data::BackdoorTrigger trigger{.target_class = 1,
                                      .patch_size = 2,
                                      .trigger_value = 1.0f};
  // A model never exposed to the trigger mostly ignores the patch.
  EXPECT_LT(data::backdoor_success_rate(model, dataset.user(0).test, trigger),
            0.6);
}

TEST(BackdoorSimulation, AttackRunsAndRecordsMetric) {
  data::FemnistSynthConfig data_config;
  data_config.num_users = 12;
  data_config.num_classes = 3;
  data_config.image_size = 8;
  data_config.mean_samples_per_user = 20.0;
  data_config.seed = 13;
  const auto dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 8;
  model_config.num_classes = 3;
  model_config.conv1_channels = 2;
  model_config.conv2_channels = 4;
  model_config.hidden = 8;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  core::SimulationConfig config;
  config.rounds = 8;
  config.nodes_per_round = 4;
  config.eval_every = 8;
  config.eval_nodes_fraction = 0.5;
  config.node.training.sgd.learning_rate = 0.05;
  config.attack = core::AttackType::kBackdoor;
  config.malicious_fraction = 0.25;
  config.attack_start_round = 1;
  config.trigger = {.target_class = 1, .patch_size = 2, .trigger_value = 1.0f};
  config.seed = 14;

  core::TangleSimulation sim(dataset, factory, config);
  const core::RunResult result = sim.run();
  ASSERT_FALSE(result.history.empty());
  // Metric populated (some value in [0, 1]); malicious transactions landed.
  EXPECT_GE(result.history.back().backdoor_success, 0.0);
  EXPECT_LE(result.history.back().backdoor_success, 1.0);
  std::size_t malicious = 0;
  for (tangle::TxIndex i = 1; i < sim.tangle().size(); ++i) {
    if (sim.tangle().transaction(i).publisher == "malicious") ++malicious;
  }
  EXPECT_GT(malicious, 0u);
}

TEST(UniformTipSelection, ReturnsOnlyTips) {
  tangle::ModelStore store;
  const auto genesis = store.add({0.0f});
  tangle::Tangle tangle(genesis.id, genesis.hash);
  for (int i = 0; i < 5; ++i) {
    const auto added = store.add({static_cast<float>(i) + 1.0f});
    tangle.add_transaction(std::vector<tangle::TxIndex>{0}, added.id,
                           added.hash, 1);
  }
  Rng rng(1);
  tangle::TipSelectionConfig config;
  config.method = tangle::TipSelectionMethod::kUniform;
  const auto tips = tangle::select_tips(tangle.view(), 100, rng, config);
  const auto tip_set = tangle.view().tips();
  std::vector<int> hits(tangle.size(), 0);
  for (const auto t : tips) {
    EXPECT_TRUE(std::find(tip_set.begin(), tip_set.end(), t) !=
                tip_set.end());
    ++hits[t];
  }
  // Roughly uniform across the 5 tips.
  for (const auto t : tip_set) EXPECT_GT(hits[t], 5);
}

}  // namespace
}  // namespace tanglefl
