#include "support/log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tanglefl {
namespace {

// Restores the global log level after each test so the suite-wide kWarn
// default (set in other test mains) is not perturbed.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

  LogLevel previous_ = LogLevel::kInfo;
};

// Ostream-printable probe that records whether operator<< ever ran; proves
// the early-out skips formatting entirely, not just the final write.
struct FormatProbe {
  mutable int* format_calls;
};

std::ostream& operator<<(std::ostream& os, const FormatProbe& probe) {
  ++(*probe.format_calls);
  return os << "probe";
}

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "visible info");
  log_line(LogLevel::kError, "visible error");
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[info] visible info"), std::string::npos);
  EXPECT_NE(output.find("[error] visible error"), std::string::npos);
}

TEST_F(LogTest, SuppressesBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kDebug, "hidden debug");
  log_line(LogLevel::kInfo, "hidden info");
  log_line(LogLevel::kWarn, "visible warn");
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("[warn] visible warn"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kDebug, "d");
  log_line(LogLevel::kInfo, "i");
  log_line(LogLevel::kWarn, "w");
  log_line(LogLevel::kError, "e");
  // A message "at" kOff must not sneak through the threshold comparison.
  log_line(LogLevel::kOff, "o");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, LogEnabledMatchesThreshold) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kOff));

  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, SuppressedStreamSkipsFormatting) {
  set_log_level(LogLevel::kWarn);
  int format_calls = 0;
  testing::internal::CaptureStderr();
  log_debug() << "value: " << FormatProbe{&format_calls};
  log_info() << FormatProbe{&format_calls};
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(format_calls, 0);
  EXPECT_EQ(output, "");
}

TEST_F(LogTest, EnabledStreamFormatsAndEmits) {
  set_log_level(LogLevel::kDebug);
  int format_calls = 0;
  testing::internal::CaptureStderr();
  log_warn() << "probe=" << FormatProbe{&format_calls};
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(format_calls, 1);
  EXPECT_NE(output.find("[warn] probe=probe"), std::string::npos);
}

}  // namespace
}  // namespace tanglefl
