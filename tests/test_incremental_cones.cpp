// The incremental cone state must be a drop-in replacement for the
// BitMatrix reachability pass: with pruning off, every past/future value it
// maintains must equal what TangleView derives from scratch, for any
// append/advance interleaving. Under a prune floor the documented
// "frozen region counted wholesale" semantics apply instead, and the DFS
// must never descend below the floor.
#include "tangle/incremental_cones.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "tangle/model_store.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }

  void grow(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    const std::uint64_t base = tangle.transaction(tangle.size() - 1).round;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t n = tangle.size();
      std::vector<TxIndex> parents = {
          static_cast<TxIndex>(rng.uniform_index(n))};
      if (rng.uniform() < 0.7) {
        parents.push_back(static_cast<TxIndex>(rng.uniform_index(n)));
      }
      add(std::move(parents), static_cast<float>(i), base + i + 1);
    }
  }
};

void expect_matches_view(const Fixture& f, const IncrementalConeState& state,
                         std::size_t count) {
  const TangleView view = f.tangle.view_prefix(count);
  const std::vector<std::uint32_t> past = view.past_cone_sizes();
  const std::vector<std::uint32_t> future = view.future_cone_sizes();
  ASSERT_GE(state.processed(), count);
  for (TxIndex i = 0; i < count; ++i) {
    EXPECT_EQ(state.past_cone_sizes()[i], past[i]) << "past cone of " << i;
  }
  // Future cones are only prefix-comparable when the state stops exactly at
  // the view boundary (later appends grow earlier future cones).
  if (state.processed() == count) {
    for (TxIndex i = 0; i < count; ++i) {
      EXPECT_EQ(state.future_cone_sizes()[i], future[i])
          << "future cone of " << i;
    }
  }
}

TEST(IncrementalCones, MatchesBitMatrixOnGrownTangle) {
  Fixture f;
  f.grow(150, /*seed=*/17);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());
  EXPECT_EQ(state.processed(), f.tangle.size());
  expect_matches_view(f, state, f.tangle.size());
}

TEST(IncrementalCones, DeltaAdvancesMatchOneShotAdvance) {
  Fixture f;
  f.grow(120, /*seed=*/23);
  IncrementalConeState delta;
  // Advance in ragged steps, checking the past prefix at each stop.
  for (const std::size_t stop : {1UL, 2UL, 5UL, 31UL, 32UL, 77UL, 121UL}) {
    delta.advance_to(f.tangle, stop);
    EXPECT_EQ(delta.processed(), stop);
    expect_matches_view(f, delta, stop);
  }
  IncrementalConeState one_shot;
  one_shot.advance_to(f.tangle, f.tangle.size());
  ASSERT_EQ(delta.processed(), one_shot.processed());
  for (TxIndex i = 0; i < f.tangle.size(); ++i) {
    EXPECT_EQ(delta.past_cone_sizes()[i], one_shot.past_cone_sizes()[i]);
    EXPECT_EQ(delta.future_cone_sizes()[i], one_shot.future_cone_sizes()[i]);
  }
}

TEST(IncrementalCones, AdvanceBelowProcessedIsANoOp) {
  Fixture f;
  f.grow(20, /*seed=*/3);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());
  const std::vector<std::uint32_t> past(state.past_cone_sizes().begin(),
                                        state.past_cone_sizes().end());
  state.advance_to(f.tangle, 5);
  EXPECT_EQ(state.processed(), f.tangle.size());
  for (TxIndex i = 0; i < past.size(); ++i) {
    EXPECT_EQ(state.past_cone_sizes()[i], past[i]);
  }
}

TEST(IncrementalCones, PrunedAppendCountsFrozenRegionWholesale) {
  // Chain 0 <- 1 <- 2 <- 3: with the floor at 2, appending 4 on parent 3
  // must see past(4) = floor + |{2, 3}| = 4 and must not touch future
  // counts below the floor.
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  const TxIndex c = f.add({b}, 3.0f, 3);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());
  const std::uint32_t frozen_future = state.future_cone_sizes()[a];

  f.tangle.set_prune_floor(b);
  const TxIndex d = f.add({c}, 4.0f, 4);
  state.advance_to(f.tangle, f.tangle.size());
  EXPECT_EQ(state.past_cone_sizes()[d], 4u);  // floor (2) + {b, c}
  EXPECT_EQ(state.future_cone_sizes()[a], frozen_future);  // untouched
  EXPECT_EQ(state.future_cone_sizes()[c], 1u);
}

TEST(IncrementalCones, RestoreRoundTripsState) {
  Fixture f;
  f.grow(60, /*seed=*/41);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());

  std::vector<std::uint32_t> past(state.past_cone_sizes().begin(),
                                  state.past_cone_sizes().end());
  std::vector<std::uint32_t> future(state.future_cone_sizes().begin(),
                                    state.future_cone_sizes().end());
  IncrementalConeState restored;
  restored.restore(past, future);
  EXPECT_EQ(restored.processed(), state.processed());

  // Continuing from restored state matches continuing from the original.
  f.grow(40, /*seed=*/43);
  state.advance_to(f.tangle, f.tangle.size());
  restored.advance_to(f.tangle, f.tangle.size());
  for (TxIndex i = 0; i < f.tangle.size(); ++i) {
    EXPECT_EQ(restored.past_cone_sizes()[i], state.past_cone_sizes()[i]);
    EXPECT_EQ(restored.future_cone_sizes()[i], state.future_cone_sizes()[i]);
  }
}

TEST(IncrementalCones, ResetDropsEverything) {
  Fixture f;
  f.grow(10, /*seed=*/5);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());
  state.reset();
  EXPECT_EQ(state.processed(), 0u);
  EXPECT_TRUE(state.past_cone_sizes().empty());
  EXPECT_TRUE(state.future_cone_sizes().empty());
}

TEST(IncrementalCones, MemoryBytesScalesLinearly) {
  Fixture f;
  f.grow(200, /*seed=*/7);
  IncrementalConeState state;
  state.advance_to(f.tangle, f.tangle.size());
  const std::size_t n = f.tangle.size();
  EXPECT_GT(state.memory_bytes(), 0u);
  // O(n) words with small constants — nowhere near the n^2/64 bit matrix.
  EXPECT_LT(state.memory_bytes(), 64u * n * sizeof(std::uint32_t));
}

TEST(IncrementalCones, BuildIncrementalEntryMatchesFullBuild) {
  Fixture f;
  f.grow(90, /*seed=*/29);
  const TangleView view = f.tangle.view();
  IncrementalConeState state;
  const auto incremental = ViewCacheEntry::build_incremental(view, state);
  const auto full = ViewCacheEntry::build(view);
  ASSERT_EQ(incremental->view_size(), full->view_size());
  for (TxIndex i = 0; i < view.size(); ++i) {
    EXPECT_EQ(incremental->past_cone_sizes()[i], full->past_cone_sizes()[i]);
    EXPECT_EQ(incremental->future_cone_sizes()[i],
              full->future_cone_sizes()[i]);
  }
  EXPECT_EQ(std::vector<TxIndex>(incremental->tips().begin(),
                                 incremental->tips().end()),
            std::vector<TxIndex>(full->tips().begin(), full->tips().end()));
  EXPECT_EQ(incremental->root(), full->root());
}

}  // namespace
}  // namespace tanglefl::tangle
