#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tanglefl {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("unlucky");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<long> partial(64, 0);
  pool.parallel_for(64, [&](std::size_t i) {
    long acc = 0;
    for (long k = 0; k <= static_cast<long>(i); ++k) acc += k;
    partial[i] = acc;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (long i = 0; i < 64; ++i) expected += i * (i + 1) / 2;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace tanglefl
