#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tanglefl {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("unlucky");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<long> partial(64, 0);
  pool.parallel_for(64, [&](std::size_t i) {
    long acc = 0;
    for (long k = 0; k <= static_cast<long>(i); ++k) acc += k;
    partial[i] = acc;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (long i = 0; i < 64; ++i) expected += i * (i + 1) / 2;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ParallelForAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
               std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call must be a harmless no-op
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ReentrantParallelForFromWorkerRunsInline) {
  ThreadPool pool(3);
  // parallel_for issued from inside a worker must complete (serially)
  // instead of deadlocking on lanes no worker is free to run.
  std::atomic<int> inner_calls{0};
  auto future = pool.submit([&] {
    pool.parallel_for(8, [&](std::size_t) { inner_calls.fetch_add(1); });
    return true;
  });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(future.get());
  EXPECT_EQ(inner_calls.load(), 8);
}

TEST(ThreadPool, NestedParallelForFromBodyCompletes) {
  ThreadPool pool(2);
  // The outer loop's lanes run partly on workers (re-entrant: inline) and
  // partly on the calling thread (not a worker: parallel path) — both
  // nesting flavors must terminate and cover every (i, j) pair.
  std::atomic<int> cells{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { cells.fetch_add(1); });
  });
  EXPECT_EQ(cells.load(), 16);
}

TEST(ThreadPool, CallingThreadParticipatesInParallelFor) {
  ThreadPool pool(2);
  // With every worker wedged on a slow task, parallel_for must still make
  // progress through the calling thread's lane.
  std::atomic<bool> release{false};
  std::vector<std::future<void>> blockers;
  for (std::size_t w = 0; w < pool.thread_count(); ++w) {
    blockers.push_back(pool.submit([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  std::atomic<int> covered{0};
  std::thread driver([&] {
    pool.parallel_for(64, [&](std::size_t) { covered.fetch_add(1); });
  });
  // The caller lane alone must reach full coverage; only then unwedge the
  // workers so the queued helper lanes (and parallel_for itself) can finish.
  while (covered.load() < 64) std::this_thread::yield();
  release.store(true);
  driver.join();
  for (auto& b : blockers) b.get();
  EXPECT_EQ(covered.load(), 64);
}

TEST(ThreadPool, ShutdownUnderLoadStress) {
  // Hammer construction/teardown with tasks in flight: every accepted task
  // must run exactly once, and rejected submissions must fail loudly.
  for (int iteration = 0; iteration < 20; ++iteration) {
    std::atomic<int> executed{0};
    int accepted = 0;
    {
      ThreadPool pool(4);
      for (int i = 0; i < 200; ++i) {
        try {
          (void)pool.submit([&executed] { executed.fetch_add(1); });
          ++accepted;
        } catch (const std::runtime_error&) {
          ADD_FAILURE() << "submit rejected before shutdown";
        }
      }
    }
    EXPECT_EQ(executed.load(), accepted);
  }
}

}  // namespace
}  // namespace tanglefl
