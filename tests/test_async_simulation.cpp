#include "core/async_simulation.hpp"

#include <gtest/gtest.h>

#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::core {
namespace {

data::FederatedDataset small_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 12;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = 3;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

AsyncSimulationConfig fast_config() {
  AsyncSimulationConfig config;
  config.duration_seconds = 30.0;
  config.wake_rate_per_node = 0.3;
  config.mean_training_seconds = 0.5;
  config.network_delay_seconds = 0.5;
  config.eval_every_seconds = 10.0;
  config.eval_nodes_fraction = 0.5;
  config.node.training.epochs = 1;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 7;
  return config;
}

TEST(AsyncSimulation, ViewCacheIsBitIdenticalToForcedRecompute) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig cached = fast_config();
  cached.use_view_cache = true;
  AsyncSimulationConfig direct = fast_config();
  direct.use_view_cache = false;
  AsyncTangleSimulation a(dataset, small_factory(), cached);
  AsyncTangleSimulation b(dataset, small_factory(), direct);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
    EXPECT_EQ(ra.history[i].tip_count, rb.history[i].tip_count);
  }
}

TEST(AsyncSimulation, LedgerGrowsOverTime) {
  const auto dataset = small_dataset();
  AsyncTangleSimulation sim(dataset, small_factory(), fast_config());
  const RunResult result = sim.run();
  EXPECT_GT(sim.tangle().size(), 1u);
  EXPECT_GT(sim.stats().wakeups, 10u);
  EXPECT_EQ(sim.stats().published + sim.stats().lost +
                sim.stats().abstained + sim.stats().in_flight,
            sim.stats().wakeups);
  EXPECT_FALSE(result.history.empty());
}

TEST(AsyncSimulation, PublishTimesAreMonotonic) {
  const auto dataset = small_dataset();
  AsyncTangleSimulation sim(dataset, small_factory(), fast_config());
  (void)sim.run();
  const tangle::Tangle& tangle = sim.tangle();
  for (tangle::TxIndex i = 1; i < tangle.size(); ++i) {
    EXPECT_GE(tangle.transaction(i).round, tangle.transaction(i - 1).round);
  }
}

TEST(AsyncSimulation, ParentsRespectNetworkDelay) {
  // A transaction published at time t trained on a view at some start
  // time s < t; its parents must have been published no later than
  // s - delay < t. With training >= 0 this means parent publish times are
  // strictly older than the child's by at least the network delay is not
  // exactly assertable (training varies), but parents must precede
  // children in time.
  const auto dataset = small_dataset();
  AsyncSimulationConfig config = fast_config();
  config.network_delay_seconds = 1.0;
  AsyncTangleSimulation sim(dataset, small_factory(), config);
  (void)sim.run();
  const tangle::Tangle& tangle = sim.tangle();
  for (tangle::TxIndex i = 1; i < tangle.size(); ++i) {
    for (const tangle::TxIndex p : tangle.parent_indices(i)) {
      EXPECT_LT(tangle.transaction(p).round, tangle.transaction(i).round);
    }
  }
}

TEST(AsyncSimulation, DeterministicInSeed) {
  const auto dataset = small_dataset();
  AsyncTangleSimulation a(dataset, small_factory(), fast_config());
  AsyncTangleSimulation b(dataset, small_factory(), fast_config());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(a.tangle().transaction(i).id, b.tangle().transaction(i).id);
  }
  ASSERT_EQ(ra.history.size(), rb.history.size());
}

TEST(AsyncSimulation, MessageLossReducesLedgerSize) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig lossless = fast_config();
  AsyncSimulationConfig lossy = fast_config();
  lossy.publish_loss = 0.6;

  AsyncTangleSimulation a(dataset, small_factory(), lossless);
  AsyncTangleSimulation b(dataset, small_factory(), lossy);
  (void)a.run();
  (void)b.run();
  EXPECT_GT(b.stats().lost, 0u);
  EXPECT_LT(b.stats().published, a.stats().published);
}

TEST(AsyncSimulation, HigherWakeRateProducesMoreTransactions) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig slow = fast_config();
  slow.wake_rate_per_node = 0.1;
  AsyncSimulationConfig fast = fast_config();
  fast.wake_rate_per_node = 0.6;

  AsyncTangleSimulation a(dataset, small_factory(), slow);
  AsyncTangleSimulation b(dataset, small_factory(), fast);
  (void)a.run();
  (void)b.run();
  EXPECT_GT(b.stats().wakeups, a.stats().wakeups);
}

TEST(AsyncSimulation, EvaluationCadence) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig config = fast_config();
  config.duration_seconds = 25.0;
  config.eval_every_seconds = 10.0;
  AsyncTangleSimulation sim(dataset, small_factory(), config);
  const RunResult result = sim.run();
  // Evaluations at 10s, 20s, plus the final one at 25s.
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.history[0].round, 10u);
  EXPECT_EQ(result.history[1].round, 20u);
  EXPECT_EQ(result.history[2].round, 25u);
}

TEST(AsyncSimulation, AttackAfterStartTimeOnly) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig config = fast_config();
  config.attack = AttackType::kRandomPoison;
  config.malicious_fraction = 0.4;
  config.attack_start_seconds = 15.0;
  AsyncTangleSimulation sim(dataset, small_factory(), config);
  (void)sim.run();
  for (tangle::TxIndex i = 1; i < sim.tangle().size(); ++i) {
    const auto& tx = sim.tangle().transaction(i);
    if (tx.publisher == "malicious") {
      // Published after training that started at >= 15s.
      EXPECT_GE(tx.round, 15u * 1000000u);
    }
  }
}

TEST(AsyncSimulation, LearnsOverTheHorizon) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig config = fast_config();
  config.duration_seconds = 80.0;
  config.wake_rate_per_node = 0.4;
  config.eval_every_seconds = 80.0;
  config.node.num_tips = 3;
  config.node.tip_sample_size = 6;
  config.node.reference.num_reference_models = 5;
  config.node.reference.confidence.sample_rounds = 10;
  const RunResult result =
      run_async_tangle_learning(dataset, small_factory(), config);
  // 3 classes: chance ~0.33.
  EXPECT_GT(result.final_accuracy(), 0.45);
}

}  // namespace
}  // namespace tanglefl::core
