#include "support/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tanglefl {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const std::string msg(64, 'x');
  const auto digest = Sha256::hash(msg);
  // Same input, streamed in odd-sized chunks, must agree.
  Sha256 hasher;
  hasher.update(msg.substr(0, 7));
  hasher.update(msg.substr(7, 31));
  hasher.update(msg.substr(38));
  EXPECT_EQ(to_hex(hasher.finish()), to_hex(digest));
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes fits length in one block; 56 forces an extra block.
  const auto d55 = Sha256::hash(std::string(55, 'y'));
  const auto d56 = Sha256::hash(std::string(56, 'y'));
  EXPECT_NE(to_hex(d55), to_hex(d56));
}

TEST(Sha256, ResetRestoresInitialState) {
  Sha256 hasher;
  hasher.update("garbage");
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(to_hex(hasher.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(to_hex(Sha256::hash("model-a")), to_hex(Sha256::hash("model-b")));
}

TEST(Sha256, LeadingZeroBitsAllZero) {
  Sha256Digest digest{};
  EXPECT_EQ(leading_zero_bits(digest), 256);
}

TEST(Sha256, LeadingZeroBitsTopBitSet) {
  Sha256Digest digest{};
  digest[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(digest), 0);
}

TEST(Sha256, LeadingZeroBitsPartialByte) {
  Sha256Digest digest{};
  digest[0] = 0x00;
  digest[1] = 0x10;  // 0001 0000 -> 8 + 3 leading zeros
  EXPECT_EQ(leading_zero_bits(digest), 11);
}

TEST(Sha256, HexEncodingLength) {
  EXPECT_EQ(to_hex(Sha256::hash("x")).size(), 64u);
}

}  // namespace
}  // namespace tanglefl
