#include "tangle/tangle.hpp"

#include <gtest/gtest.h>

#include "tangle/model_store.hpp"

namespace tanglefl::tangle {
namespace {

/// Builds a tangle with `extra` payloads ready to attach.
struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round,
              std::string publisher = {}) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round,
                                  std::move(publisher));
  }
};

TEST(Tangle, StartsWithGenesisOnly) {
  Fixture f;
  EXPECT_EQ(f.tangle.size(), 1u);
  EXPECT_EQ(f.tangle.genesis(), 0u);
  EXPECT_TRUE(f.tangle.transaction(0).is_genesis());
  EXPECT_EQ(f.tangle.view().tips(), (std::vector<TxIndex>{0}));
}

TEST(Tangle, AddTransactionUpdatesTips) {
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  EXPECT_EQ(f.tangle.view().tips(), (std::vector<TxIndex>{a}));

  const TxIndex b = f.add({0, 0}, 2.0f, 1);
  EXPECT_EQ(f.tangle.view().tips(), (std::vector<TxIndex>{a, b}));

  const TxIndex c = f.add({a, b}, 3.0f, 2);
  EXPECT_EQ(f.tangle.view().tips(), (std::vector<TxIndex>{c}));
}

TEST(Tangle, DuplicateParentsSingleEdge) {
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  EXPECT_EQ(f.tangle.approvers(0).size(), 1u);
  EXPECT_EQ(f.tangle.parent_indices(a).size(), 2u);  // ids preserved
}

TEST(Tangle, ThreeParentTransaction) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({0}, 3.0f, 1);
  const TxIndex d = f.add({a, b, c}, 4.0f, 2);
  EXPECT_EQ(f.tangle.parent_indices(d).size(), 3u);
  EXPECT_EQ(f.tangle.view().tips(), (std::vector<TxIndex>{d}));
}

TEST(Tangle, UnknownParentThrows) {
  Fixture f;
  const auto added = f.store.add({9.0f});
  const std::vector<TxIndex> bad = {7};
  EXPECT_THROW(
      (void)f.tangle.add_transaction(bad, added.id, added.hash, 1),
      std::out_of_range);
}

TEST(Tangle, EmptyParentsThrow) {
  Fixture f;
  const auto added = f.store.add({9.0f});
  EXPECT_THROW(
      (void)f.tangle.add_transaction(std::vector<TxIndex>{}, added.id,
                                     added.hash, 1),
      std::invalid_argument);
}

TEST(Tangle, DecreasingRoundThrows) {
  Fixture f;
  f.add({0}, 1.0f, 5);
  const auto added = f.store.add({2.0f});
  const std::vector<TxIndex> parents = {0};
  EXPECT_THROW(
      (void)f.tangle.add_transaction(parents, added.id, added.hash, 4),
      std::invalid_argument);
}

TEST(Tangle, FindById) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  EXPECT_EQ(f.tangle.find(f.tangle.transaction(a).id), a);
  EXPECT_FALSE(f.tangle.find(Sha256::hash("missing")).has_value());
}

TEST(Tangle, FindCoversEveryTransaction) {
  Fixture f;
  std::vector<TxIndex> added = {0};
  for (int i = 0; i < 20; ++i) {
    added.push_back(f.add({added.back()}, static_cast<float>(i), i + 1));
  }
  for (const TxIndex i : added) {
    EXPECT_EQ(f.tangle.find(f.tangle.transaction(i).id), i);
  }
}

TEST(Tangle, FindDuplicateIdReturnsFirstIndex) {
  Fixture f;
  // Identical parents, payload hash, round, and nonce hash to the same id.
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 1.0f, 1);
  ASSERT_EQ(to_hex(f.tangle.transaction(a).id),
            to_hex(f.tangle.transaction(b).id));
  EXPECT_EQ(f.tangle.find(f.tangle.transaction(b).id), a);
}

TEST(Tangle, VisibleCountForRound) {
  Fixture f;
  f.add({0}, 1.0f, 1);
  f.add({0}, 2.0f, 1);
  f.add({0}, 3.0f, 2);
  // Round 1 participants see only genesis (round 0).
  EXPECT_EQ(f.tangle.visible_count_for_round(1), 1u);
  // Round 2 sees genesis + the two round-1 transactions.
  EXPECT_EQ(f.tangle.visible_count_for_round(2), 3u);
  EXPECT_EQ(f.tangle.visible_count_for_round(3), 4u);
}

TEST(TangleView, PrefixHidesLaterTransactions) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  (void)b;
  const TangleView view = f.tangle.view_prefix(2);
  EXPECT_EQ(view.size(), 2u);
  // Within the prefix, `a` has no approver, so it is a tip again.
  EXPECT_EQ(view.tips(), (std::vector<TxIndex>{a}));
}

TEST(TangleView, PastConeSizes) {
  Fixture f;
  // genesis <- a <- c, genesis <- b <- c.
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({a, b}, 3.0f, 2);
  const auto past = f.tangle.view().past_cone_sizes();
  EXPECT_EQ(past[0], 0u);
  EXPECT_EQ(past[a], 1u);  // approves genesis
  EXPECT_EQ(past[b], 1u);
  EXPECT_EQ(past[c], 3u);  // a, b, genesis
}

TEST(TangleView, FutureConeSizes) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({a, b}, 3.0f, 2);
  const auto future = f.tangle.view().future_cone_sizes();
  EXPECT_EQ(future[0], 3u);  // a, b, c all approve genesis
  EXPECT_EQ(future[a], 1u);
  EXPECT_EQ(future[b], 1u);
  EXPECT_EQ(future[c], 0u);
}

TEST(TangleView, DiamondConesCountedOnce) {
  Fixture f;
  // Diamond: a approves genesis twice over two paths; the cone must not
  // double count.
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({a, b}, 3.0f, 2);
  const TxIndex d = f.add({c, a}, 4.0f, 3);
  const auto past = f.tangle.view().past_cone_sizes();
  EXPECT_EQ(past[d], 4u);  // c, a, b, genesis
}

TEST(TangleView, ApprovesIsTransitive) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  const TxIndex c = f.add({b}, 3.0f, 3);
  const TangleView view = f.tangle.view();
  EXPECT_TRUE(view.approves(c, a));
  EXPECT_TRUE(view.approves(c, 0));
  EXPECT_TRUE(view.approves(c, c));  // reflexive by convention
  EXPECT_FALSE(view.approves(a, c));
}

TEST(TangleView, ApprovesBranchIsolation) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TangleView view = f.tangle.view();
  EXPECT_FALSE(view.approves(a, b));
  EXPECT_FALSE(view.approves(b, a));
}

TEST(TangleView, ConeSizesRestrictedToView) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  f.add({a}, 2.0f, 2);  // outside the prefix below
  const TangleView view = f.tangle.view_prefix(2);
  const auto future = view.future_cone_sizes();
  EXPECT_EQ(future[0], 1u);  // only `a` is inside the view
  EXPECT_EQ(future[a], 0u);
}

TEST(Tangle, SerializeRoundTrip) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1, "alice");
  const TxIndex b = f.add({0, a}, 2.0f, 2, "bob");
  (void)b;

  ByteWriter writer;
  f.tangle.serialize(writer);
  ByteReader reader(writer.bytes());
  const Tangle back = Tangle::deserialize(reader);

  EXPECT_EQ(back.size(), f.tangle.size());
  for (TxIndex i = 0; i < back.size(); ++i) {
    EXPECT_EQ(to_hex(back.transaction(i).id),
              to_hex(f.tangle.transaction(i).id));
    EXPECT_EQ(back.parent_indices(i), f.tangle.parent_indices(i));
    EXPECT_EQ(back.transaction(i).publisher,
              f.tangle.transaction(i).publisher);
  }
  EXPECT_EQ(back.view().tips(), f.tangle.view().tips());
}

TEST(Tangle, DeserializeRejectsForwardParent) {
  Fixture f;
  f.add({0}, 1.0f, 1);
  ByteWriter writer;
  f.tangle.serialize(writer);
  auto bytes = writer.take();
  // The final 8 bytes are the parent index of the last transaction (its
  // parent list has one entry). Point it at itself (index 1).
  bytes[bytes.size() - 8] = 1;
  ByteReader reader(bytes);
  EXPECT_THROW((void)Tangle::deserialize(reader), SerializeError);
}

TEST(Tangle, DeserializeRebuildsFindIndex) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  ByteWriter writer;
  f.tangle.serialize(writer);
  ByteReader reader(writer.bytes());
  const Tangle back = Tangle::deserialize(reader);
  EXPECT_EQ(back.find(f.tangle.transaction(a).id), a);
  EXPECT_EQ(back.find(f.tangle.transaction(b).id), b);
  EXPECT_FALSE(back.find(Sha256::hash("missing")).has_value());
}

TEST(Tangle, DeserializeRejectsDuplicateId) {
  Fixture f;
  // Two identical header tuples produce the same content-hash id; a
  // serialized stream carrying such a pair is corrupt or forged.
  f.add({0}, 1.0f, 1);
  f.add({0}, 1.0f, 1);
  ByteWriter writer;
  f.tangle.serialize(writer);
  ByteReader reader(writer.bytes());
  EXPECT_THROW((void)Tangle::deserialize(reader), SerializeError);
}

TEST(Tangle, GenesisIdVerifiable) {
  Fixture f;
  const Transaction& genesis = f.tangle.transaction(0);
  const TransactionId expected = compute_transaction_id(
      {}, genesis.payload_hash, genesis.round, genesis.nonce);
  EXPECT_EQ(to_hex(genesis.id), to_hex(expected));
}

}  // namespace
}  // namespace tanglefl::tangle
