#include "tangle/pow.hpp"

#include <gtest/gtest.h>

namespace tanglefl::tangle {
namespace {

std::vector<TransactionId> parents() {
  return {Sha256::hash("parent-1"), Sha256::hash("parent-2")};
}

TEST(Pow, DifficultyZeroSolvesImmediately) {
  const auto nonce = solve_pow(parents(), Sha256::hash("payload"), 1, 0);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_EQ(*nonce, 0u);
}

TEST(Pow, SolvedNonceClearsDifficulty) {
  const auto p = parents();
  const Sha256Digest payload = Sha256::hash("payload");
  const int difficulty = 10;
  const auto nonce = solve_pow(p, payload, 1, difficulty);
  ASSERT_TRUE(nonce.has_value());
  const TransactionId id = compute_transaction_id(p, payload, 1, *nonce);
  EXPECT_GE(leading_zero_bits(id), difficulty);
}

TEST(Pow, ExhaustedAttemptsReturnNullopt) {
  // 64 leading zero bits within 4 attempts is effectively impossible.
  const auto nonce =
      solve_pow(parents(), Sha256::hash("payload"), 1, 64, /*max_attempts=*/4);
  EXPECT_FALSE(nonce.has_value());
}

TEST(Pow, VerifyAcceptsValidTransaction) {
  Transaction tx;
  tx.parents = parents();
  tx.payload_hash = Sha256::hash("payload");
  tx.round = 3;
  const int difficulty = 8;
  const auto nonce = solve_pow(tx.parents, tx.payload_hash, tx.round, difficulty);
  ASSERT_TRUE(nonce.has_value());
  tx.nonce = *nonce;
  tx.id = compute_transaction_id(tx.parents, tx.payload_hash, tx.round, tx.nonce);
  EXPECT_TRUE(verify_pow(tx, difficulty));
}

TEST(Pow, VerifyRejectsTamperedPayload) {
  Transaction tx;
  tx.parents = parents();
  tx.payload_hash = Sha256::hash("payload");
  tx.round = 3;
  tx.id = compute_transaction_id(tx.parents, tx.payload_hash, tx.round, 0);
  tx.payload_hash = Sha256::hash("tampered");  // id no longer matches
  EXPECT_FALSE(verify_pow(tx, 0));
}

TEST(Pow, VerifyRejectsInsufficientDifficulty) {
  Transaction tx;
  tx.parents = parents();
  tx.payload_hash = Sha256::hash("payload");
  tx.round = 3;
  tx.nonce = 0;
  tx.id = compute_transaction_id(tx.parents, tx.payload_hash, tx.round, 0);
  // Honest id, but demand an absurd difficulty.
  EXPECT_FALSE(verify_pow(tx, 128));
}

TEST(Pow, VerifyAcceptsGenesisConvention) {
  Transaction genesis;
  genesis.payload_hash = Sha256::hash("genesis-model");
  genesis.id =
      compute_transaction_id({}, genesis.payload_hash, 0, 0);
  genesis.parents = {genesis.id};  // self-approval convention
  EXPECT_TRUE(verify_pow(genesis, 0));
}

TEST(Pow, HigherDifficultyNeedsMoreAttempts) {
  const auto p = parents();
  const Sha256Digest payload = Sha256::hash("payload-2");
  const auto easy = solve_pow(p, payload, 1, 4);
  const auto hard = solve_pow(p, payload, 1, 12);
  ASSERT_TRUE(easy.has_value());
  ASSERT_TRUE(hard.has_value());
  EXPECT_LE(*easy, *hard);
}

}  // namespace
}  // namespace tanglefl::tangle
