#include "core/biased_walk.hpp"

#include <gtest/gtest.h>

#include "core/node.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::core {
namespace {

/// Fixture with an MLP factory, one "good" and one "bad" payload, and a
/// validation split the good payload fits.
struct Fixture {
  nn::ModelFactory factory = [] { return nn::make_mlp(2, 4, 2); };
  tangle::ModelStore store;
  tangle::Tangle tangle;
  data::DataSplit validation;

  Fixture() : tangle(make_genesis(store, factory)) {
    validation.features = nn::Tensor({8, 2});
    validation.labels.resize(8);
    for (std::size_t i = 0; i < 8; ++i) {
      const bool positive = i % 2 == 0;
      validation.features.at(i, 0) = positive ? 3.0f : -3.0f;
      validation.labels[i] = positive ? 1 : 0;
    }
  }

  static tangle::Tangle make_genesis(tangle::ModelStore& store,
                                     const nn::ModelFactory& factory) {
    nn::Model model = factory();
    Rng rng(1);
    model.init(rng);
    const auto added = store.add(model.get_parameters());
    return tangle::Tangle(added.id, added.hash);
  }

  /// A model trained to fit the validation data.
  nn::ParamVector good_params() {
    nn::Model model = factory();
    Rng rng(2);
    model.init(rng);
    data::TrainConfig config;
    config.epochs = 30;
    config.sgd.learning_rate = 0.3;
    Rng train_rng(3);
    (void)data::train_local(model, validation, config, train_rng);
    return model.get_parameters();
  }

  /// Random-noise parameters (high loss everywhere).
  nn::ParamVector bad_params() {
    nn::Model model = factory();
    nn::ParamVector params(model.parameter_count());
    Rng rng(4);
    for (auto& p : params) p = static_cast<float>(rng.normal()) * 3.0f;
    return params;
  }

  tangle::TxIndex add(std::vector<tangle::TxIndex> parents,
                      nn::ParamVector params, std::uint64_t round) {
    const auto added = store.add(std::move(params));
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(LocalLossCache, MemoizesEvaluations) {
  Fixture f;
  const tangle::TxIndex a = f.add({0}, f.good_params(), 1);
  LocalLossCache cache(f.store, f.factory, f.validation);
  const tangle::TangleView view = f.tangle.view();
  const double first = cache.loss(view, a);
  const double second = cache.loss(view, a);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(cache.evaluations(), 1u);
}

TEST(LocalLossCache, GoodModelScoresLower) {
  Fixture f;
  const tangle::TxIndex good = f.add({0}, f.good_params(), 1);
  const tangle::TxIndex bad = f.add({0}, f.bad_params(), 1);
  LocalLossCache cache(f.store, f.factory, f.validation);
  const tangle::TangleView view = f.tangle.view();
  EXPECT_LT(cache.loss(view, good), cache.loss(view, bad));
}

TEST(LocalLossCache, EmptyValidationIsZero) {
  Fixture f;
  const tangle::TxIndex a = f.add({0}, f.bad_params(), 1);
  const data::DataSplit empty;
  LocalLossCache cache(f.store, f.factory, empty);
  EXPECT_DOUBLE_EQ(cache.loss(f.tangle.view(), a), 0.0);
  EXPECT_EQ(cache.evaluations(), 0u);
}

TEST(BiasedWalk, StrongBiasPrefersFittingBranch) {
  Fixture f;
  const tangle::TxIndex good = f.add({0}, f.good_params(), 1);
  const tangle::TxIndex bad = f.add({0}, f.bad_params(), 1);
  (void)bad;

  LocalLossCache cache(f.store, f.factory, f.validation);
  Rng rng(5);
  BiasedWalkConfig config;
  config.alpha = 0.0;
  config.beta = 10.0;
  int good_hits = 0;
  const auto tips =
      biased_select_tips(f.tangle.view(), 200, cache, rng, config);
  for (const tangle::TxIndex t : tips) {
    if (t == good) ++good_hits;
  }
  EXPECT_GT(good_hits, 190);
}

TEST(BiasedWalk, ZeroBetaMatchesStructuralWalkDistribution) {
  Fixture f;
  f.add({0}, f.good_params(), 1);
  f.add({0}, f.bad_params(), 1);

  LocalLossCache cache(f.store, f.factory, f.validation);
  Rng rng(6);
  BiasedWalkConfig config;
  config.alpha = 0.0;
  config.beta = 0.0;
  int first_hits = 0;
  const auto tips =
      biased_select_tips(f.tangle.view(), 600, cache, rng, config);
  for (const tangle::TxIndex t : tips) {
    if (t == 1) ++first_hits;
  }
  // Symmetric fork, no bias: ~50/50.
  EXPECT_NEAR(first_hits, 300, 75);
  // beta == 0 must not trigger any model evaluation.
  EXPECT_EQ(cache.evaluations(), 0u);
}

TEST(BiasedWalk, ReachesTipsOnly) {
  Fixture f;
  const tangle::TxIndex a = f.add({0}, f.good_params(), 1);
  f.add({a}, f.bad_params(), 2);
  f.add({a}, f.good_params(), 2);

  LocalLossCache cache(f.store, f.factory, f.validation);
  Rng rng(7);
  const auto tip_set = f.tangle.view().tips();
  const auto tips =
      biased_select_tips(f.tangle.view(), 50, cache, rng, {0.0, 2.0});
  for (const tangle::TxIndex t : tips) {
    EXPECT_TRUE(std::find(tip_set.begin(), tip_set.end(), t) !=
                tip_set.end());
  }
}

TEST(BiasedWalk, NodeConfigIntegration) {
  // HonestNode with use_biased_walk runs end-to-end and still publishes.
  Fixture f;
  f.add({0}, f.good_params(), 1);
  f.add({0}, f.bad_params(), 1);

  data::UserData user;
  user.user_id = "u";
  user.train = f.validation;
  user.test = f.validation;

  NodeConfig config;
  config.use_biased_walk = true;
  config.walk_loss_beta = 4.0;
  config.num_tips = 2;
  config.tip_sample_size = 4;
  config.training.epochs = 4;
  config.training.sgd.learning_rate = 0.2;

  HonestNode node(config);
  const tangle::TangleView view = f.tangle.view();
  NodeContext context{view, f.store, f.factory, 2, Rng(9)};
  const auto publish = node.step(context, user);
  ASSERT_TRUE(publish.has_value());
}

TEST(MergeFederated, CombinesAndPrefixesUsers) {
  data::FemnistSynthConfig a_config;
  a_config.num_users = 3;
  a_config.num_classes = 4;
  a_config.image_size = 8;
  a_config.seed = 1;
  const auto a = data::make_femnist_synth(a_config);
  data::FemnistSynthConfig b_config = a_config;
  b_config.seed = 2;
  const auto b = data::make_femnist_synth(b_config);

  const std::vector<const data::FederatedDataset*> parts = {&a, &b};
  const auto merged =
      data::merge_federated("clusters", "CNN", 0.8, parts);
  EXPECT_EQ(merged.num_users(), 6u);
  EXPECT_EQ(merged.user(0).user_id.rfind("femnist-synth/", 0), 0u);
}

TEST(MergeFederated, EmptyThrows) {
  const std::vector<const data::FederatedDataset*> parts;
  EXPECT_THROW((void)data::merge_federated("x", "y", 0.8, parts),
               std::invalid_argument);
}

}  // namespace
}  // namespace tanglefl::core
