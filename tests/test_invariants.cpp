// Exercises the debug invariant layer (tangle/invariants.hpp): every check
// must fire on a deliberately corrupted tangle with an actionable message,
// and stay silent on healthy ones. TangleTestAccess is the test-only
// backdoor that forges the corruption an encapsulated Tangle can never
// reach through its public API.
#include "tangle/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value,
              std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }

  /// Diamond: genesis <- a, b <- c.
  void build_diamond() {
    const TxIndex a = add({0, 0}, 1.0f, 1);
    const TxIndex b = add({0, 0}, 2.0f, 1);
    add({a, b}, 3.0f, 2);
  }
};

bool any_violation_mentions(const std::vector<std::string>& violations,
                            const std::string& needle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

TEST(Invariants, HealthyTangleHasNoViolations) {
  Fixture f;
  f.build_diamond();
  EXPECT_TRUE(f.tangle.check_invariants().empty());
  EXPECT_NO_THROW(assert_invariants(f.tangle));
}

TEST(Invariants, HealthyGenesisOnlyTangle) {
  Fixture f;
  EXPECT_TRUE(f.tangle.check_invariants().empty());
}

TEST(Invariants, ForgedForwardParentReportsCycle) {
  Fixture f;
  f.build_diamond();
  // Rewire tx 1's parent edge to point at tx 2 AND tx 2's at tx 1 would be
  // a 2-cycle; a single forward edge already breaks the topological order,
  // which is the cycle witness the checker reports.
  TangleTestAccess::parent_indices(f.tangle)[1] = {2};
  const auto violations = f.tangle.check_invariants();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(any_violation_mentions(violations, "cycle"))
      << violations.front();
  EXPECT_THROW(assert_invariants(f.tangle), CheckFailure);
}

TEST(Invariants, SelfParentReportsCycle) {
  Fixture f;
  f.build_diamond();
  TangleTestAccess::parent_indices(f.tangle)[2] = {2};
  EXPECT_TRUE(any_violation_mentions(f.tangle.check_invariants(), "cycle"));
}

TEST(Invariants, MissingParentReported) {
  Fixture f;
  f.build_diamond();
  TangleTestAccess::parent_indices(f.tangle)[1] = {99};
  const auto violations = f.tangle.check_invariants();
  EXPECT_TRUE(any_violation_mentions(violations, "does not exist"))
      << (violations.empty() ? "no violations" : violations.front());
}

TEST(Invariants, StaleApproverCountReported) {
  Fixture f;
  f.build_diamond();
  // Drop tx 3's registration from tx 1's approver list: the cumulative
  // weights the biased walk computes from these lists would silently skew.
  TangleTestAccess::approvers(f.tangle)[1].clear();
  const auto violations = f.tangle.check_invariants();
  EXPECT_TRUE(any_violation_mentions(violations, "approver"))
      << (violations.empty() ? "no violations" : violations.front());
}

TEST(Invariants, PhantomApproverReported) {
  Fixture f;
  f.build_diamond();
  TangleTestAccess::approvers(f.tangle)[2].push_back(1);
  EXPECT_TRUE(
      any_violation_mentions(f.tangle.check_invariants(), "approver"));
}

TEST(Invariants, ForgedHeaderIdReported) {
  Fixture f;
  f.build_diamond();
  // Bump the round without recomputing the id: header integrity broken.
  TangleTestAccess::transactions(f.tangle)[3].round = 77;
  const auto violations = f.tangle.check_invariants();
  EXPECT_TRUE(any_violation_mentions(violations, "id does not hash"))
      << (violations.empty() ? "no violations" : violations.front());
}

TEST(Invariants, DecreasingRoundsReported) {
  Fixture f;
  f.build_diamond();
  auto& txs = TangleTestAccess::transactions(f.tangle);
  txs[1].round = 5;
  txs[1].id = compute_transaction_id(txs[1].parents, txs[1].payload_hash,
                                     txs[1].round, txs[1].nonce);
  EXPECT_TRUE(
      any_violation_mentions(f.tangle.check_invariants(), "non-decreasing"));
}

TEST(Invariants, BrokenGenesisConventionReported) {
  Fixture f;
  TangleTestAccess::transactions(f.tangle)[0].parents.clear();
  EXPECT_TRUE(
      any_violation_mentions(f.tangle.check_invariants(), "genesis"));
}

TEST(Invariants, EveryMessageNamesTheTransaction) {
  Fixture f;
  f.build_diamond();
  TangleTestAccess::parent_indices(f.tangle)[2] = {9};
  for (const std::string& v : f.tangle.check_invariants()) {
    EXPECT_NE(v.find("tx "), std::string::npos) << v;
  }
}

// --- confidence invariants -------------------------------------------------

TEST(ConfidenceInvariants, HealthyConfidencesPass) {
  Fixture f;
  f.build_diamond();
  const TangleView view = f.tangle.view();
  Rng rng(42);
  ConfidenceConfig config;
  config.sample_rounds = 16;
  const std::vector<double> conf = compute_confidences(view, rng, config);
  EXPECT_TRUE(find_confidence_violations(view, conf).empty());
}

TEST(ConfidenceInvariants, OutOfRangeReported) {
  Fixture f;
  f.build_diamond();
  const TangleView view = f.tangle.view();
  std::vector<double> conf(view.size(), 0.5);
  conf[1] = 1.5;
  EXPECT_TRUE(any_violation_mentions(
      find_confidence_violations(view, conf), "outside [0, 1]"));
  conf[1] = -0.25;
  EXPECT_FALSE(find_confidence_violations(view, conf).empty());
}

TEST(ConfidenceInvariants, NonMonotoneAlongEdgeReported) {
  Fixture f;
  f.build_diamond();
  const TangleView view = f.tangle.view();
  // Child (tx 3) more confident than its parent (tx 1): impossible, every
  // sampled walk hitting tx 3 also hits tx 1 via the past cone.
  std::vector<double> conf = {1.0, 0.2, 0.9, 0.8};
  EXPECT_TRUE(any_violation_mentions(
      find_confidence_violations(view, conf), "monotonicity"));
}

TEST(ConfidenceInvariants, SizeMismatchReported) {
  Fixture f;
  f.build_diamond();
  const std::vector<double> conf(2, 0.5);
  EXPECT_FALSE(
      find_confidence_violations(f.tangle.view(), conf).empty());
}

// --- DCHECK plumbing -------------------------------------------------------

TEST(Check, DcheckMsgThrowsCheckFailureWhenEnabled) {
#if defined(TANGLEFL_DEBUG_CHECKS)
  EXPECT_THROW(TANGLEFL_DCHECK_MSG(1 == 2, "one is not two"), CheckFailure);
  try {
    TANGLEFL_DCHECK_MSG(false, "context message");
  } catch (const CheckFailure& failure) {
    EXPECT_NE(std::string(failure.what()).find("context message"),
              std::string::npos);
  }
#else
  // Compiled out: the condition must not be evaluated.
  bool evaluated = false;
  TANGLEFL_DCHECK([&] { evaluated = true; return false; }());
  EXPECT_FALSE(evaluated);
#endif
}

TEST(Check, MutationPathsRevalidateUnderDebugChecks) {
#if defined(TANGLEFL_DEBUG_CHECKS)
  // Corrupt, then mutate through the public API: the post-mutation audit
  // must trip. (The corruption is planted *before* add_transaction so the
  // add itself is the detection point.)
  Fixture f;
  f.build_diamond();
  TangleTestAccess::approvers(f.tangle)[0].clear();
  const auto added = f.store.add({9.0f});
  const std::vector<TxIndex> parents = {3};
  EXPECT_THROW(
      f.tangle.add_transaction(parents, added.id, added.hash, 3),
      CheckFailure);
#else
  GTEST_SKIP() << "TANGLEFL_DEBUG_CHECKS is off in this configuration";
#endif
}

}  // namespace
}  // namespace tanglefl::tangle
