#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace tanglefl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(99);
  Rng a = parent.split(7);
  Rng b = parent.split(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitKeysProduceIndependentStreams) {
  const Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng parent(5);
  Rng reference(5);
  (void)parent.split(3);
  EXPECT_EQ(parent(), reference());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(42);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(42);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, WeightedChoiceFollowsWeights) {
  Rng rng(42);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_choice(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.02);
}

TEST(Rng, WeightedChoiceAllZeroIsUniform) {
  Rng rng(42);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) ++counts[rng.weighted_choice(weights)];
  for (const int c : counts) EXPECT_GT(c, 2000);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(42);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(42);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(42);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(42);
  for (const double alpha : {0.1, 0.5, 1.0, 10.0}) {
    const auto sample = rng.dirichlet(alpha, 8);
    double total = 0.0;
    for (const double s : sample) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSmallAlphaIsSpiky) {
  Rng rng(42);
  // With alpha = 0.05 most mass concentrates on a few categories.
  double max_mean = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto sample = rng.dirichlet(0.05, 10);
    max_mean += *std::max_element(sample.begin(), sample.end());
  }
  EXPECT_GT(max_mean / 100.0, 0.6);
}

TEST(Rng, DirichletLargeAlphaIsFlat) {
  Rng rng(42);
  double max_mean = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto sample = rng.dirichlet(100.0, 10);
    max_mean += *std::max_element(sample.begin(), sample.end());
  }
  EXPECT_LT(max_mean / 100.0, 0.2);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(42);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  rng.shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace tanglefl
