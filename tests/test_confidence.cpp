#include "tangle/confidence.hpp"

#include <gtest/gtest.h>

#include "tangle/model_store.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(Confidence, GenesisAlwaysFullConfidence) {
  Fixture f;
  f.add({0}, 1.0f, 1);
  f.add({0}, 2.0f, 1);
  Rng rng(1);
  const auto confidence = compute_confidences(f.tangle.view(), rng, {});
  EXPECT_DOUBLE_EQ(confidence[0], 1.0);
}

TEST(Confidence, ValuesInUnitInterval) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  f.add({0}, 2.0f, 1);
  f.add({a}, 3.0f, 2);
  Rng rng(2);
  const auto confidence = compute_confidences(f.tangle.view(), rng, {});
  for (const double c : confidence) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Confidence, TransactionApprovedByAllTipsHasFullConfidence) {
  Fixture f;
  // genesis <- mid <- {t1, t2}: every walk's tip approves mid.
  const TxIndex mid = f.add({0}, 1.0f, 1);
  f.add({mid}, 2.0f, 2);
  f.add({mid}, 3.0f, 2);
  Rng rng(3);
  ConfidenceConfig config;
  config.sample_rounds = 64;
  const auto confidence = compute_confidences(f.tangle.view(), rng, config);
  EXPECT_DOUBLE_EQ(confidence[mid], 1.0);
}

TEST(Confidence, ForkSplitsConfidence) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  Rng rng(4);
  ConfidenceConfig config;
  config.sample_rounds = 400;
  config.tip_selection.alpha = 0.0;
  const auto confidence = compute_confidences(f.tangle.view(), rng, config);
  EXPECT_NEAR(confidence[a], 0.5, 0.1);
  EXPECT_NEAR(confidence[b], 0.5, 0.1);
  EXPECT_NEAR(confidence[a] + confidence[b], 1.0, 1e-9);
}

TEST(Confidence, ZeroSampleRoundsGiveZeros) {
  Fixture f;
  f.add({0}, 1.0f, 1);
  Rng rng(5);
  ConfidenceConfig config;
  config.sample_rounds = 0;
  const auto confidence = compute_confidences(f.tangle.view(), rng, config);
  for (const double c : confidence) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Confidence, DeterministicInRng) {
  Fixture f;
  for (int i = 0; i < 5; ++i) f.add({0}, static_cast<float>(i), 1);
  Rng rng_a(6), rng_b(6);
  EXPECT_EQ(compute_confidences(f.tangle.view(), rng_a, {}),
            compute_confidences(f.tangle.view(), rng_b, {}));
}

TEST(Ratings, MatchPastConeSizes) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({0}, 2.0f, 1);
  const TxIndex c = f.add({a, b}, 3.0f, 2);
  const auto ratings = compute_ratings(f.tangle.view());
  EXPECT_DOUBLE_EQ(ratings[0], 0.0);
  EXPECT_DOUBLE_EQ(ratings[a], 1.0);
  EXPECT_DOUBLE_EQ(ratings[c], 3.0);
}

TEST(Ratings, AllTransactionsContributeEqually) {
  // The prototype weighs all transactions the same (Section III-A): a
  // chain of k transactions gives rating k for the newest.
  Fixture f;
  TxIndex tip = 0;
  for (int i = 0; i < 6; ++i) {
    tip = f.add({tip}, static_cast<float>(i), static_cast<std::uint64_t>(i) + 1);
  }
  const auto ratings = compute_ratings(f.tangle.view());
  EXPECT_DOUBLE_EQ(ratings[tip], 6.0);
}

}  // namespace
}  // namespace tanglefl::tangle
