// Equivalence tests for the blocked/tiled kernels in nn/ops.cpp against the
// pre-optimization loops preserved in ops::reference, plus the bit-identity
// guarantees of the determinism contract:
//   - the matmul family matches the reference bitwise (same per-element
//     reduction order), with or without a ThreadPool;
//   - conv and the fused-LSTM weight gradients regroup the reduction, so
//     they match within a relative tolerance instead;
//   - train_local produces byte-identical parameters for any kernel-pool
//     size.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/training.hpp"
#include "nn/layer.hpp"
#include "nn/model_zoo.hpp"
#include "nn/ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.values()) v = static_cast<float>(rng.normal());
  return t;
}

/// Bitwise equality — stricter than operator== (distinguishes -0.0f).
void expect_bit_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

void expect_near_rel(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float scale =
        std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0f});
    ASSERT_NEAR(a[i], b[i], tol * scale) << "at flat index " << i;
  }
}

// ------------------------------------------------------------ GEMM family

struct GemmShape {
  std::size_t m, k, n;
};

// Cover the register-tile interior (multiples of 4x16), every edge case
// (tails in each dimension), and degenerate single-row/column shapes.
const GemmShape kShapes[] = {
    {1, 1, 1},  {3, 5, 7},    {4, 16, 16},  {8, 32, 64},
    {7, 13, 17}, {33, 65, 47}, {10, 576, 62},
};

TEST(OpsKernels, MatmulBitwiseMatchesReference) {
  Rng rng(11);
  ThreadPool pool(4);
  for (const auto& s : kShapes) {
    const Tensor a = random_tensor({s.m, s.k}, rng);
    const Tensor b = random_tensor({s.k, s.n}, rng);
    Tensor want({s.m, s.n}), serial({s.m, s.n}), pooled({s.m, s.n});
    ops::reference::matmul(a, b, want);
    ops::matmul(a, b, serial);
    ops::matmul(a, b, pooled, &pool);
    expect_bit_equal(want, serial);
    expect_bit_equal(want, pooled);
  }
}

TEST(OpsKernels, MatmulTransABitwiseMatchesReference) {
  Rng rng(12);
  ThreadPool pool(4);
  for (const auto& s : kShapes) {
    const Tensor a = random_tensor({s.m, s.k}, rng);
    const Tensor b = random_tensor({s.m, s.n}, rng);
    Tensor want({s.k, s.n}), serial({s.k, s.n}), pooled({s.k, s.n});
    ops::reference::matmul_trans_a(a, b, want);
    ops::matmul_trans_a(a, b, serial);
    ops::matmul_trans_a(a, b, pooled, &pool);
    expect_bit_equal(want, serial);
    expect_bit_equal(want, pooled);
  }
}

TEST(OpsKernels, MatmulTransBBitwiseMatchesReference) {
  Rng rng(13);
  ThreadPool pool(4);
  for (const auto& s : kShapes) {
    const Tensor a = random_tensor({s.m, s.k}, rng);
    const Tensor b = random_tensor({s.n, s.k}, rng);
    Tensor want({s.m, s.n}), serial({s.m, s.n}), pooled({s.m, s.n});
    ops::reference::matmul_trans_b(a, b, want);
    ops::matmul_trans_b(a, b, serial);
    ops::matmul_trans_b(a, b, pooled, &pool);
    expect_bit_equal(want, serial);
    expect_bit_equal(want, pooled);
  }
}

TEST(OpsKernels, GemmAccumulateEqualsOverwriteThenAdd) {
  // kAdd computes c0 + S with S reduced in registers, which is exactly the
  // overwrite result added onto the seed — bitwise, not just approximately.
  Rng rng(14);
  for (const auto& s : kShapes) {
    const Tensor a = random_tensor({s.m, s.k}, rng);
    const Tensor b = random_tensor({s.k, s.n}, rng);
    const Tensor seed = random_tensor({s.m, s.n}, rng);
    Tensor product({s.m, s.n});
    ops::gemm(a.data(), s.k, b.data(), s.n, product.data(), s.n, s.m, s.k,
              s.n);
    Tensor want = seed;
    for (std::size_t i = 0; i < want.size(); ++i) want[i] += product[i];

    Tensor got = seed;
    ops::gemm(a.data(), s.k, b.data(), s.n, got.data(), s.n, s.m, s.k, s.n,
              ops::Accumulate::kAdd);
    expect_bit_equal(want, got);
  }
}

TEST(OpsKernels, GemmStridedViewMatchesDenseCopy) {
  // The fused LSTM feeds timestep views with lda > row width; a strided A
  // must give the same bits as a densely copied one.
  Rng rng(15);
  const std::size_t m = 6, k = 9, n = 20, lda = 31;
  const Tensor backing = random_tensor({m, lda}, rng);
  Tensor dense({m, k});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) dense.at(i, j) = backing.at(i, j);
  }
  const Tensor b = random_tensor({k, n}, rng);
  Tensor want({m, n}), got({m, n});
  ops::gemm(dense.data(), k, b.data(), n, want.data(), n, m, k, n);
  ops::gemm(backing.data(), lda, b.data(), n, got.data(), n, m, k, n);
  expect_bit_equal(want, got);
}

// ------------------------------------------------------------ convolution

struct ConvCase {
  std::size_t batch, h, w;
  ops::Conv2DShape shape;
};

const ConvCase kConvCases[] = {
    {3, 9, 9, {2, 5, 3, 1, 1}},    // stride 1, padded: im2col fast path
    {2, 11, 7, {3, 4, 3, 2, 0}},   // stride 2, no padding: generic path
    {1, 14, 14, {1, 8, 3, 1, 0}},  // paper CNN first layer shape
    {2, 5, 5, {2, 3, 5, 1, 2}},    // kernel as large as the input
};

TEST(OpsKernels, ConvForwardMatchesReference) {
  Rng rng(21);
  ThreadPool pool(4);
  ops::Workspace workspace;
  for (const auto& c : kConvCases) {
    const auto& s = c.shape;
    const Tensor x = random_tensor({c.batch, s.in_channels, c.h, c.w}, rng);
    const Tensor w = random_tensor(
        {s.out_channels, s.in_channels, s.kernel, s.kernel}, rng);
    const Tensor bias = random_tensor({s.out_channels}, rng);
    const std::size_t oh = s.out_extent(c.h), ow = s.out_extent(c.w);
    Tensor want({c.batch, s.out_channels, oh, ow});
    Tensor got({c.batch, s.out_channels, oh, ow});
    ops::reference::conv2d_forward(x, w, bias, s, want);
    // The GEMM regroups each output's reduction (bias + full patch sum
    // instead of a running chain), so compare within tolerance.
    ops::conv2d_forward(x, w, bias, s, got, &workspace, nullptr);
    expect_near_rel(want, got, 1e-5f);
    ops::conv2d_forward(x, w, bias, s, got, &workspace, &pool);
    expect_near_rel(want, got, 1e-5f);
  }
}

TEST(OpsKernels, ConvBackwardMatchesReference) {
  Rng rng(22);
  ThreadPool pool(4);
  ops::Workspace workspace;
  for (const auto& c : kConvCases) {
    const auto& s = c.shape;
    const Tensor x = random_tensor({c.batch, s.in_channels, c.h, c.w}, rng);
    const Tensor w = random_tensor(
        {s.out_channels, s.in_channels, s.kernel, s.kernel}, rng);
    const std::size_t oh = s.out_extent(c.h), ow = s.out_extent(c.w);
    const Tensor dy = random_tensor({c.batch, s.out_channels, oh, ow}, rng);

    Tensor dx_want(x.shape()), dw_want(w.shape()), db_want({s.out_channels});
    ops::reference::conv2d_backward(x, w, s, dy, dx_want, dw_want, db_want);

    Tensor dx(x.shape()), dw(w.shape()), db({s.out_channels});
    ops::conv2d_backward(x, w, s, dy, dx, dw, db, &workspace, &pool);
    expect_near_rel(dx_want, dx, 1e-5f);
    expect_near_rel(dw_want, dw, 1e-5f);
    // dbias keeps the reference's exact (o, y, x) running-sum order.
    expect_bit_equal(db_want, db);
  }
}

TEST(OpsKernels, ConvBackwardShapeChecksThrow) {
#if !defined(TANGLEFL_DEBUG_CHECKS)
  GTEST_SKIP() << "TANGLEFL_DEBUG_CHECKS is off in this configuration";
#else
  Rng rng(23);
  const ops::Conv2DShape s{2, 3, 3, 1, 0};
  const Tensor x = random_tensor({1, 2, 6, 6}, rng);
  const Tensor w = random_tensor({3, 2, 3, 3}, rng);
  const Tensor dy = random_tensor({1, 3, 4, 4}, rng);
  Tensor dx(x.shape());
  Tensor dw(w.shape());
  Tensor db_bad({2});  // wrong: must be out_channels = 3
  EXPECT_THROW(ops::conv2d_backward(x, w, s, dy, dx, dw, db_bad),
               CheckFailure);

  Tensor db({3});
  Tensor dx_bad({1, 2, 5, 6});  // wrong input height
  EXPECT_THROW(ops::conv2d_backward(x, w, s, dy, dx_bad, dw, db),
               CheckFailure);

  const Tensor w_bad = random_tensor({3, 1, 3, 3}, rng);  // channel mismatch
  Tensor dw_bad(w_bad.shape());
  EXPECT_THROW(ops::conv2d_backward(x, w_bad, s, dy, dx, dw_bad, db),
               CheckFailure);
#endif
}

// ------------------------------------------------------------- fused LSTM

TEST(OpsKernels, LstmFusedMatchesReferencePath) {
  const std::size_t in = 7, hidden = 12, batch = 3, seq = 5;
  Rng rng(31);
  LSTM fused(in, hidden);
  Rng init(99);
  fused.init(init);
  auto reference_copy = fused.clone();

  const Tensor x = random_tensor({batch, seq, in}, rng);
  const Tensor go = random_tensor({batch, seq, hidden}, rng);

  const Tensor y_fused = fused.forward(x, /*training=*/true);
  for (Tensor* g : fused.gradients()) g->zero();
  const Tensor dx_fused = fused.backward(go);

  ops::set_reference_kernels(true);
  const Tensor y_ref = reference_copy->forward(x, /*training=*/true);
  for (Tensor* g : reference_copy->gradients()) g->zero();
  const Tensor dx_ref = reference_copy->backward(go);
  ops::set_reference_kernels(false);

  // Forward, dx and dbias preserve the reference reduction order exactly.
  expect_bit_equal(y_ref, y_fused);
  expect_bit_equal(dx_ref, dx_fused);
  const auto grads_fused = fused.gradients();
  const auto grads_ref = reference_copy->gradients();
  ASSERT_EQ(grads_fused.size(), 3u);
  // dw_input_ / dw_hidden_ are regrouped (one whole-sequence GEMM instead
  // of per-timestep accumulation): tolerance.
  expect_near_rel(*grads_ref[0], *grads_fused[0], 1e-5f);
  expect_near_rel(*grads_ref[1], *grads_fused[1], 1e-5f);
  expect_bit_equal(*grads_ref[2], *grads_fused[2]);
}

// --------------------------------------------------------------- Workspace

TEST(OpsKernels, WorkspaceSpansStayValidAcrossGrowth) {
  ops::Workspace workspace;
  std::span<float> first = workspace.take(16);
  for (std::size_t i = 0; i < first.size(); ++i) {
    first[i] = static_cast<float>(i);
  }
  const float* first_data = first.data();
  // Force new chunks; the first span must not move.
  (void)workspace.take(1 << 16);
  (void)workspace.take(1 << 18);
  EXPECT_EQ(first.data(), first_data);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], static_cast<float>(i));
  }
}

TEST(OpsKernels, WorkspaceResetRecyclesWithoutReleasing) {
  ops::Workspace workspace;
  const std::span<float> a = workspace.take(100);
  (void)workspace.take(200);
  const std::size_t capacity = workspace.capacity();
  EXPECT_GE(capacity, 300u);

  workspace.reset();
  EXPECT_EQ(workspace.capacity(), capacity);
  const std::span<float> again = workspace.take(100);
  // Same storage handed out again: steady state allocates nothing.
  EXPECT_EQ(again.data(), a.data());
  EXPECT_EQ(workspace.capacity(), capacity);
}

// -------------------------------------------- end-to-end pool bit-identity

std::vector<float> train_cnn_params(ThreadPool* kernel_pool) {
  ImageCnnConfig cnn;
  cnn.image_size = 14;
  Model model = make_image_cnn(cnn);
  Rng init(5);
  model.init(init);

  data::DataSplit split;
  Rng data_rng(6);
  split.features = random_tensor({24, 1, 14, 14}, data_rng);
  split.labels.resize(24);
  for (std::size_t i = 0; i < split.labels.size(); ++i) {
    split.labels[i] = static_cast<std::int32_t>(i % cnn.num_classes);
  }

  data::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.kernel_pool = kernel_pool;
  Rng train_rng(7);
  data::train_local(model, split, config, train_rng);
  return model.get_parameters();
}

std::vector<float> train_lstm_params(ThreadPool* kernel_pool) {
  CharLstmConfig lstm;
  Model model = make_char_lstm(lstm);
  Rng init(8);
  model.init(init);

  data::DataSplit split;
  Rng data_rng(9);
  split.features = Tensor({16, lstm.seq_length});
  auto tokens = split.features.values();
  for (auto& t : tokens) {
    t = static_cast<float>(data_rng.uniform_index(lstm.vocab_size));
  }
  split.labels.resize(16);
  for (std::size_t i = 0; i < split.labels.size(); ++i) {
    split.labels[i] =
        static_cast<std::int32_t>(data_rng.uniform_index(lstm.vocab_size));
  }

  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.kernel_pool = kernel_pool;
  Rng train_rng(10);
  data::train_local(model, split, config, train_rng);
  return model.get_parameters();
}

TEST(OpsKernels, TrainLocalBitIdenticalAcrossPoolSizes) {
  const std::vector<float> serial_cnn = train_cnn_params(nullptr);
  const std::vector<float> serial_lstm = train_lstm_params(nullptr);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    const std::vector<float> cnn = train_cnn_params(&pool);
    const std::vector<float> lstm = train_lstm_params(&pool);
    ASSERT_EQ(serial_cnn.size(), cnn.size());
    EXPECT_EQ(std::memcmp(serial_cnn.data(), cnn.data(),
                          cnn.size() * sizeof(float)),
              0)
        << "CNN params differ with " << workers << " kernel workers";
    ASSERT_EQ(serial_lstm.size(), lstm.size());
    EXPECT_EQ(std::memcmp(serial_lstm.data(), lstm.data(),
                          lstm.size() * sizeof(float)),
              0)
        << "LSTM params differ with " << workers << " kernel workers";
  }
}

}  // namespace
}  // namespace tanglefl::nn
