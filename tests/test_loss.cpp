#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tanglefl::nn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits({2, 4});  // all zeros -> uniform softmax
  const std::vector<std::int32_t> labels = {0, 3};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0f), 1e-5f);
}

TEST(Loss, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 20.0f;
  const std::vector<std::int32_t> labels = {1};
  EXPECT_LT(softmax_cross_entropy(logits, labels).loss, 1e-3f);
}

TEST(Loss, ConfidentWrongPredictionHasHighLoss) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 20.0f;
  const std::vector<std::int32_t> labels = {2};
  EXPECT_GT(softmax_cross_entropy(logits, labels).loss, 10.0f);
}

TEST(Loss, GradientRowsSumToZero) {
  Tensor logits({3, 5});
  logits.at(0, 1) = 2.0f;
  logits.at(1, 3) = -1.0f;
  const std::vector<std::int32_t> labels = {1, 0, 4};
  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 3; ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) total += result.grad.at(r, c);
    EXPECT_NEAR(total, 0.0f, 1e-6f);
  }
}

TEST(Loss, GradientNegativeAtLabel) {
  const Tensor logits({1, 3});
  const std::vector<std::int32_t> labels = {2};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_LT(result.grad.at(0, 2), 0.0f);
  EXPECT_GT(result.grad.at(0, 0), 0.0f);
}

TEST(Loss, LossOnlyVariantAgrees) {
  Tensor logits({2, 6});
  logits.at(0, 2) = 1.5f;
  logits.at(1, 5) = -0.5f;
  const std::vector<std::int32_t> labels = {2, 0};
  const LossResult full = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(full.loss, softmax_cross_entropy_loss(logits, labels), 1e-6f);
}

TEST(Loss, ExtremeLogitsStayFinite) {
  Tensor logits({1, 2});
  logits.at(0, 0) = 1e4f;
  logits.at(0, 1) = -1e4f;
  const std::vector<std::int32_t> labels = {1};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_TRUE(std::isfinite(result.grad[0]));
}

TEST(Accuracy, PerfectPrediction) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 5.0f;
  logits.at(1, 2) = 5.0f;
  const std::vector<std::int32_t> labels = {1, 2};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 1.0);
}

TEST(Accuracy, HalfCorrect) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 5.0f;
  logits.at(1, 0) = 5.0f;
  const std::vector<std::int32_t> labels = {1, 2};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

TEST(Accuracy, EmptyBatchIsZero) {
  const Tensor logits({0, 3});
  const std::vector<std::int32_t> labels;
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.0);
}

}  // namespace
}  // namespace tanglefl::nn
