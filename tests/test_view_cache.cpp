// The shared cone cache must be a pure memoization layer: every quantity a
// ViewCacheEntry serves (cones, tips, approver lists) must equal what the
// TangleView computes directly, on prefix views and on masked (gossip
// replica) views alike, and the parallel fill must be bit-identical to the
// serial one. The ViewCache keying tests pin the identity rules: prefix
// count for prefix views, membership for masked views, and the
// "mask covers the whole prefix" normalization that lets converged
// replicas share entries.
#include "tangle/view_cache.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tip_selection.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }

  /// Grows a random DAG: each transaction approves 1-2 uniformly random
  /// earlier transactions. Rounds continue from the current last round so
  /// repeated calls keep rounds non-decreasing.
  void grow(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    const std::uint64_t base = tangle.transaction(tangle.size() - 1).round;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t n = tangle.size();
      std::vector<TxIndex> parents = {
          static_cast<TxIndex>(rng.uniform_index(n))};
      if (rng.uniform() < 0.7) {
        parents.push_back(static_cast<TxIndex>(rng.uniform_index(n)));
      }
      add(std::move(parents), static_cast<float>(i), base + i + 1);
    }
  }

  /// Random ancestor-closed membership containing `seeds` random
  /// transactions plus their full past cones.
  std::vector<bool> random_membership(std::size_t seeds, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<bool> members(tangle.size(), false);
    members[0] = true;
    std::vector<TxIndex> stack;
    for (std::size_t s = 0; s < seeds; ++s) {
      stack.push_back(static_cast<TxIndex>(rng.uniform_index(tangle.size())));
    }
    while (!stack.empty()) {
      const TxIndex i = stack.back();
      stack.pop_back();
      if (members[i]) continue;
      members[i] = true;
      if (i == 0) continue;
      for (const TxIndex p : tangle.parent_indices(i)) stack.push_back(p);
    }
    return members;
  }
};

void expect_entry_matches_view(const TangleView& view,
                               const ViewCacheEntry& entry) {
  ASSERT_EQ(entry.view_size(), view.size());
  const std::vector<std::uint32_t> past = view.past_cone_sizes();
  const std::vector<std::uint32_t> future = view.future_cone_sizes();
  ASSERT_EQ(entry.past_cone_sizes().size(), past.size());
  ASSERT_EQ(entry.future_cone_sizes().size(), future.size());
  for (TxIndex i = 0; i < view.size(); ++i) {
    EXPECT_EQ(entry.past_cone_sizes()[i], past[i]) << "past cone of " << i;
    EXPECT_EQ(entry.future_cone_sizes()[i], future[i])
        << "future cone of " << i;
  }

  const std::vector<TxIndex> tips = view.tips();
  ASSERT_EQ(entry.tips().size(), tips.size());
  for (std::size_t i = 0; i < tips.size(); ++i) {
    EXPECT_EQ(entry.tips()[i], tips[i]);
  }

  for (TxIndex i = 0; i < view.size(); ++i) {
    if (!view.contains(i)) continue;
    const std::vector<TxIndex> direct = view.approvers(i);
    const std::span<const TxIndex> cached = entry.approvers(i);
    ASSERT_EQ(cached.size(), direct.size()) << "approvers of " << i;
    for (std::size_t k = 0; k < direct.size(); ++k) {
      EXPECT_EQ(cached[k], direct[k]) << "approver " << k << " of " << i;
    }
  }
}

TEST(ViewCacheEntry, MatchesDirectQueriesOnRandomPrefixViews) {
  Fixture f;
  f.grow(120, /*seed=*/7);
  for (const std::size_t count : {1UL, 2UL, 17UL, 64UL, 121UL}) {
    const TangleView view = f.tangle.view_prefix(count);
    const auto entry = ViewCacheEntry::build(view);
    expect_entry_matches_view(view, *entry);
  }
}

TEST(ViewCacheEntry, MatchesDirectQueriesOnMaskedViews) {
  Fixture f;
  f.grow(100, /*seed=*/11);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TangleView view(f.tangle, f.random_membership(10, seed));
    const auto entry = ViewCacheEntry::build(view);
    expect_entry_matches_view(view, *entry);
  }
}

TEST(ViewCacheEntry, GenesisOnlyView) {
  Fixture f;
  const auto entry = ViewCacheEntry::build(f.tangle.view());
  EXPECT_EQ(entry->view_size(), 1u);
  EXPECT_EQ(entry->past_cone_sizes()[0], 0u);
  EXPECT_EQ(entry->future_cone_sizes()[0], 0u);
  ASSERT_EQ(entry->tips().size(), 1u);
  EXPECT_EQ(entry->tips()[0], 0u);
  EXPECT_TRUE(entry->approvers(0).empty());
}

TEST(ViewCacheEntry, ParallelFillMatchesSerial) {
  // Above the parallel threshold the word-sliced fill must produce exactly
  // the serial result (the slices reduce via integer sums).
  Fixture f;
  f.grow(2100, /*seed=*/13);
  const TangleView view = f.tangle.view();
  ThreadPool pool(4);
  const auto serial = ViewCacheEntry::build(view, nullptr);
  const auto parallel = ViewCacheEntry::build(view, &pool);
  ASSERT_EQ(serial->view_size(), parallel->view_size());
  for (TxIndex i = 0; i < serial->view_size(); ++i) {
    ASSERT_EQ(serial->past_cone_sizes()[i], parallel->past_cone_sizes()[i]);
    ASSERT_EQ(serial->future_cone_sizes()[i],
              parallel->future_cone_sizes()[i]);
  }
  expect_entry_matches_view(view, *parallel);
}

TEST(ViewCacheEntry, WalksConsumeRngIdenticallyToDirectPath) {
  Fixture f;
  f.grow(80, /*seed=*/17);
  const TangleView view = f.tangle.view();
  const auto entry = ViewCacheEntry::build(view);
  TipSelectionConfig config;

  Rng direct_rng(42);
  Rng cached_rng(42);
  const std::vector<std::uint32_t> future = view.future_cone_sizes();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(random_walk_tip(view, future, direct_rng, config),
              random_walk_tip(*entry, cached_rng, config));
  }
  // Post-condition: both consumed the same stream prefix.
  EXPECT_EQ(direct_rng.uniform_index(1u << 30),
            cached_rng.uniform_index(1u << 30));
}

TEST(ViewCacheEntry, SelectTipsMatchesDirectPath) {
  Fixture f;
  f.grow(60, /*seed=*/19);
  const TangleView view = f.tangle.view();
  const auto entry = ViewCacheEntry::build(view);
  for (const TipSelectionMethod method :
       {TipSelectionMethod::kWeightedWalk, TipSelectionMethod::kUniform}) {
    TipSelectionConfig config;
    config.method = method;
    Rng direct_rng(7);
    Rng cached_rng(7);
    EXPECT_EQ(select_tips(view, 9, direct_rng, config),
              select_tips(*entry, 9, cached_rng, config));
  }
}

TEST(ViewCacheEntry, ConfidencesAndRatingsMatchDirectPath) {
  Fixture f;
  f.grow(50, /*seed=*/23);
  const TangleView view = f.tangle.view();
  const auto entry = ViewCacheEntry::build(view);
  ConfidenceConfig config;
  config.sample_rounds = 12;
  Rng direct_rng(3);
  Rng cached_rng(3);
  const auto direct = compute_confidences(view, direct_rng, config);
  const auto cached = compute_confidences(view, *entry, cached_rng, config);
  ASSERT_EQ(direct.size(), cached.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], cached[i]);
  }
  const auto direct_ratings = compute_ratings(view);
  const auto cached_ratings = compute_ratings(*entry);
  ASSERT_EQ(direct_ratings.size(), cached_ratings.size());
  for (std::size_t i = 0; i < direct_ratings.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct_ratings[i], cached_ratings[i]);
  }
}

TEST(ViewCache, HitsOnRepeatedPrefixViews) {
  Fixture f;
  f.grow(30, /*seed=*/29);
  obs::Counter& hits =
      obs::MetricsRegistry::global().counter("tangle.view_cache.hit");
  obs::Counter& misses =
      obs::MetricsRegistry::global().counter("tangle.view_cache.miss");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  ViewCache cache(4);
  const auto first = cache.get(f.tangle.view_prefix(20));
  const auto second = cache.get(f.tangle.view_prefix(20));
  EXPECT_EQ(first.get(), second.get());  // same shared entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(hits.value() - hits_before, 1u);
  EXPECT_EQ(misses.value() - misses_before, 1u);

  (void)cache.get(f.tangle.view_prefix(25));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(misses.value() - misses_before, 2u);
}

TEST(ViewCache, FullMaskNormalizesToPrefixIdentity) {
  // A replica that converged to the whole prefix must share the prefix
  // view's entry.
  Fixture f;
  f.grow(24, /*seed=*/31);
  ViewCache cache(4);
  const auto by_prefix = cache.get(f.tangle.view());
  const auto by_mask =
      cache.get(TangleView(f.tangle, std::vector<bool>(f.tangle.size(), true)));
  EXPECT_EQ(by_prefix.get(), by_mask.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ViewCache, DistinguishesMaskedMemberships) {
  Fixture f;
  f.grow(40, /*seed=*/37);
  ViewCache cache(8);
  const auto membership_a = f.random_membership(6, 1);
  const auto membership_b = f.random_membership(6, 2);
  ASSERT_NE(membership_a, membership_b);
  const auto a = cache.get(TangleView(f.tangle, membership_a));
  const auto b = cache.get(TangleView(f.tangle, membership_b));
  EXPECT_NE(a.get(), b.get());
  const auto a_again = cache.get(TangleView(f.tangle, membership_a));
  EXPECT_EQ(a.get(), a_again.get());
  expect_entry_matches_view(TangleView(f.tangle, membership_a), *a);
  expect_entry_matches_view(TangleView(f.tangle, membership_b), *b);
}

TEST(ViewCache, EvictsLeastRecentlyUsed) {
  Fixture f;
  f.grow(30, /*seed=*/41);
  obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("tangle.view_cache.evictions");
  const std::uint64_t before = evictions.value();

  ViewCache cache(2);
  const auto a = cache.get(f.tangle.view_prefix(10));
  (void)cache.get(f.tangle.view_prefix(20));
  (void)cache.get(f.tangle.view_prefix(10));  // refresh a
  (void)cache.get(f.tangle.view_prefix(30));  // evicts the prefix-20 slot
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(evictions.value() - before, 1u);
  // Prefix 10 survived the eviction; prefix 20 did not.
  EXPECT_EQ(cache.get(f.tangle.view_prefix(10)).get(), a.get());
  const auto evicted = cache.get(f.tangle.view_prefix(20));  // rebuilt
  expect_entry_matches_view(f.tangle.view_prefix(20), *evicted);
}

TEST(ViewCache, OutstandingEntriesSurviveEvictionAndClear) {
  // Regression for the deferred-destruction restructure: eviction, clear()
  // and tangle rebinding only drop the cache's reference. An entry handed
  // out earlier must stay fully usable through its shared_ptr.
  Fixture f;
  f.grow(40, /*seed=*/59);
  ViewCache cache(2);
  const auto a = cache.get(f.tangle.view_prefix(10));
  const auto b = cache.get(f.tangle.view_prefix(20));
  const auto c = cache.get(f.tangle.view_prefix(30));  // evicts the LRU (a)
  EXPECT_EQ(cache.size(), 2u);
  expect_entry_matches_view(f.tangle.view_prefix(10), *a);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  expect_entry_matches_view(f.tangle.view_prefix(20), *b);
  expect_entry_matches_view(f.tangle.view_prefix(30), *c);
}

TEST(ViewCache, RebindingTangleKeepsOutstandingEntriesValid) {
  Fixture f;
  Fixture g;
  f.grow(12, /*seed=*/61);
  g.grow(12, /*seed=*/62);
  ViewCache cache(4);
  const auto from_f = cache.get(f.tangle.view());
  (void)cache.get(g.tangle.view());  // rebinding drops f's entries
  EXPECT_EQ(cache.size(), 1u);
  expect_entry_matches_view(f.tangle.view(), *from_f);
}

TEST(ViewCache, GrowingLedgerChangesKeyNotEntry) {
  // Append-only invalidation: adding transactions must never mutate a
  // cached entry; the grown view simply has a different key.
  Fixture f;
  f.grow(20, /*seed=*/43);
  ViewCache cache(4);
  const auto before = cache.get(f.tangle.view());
  const std::size_t size_before = before->view_size();
  f.grow(10, /*seed=*/44);
  const auto after = cache.get(f.tangle.view());
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(before->view_size(), size_before);  // old entry untouched
  expect_entry_matches_view(f.tangle.view_prefix(size_before), *before);
  expect_entry_matches_view(f.tangle.view(), *after);
}

TEST(ViewCache, ResetsWhenBoundTangleChanges) {
  Fixture f;
  Fixture g;
  f.grow(10, /*seed=*/47);
  g.grow(10, /*seed=*/48);
  ViewCache cache(4);
  (void)cache.get(f.tangle.view());
  EXPECT_EQ(cache.size(), 1u);
  const auto entry = cache.get(g.tangle.view());
  EXPECT_EQ(cache.size(), 1u);  // f's entries were dropped
  expect_entry_matches_view(g.tangle.view(), *entry);
}

TEST(ViewCache, BuildCountsAsConeRecomputes) {
  Fixture f;
  f.grow(10, /*seed=*/53);
  obs::Counter& recomputes =
      obs::MetricsRegistry::global().counter("tangle.cone_recompute.count");
  const std::uint64_t before = recomputes.value();
  ViewCache cache(4, /*incremental=*/false);
  (void)cache.get(f.tangle.view());  // miss: one past + one future pass
  EXPECT_EQ(recomputes.value() - before, 2u);
  (void)cache.get(f.tangle.view());  // hit: no recompute
  EXPECT_EQ(recomputes.value() - before, 2u);
}

TEST(ViewCacheEntry, ApproversOutOfRangeThrowsUnderDebugChecks) {
  // Regression: approvers(index) used to read offsets_[index + 1]
  // unchecked, so an out-of-view index silently returned garbage spans.
  Fixture f;
  f.grow(5, /*seed=*/2);
  const auto entry = ViewCacheEntry::build(f.tangle.view());
#if defined(TANGLEFL_DEBUG_CHECKS)
  EXPECT_THROW((void)entry->approvers(entry->view_size()), CheckFailure);
  EXPECT_THROW((void)entry->approvers(entry->view_size() + 7), CheckFailure);
#endif
  (void)entry->approvers(entry->view_size() - 1);  // last valid row is fine
}

TEST(ViewCache, IncrementalAndFullBuildsServeIdenticalEntries) {
  Fixture f;
  f.grow(80, /*seed=*/31);
  ViewCache incremental(4, /*incremental=*/true);
  ViewCache full(4, /*incremental=*/false);
  // Grow between gets so the incremental path exercises real deltas.
  for (const std::size_t extra : {0UL, 15UL, 40UL}) {
    f.grow(extra, /*seed=*/31 + extra);
    const TangleView view = f.tangle.view();
    const auto a = incremental.get(view);
    const auto b = full.get(view);
    expect_entry_matches_view(view, *a);
    expect_entry_matches_view(view, *b);
  }
}

TEST(ViewCache, ConeStateSnapshotRestoresAcrossCaches) {
  Fixture f;
  f.grow(60, /*seed=*/37);
  ViewCache original(4);
  (void)original.get(f.tangle.view());
  const ViewCache::ConeStateSnapshot snapshot =
      original.cone_state_snapshot();
  ASSERT_EQ(snapshot.past.size(), f.tangle.size());

  ViewCache resumed(4);
  resumed.restore_cone_state(f.tangle, snapshot);
  // The first get() after a restore must serve the seeded state, not wipe
  // it via the tangle-rebind path.
  f.grow(25, /*seed=*/39);
  const TangleView view = f.tangle.view();
  const auto restored_entry = resumed.get(view);
  const auto fresh_entry = original.get(view);
  ASSERT_EQ(restored_entry->view_size(), fresh_entry->view_size());
  for (TxIndex i = 0; i < view.size(); ++i) {
    EXPECT_EQ(restored_entry->past_cone_sizes()[i],
              fresh_entry->past_cone_sizes()[i]);
    EXPECT_EQ(restored_entry->future_cone_sizes()[i],
              fresh_entry->future_cone_sizes()[i]);
  }
}

TEST(ViewCache, IncrementalMissAvoidsConeRecomputes) {
  Fixture f;
  f.grow(10, /*seed=*/53);
  obs::Counter& recomputes =
      obs::MetricsRegistry::global().counter("tangle.cone_recompute.count");
  obs::Counter& incremental_builds = obs::MetricsRegistry::global().counter(
      "tangle.cones.incremental.builds");
  const std::uint64_t before = recomputes.value();
  const std::uint64_t builds_before = incremental_builds.value();
  ViewCache cache(4);  // incremental by default
  (void)cache.get(f.tangle.view());
  EXPECT_EQ(recomputes.value() - before, 0u);
  EXPECT_EQ(incremental_builds.value() - builds_before, 1u);
}

}  // namespace
}  // namespace tanglefl::tangle
