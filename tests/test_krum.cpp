#include "fedavg/krum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/femnist_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"
#include "support/rng.hpp"

namespace tanglefl::fedavg {
namespace {

/// Honest updates clustered near `center`, byzantine ones far away.
std::vector<nn::ParamVector> make_updates(std::size_t honest,
                                          std::size_t byzantine,
                                          float center, Rng& rng) {
  std::vector<nn::ParamVector> updates;
  for (std::size_t i = 0; i < honest; ++i) {
    nn::ParamVector p(8);
    for (auto& v : p) v = center + static_cast<float>(rng.normal()) * 0.1f;
    updates.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < byzantine; ++i) {
    nn::ParamVector p(8);
    for (auto& v : p) v = static_cast<float>(rng.normal()) * 50.0f;
    updates.push_back(std::move(p));
  }
  return updates;
}

TEST(Krum, SelectsFromHonestCluster) {
  Rng rng(1);
  const auto updates = make_updates(7, 2, 3.0f, rng);
  const KrumResult result = krum_select(updates, 2, 1);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_LT(result.selected[0], 7u);  // byzantine indices are 7, 8
}

TEST(Krum, ByzantineScoresAreWorse) {
  Rng rng(2);
  const auto updates = make_updates(6, 3, -1.0f, rng);
  const KrumResult result = krum_select(updates, 3, 1);
  double max_honest = 0.0;
  double min_byzantine = 1e300;
  for (std::size_t i = 0; i < 6; ++i) {
    max_honest = std::max(max_honest, result.scores[i]);
  }
  for (std::size_t i = 6; i < 9; ++i) {
    min_byzantine = std::min(min_byzantine, result.scores[i]);
  }
  EXPECT_LT(max_honest, min_byzantine);
}

TEST(Krum, MultiKrumSelectsOnlyHonest) {
  Rng rng(3);
  const auto updates = make_updates(8, 2, 5.0f, rng);
  const KrumResult result = krum_select(updates, 2, 4);
  ASSERT_EQ(result.selected.size(), 4u);
  for (const std::size_t i : result.selected) EXPECT_LT(i, 8u);
}

TEST(Krum, SelectedOrderedByScore) {
  Rng rng(4);
  const auto updates = make_updates(6, 2, 0.0f, rng);
  const KrumResult result = krum_select(updates, 2, 3);
  for (std::size_t k = 1; k < result.selected.size(); ++k) {
    EXPECT_LE(result.scores[result.selected[k - 1]],
              result.scores[result.selected[k]]);
  }
}

TEST(Krum, AggregateNearHonestCenter) {
  Rng rng(5);
  const auto updates = make_updates(7, 2, 2.0f, rng);
  const nn::ParamVector aggregated = krum_aggregate(updates, 2, 3);
  for (const float v : aggregated) EXPECT_NEAR(v, 2.0f, 0.3f);
}

TEST(Krum, SingleUpdatePassesThrough) {
  const std::vector<nn::ParamVector> updates = {{1.0f, 2.0f}};
  const KrumResult result = krum_select(updates, 0, 1);
  EXPECT_EQ(result.selected, (std::vector<std::size_t>{0}));
  EXPECT_EQ(krum_aggregate(updates, 0, 1), updates[0]);
}

TEST(Krum, EmptyThrows) {
  const std::vector<nn::ParamVector> updates;
  EXPECT_THROW((void)krum_select(updates, 0, 1), std::invalid_argument);
}

TEST(Krum, SizeMismatchThrows) {
  const std::vector<nn::ParamVector> updates = {{1.0f}, {1.0f, 2.0f}};
  EXPECT_THROW((void)krum_select(updates, 0, 1), std::invalid_argument);
}

TEST(Krum, MultiKClampedToUpdateCount) {
  Rng rng(6);
  const auto updates = make_updates(3, 0, 1.0f, rng);
  const KrumResult result = krum_select(updates, 0, 10);
  EXPECT_EQ(result.selected.size(), 3u);
}

TEST(Krum, LargeFStillRanks) {
  // f so large that n - f - 2 would underflow: neighbour count clamps to 1.
  Rng rng(7);
  const auto updates = make_updates(3, 1, 0.5f, rng);
  const KrumResult result = krum_select(updates, 10, 1);
  EXPECT_LT(result.selected[0], 3u);
}

// ------------------------------------------------ FedAvg with defences

data::FederatedDataset small_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 12;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 20.0;
  config.seed = 3;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 4;
  config.conv2_channels = 8;
  config.hidden = 16;
  return [config] { return nn::make_image_cnn(config); };
}

TEST(FedAvgDefence, RandomPoisonWrecksPlainAverage) {
  const auto dataset = small_dataset();
  FedAvgConfig config;
  config.rounds = 10;
  config.clients_per_round = 6;
  config.eval_every = 10;
  config.eval_nodes_fraction = 0.5;
  config.training.sgd.learning_rate = 0.1;
  config.attack = core::AttackType::kRandomPoison;
  config.malicious_fraction = 0.3;
  config.attack_start_round = 1;
  config.seed = 1;
  const core::RunResult poisoned =
      run_fedavg(dataset, small_factory(), config);
  // Averaging in N(0,1) noise every round keeps the model near chance.
  EXPECT_LT(poisoned.final_accuracy(), 0.55);
}

TEST(FedAvgDefence, MultiKrumFiltersRandomPoison) {
  // The crisp mechanistic check: plain averaging folds the N(0,1) poison
  // into the global model (its norm jumps to the poison scale), Multi-Krum
  // rejects it (the norm stays at the honest training scale). Note the
  // paper's caveat applies: even when Krum filters the poison, its
  // accuracy under non-IID data suffers because legitimate outlier
  // updates are discarded too (Section II-A).
  const auto dataset = small_dataset();
  FedAvgConfig config;
  config.rounds = 8;
  config.clients_per_round = 6;
  config.eval_every = 8;
  config.eval_nodes_fraction = 0.5;
  config.training.sgd.learning_rate = 0.1;
  config.attack = core::AttackType::kRandomPoison;
  config.malicious_fraction = 0.3;
  config.attack_start_round = 1;
  config.seed = 1;

  FedAvgConfig defended = config;
  defended.aggregation = Aggregation::kMultiKrum;
  defended.krum_byzantine_f = 2;
  defended.multi_k = 3;

  const auto norm = [](const nn::ParamVector& params) {
    double acc = 0.0;
    for (const float v : params) acc += static_cast<double>(v) * v;
    return std::sqrt(acc);
  };

  FedAvgServer plain(dataset, small_factory(), config);
  FedAvgServer krum(dataset, small_factory(), defended);
  for (std::uint64_t r = 1; r <= 8; ++r) {
    plain.run_round(r);
    krum.run_round(r);
  }
  const double honest_scale = norm(krum.global_params());
  const double poisoned_scale = norm(plain.global_params());
  // Averaging keeps a residual noise component in the plain global model
  // (inflated norm), while Krum's global stays at the honest scale.
  EXPECT_GT(poisoned_scale, 1.2 * honest_scale);
  EXPECT_LT(honest_scale, 30.0);
  // And the noise component costs the plain model real loss.
  const core::RoundRecord plain_eval = plain.evaluate(8);
  const core::RoundRecord krum_eval = krum.evaluate(8);
  EXPECT_GT(plain_eval.loss, krum_eval.loss + 0.5);
}

TEST(FedAvgDefence, KrumAggregationStillLearnsWithoutAttack) {
  const auto dataset = small_dataset();
  FedAvgConfig config;
  config.rounds = 16;
  config.clients_per_round = 6;
  config.eval_every = 16;
  config.eval_nodes_fraction = 0.5;
  config.training.sgd.learning_rate = 0.1;
  config.aggregation = Aggregation::kMultiKrum;
  config.krum_byzantine_f = 1;
  config.multi_k = 4;
  config.seed = 1;
  const core::RunResult result = run_fedavg(dataset, small_factory(), config);
  EXPECT_GT(result.final_accuracy(), 0.5);
}

TEST(FedAvgDefence, MaliciousSetRespectsAttackType) {
  const auto dataset = small_dataset();
  FedAvgConfig config;
  config.malicious_fraction = 0.5;  // no attack type -> ignored
  FedAvgServer server(dataset, small_factory(), config);
  EXPECT_TRUE(server.malicious_users().empty());

  config.attack = core::AttackType::kLabelFlip;
  FedAvgServer attacked(dataset, small_factory(), config);
  EXPECT_EQ(attacked.malicious_users().size(), 6u);
}

}  // namespace
}  // namespace tanglefl::fedavg
