#include "tangle/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::tangle {
namespace {

const char* kPath = "/tmp/tanglefl_test_checkpoint.bin";

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f, 1.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, nn::ParamVector params,
              std::uint64_t round) {
    const auto added = store.add(std::move(params));
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(Checkpoint, RoundTripPreservesLedger) {
  Fixture f;
  const TxIndex a = f.add({0}, {1.0f, 2.0f}, 1);
  f.add({0, a}, {3.0f, 4.0f}, 2);

  save_ledger(kPath, f.tangle, f.store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);

  ASSERT_EQ(restored.size(), f.tangle.size());
  for (TxIndex i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored.transaction(i).id, f.tangle.transaction(i).id);
    EXPECT_EQ(restored_store.get(restored.transaction(i).payload),
              f.store.get(f.tangle.transaction(i).payload));
  }
  std::remove(kPath);
}

TEST(Checkpoint, PayloadIdsStayValid) {
  Fixture f;
  f.add({0}, {5.0f}, 1);
  save_ledger(kPath, f.tangle, f.store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);
  // Payload handle 1 still addresses {5.0f}.
  EXPECT_EQ(restored_store.get(restored.transaction(1).payload),
            (nn::ParamVector{5.0f}));
  std::remove(kPath);
}

TEST(Checkpoint, BadMagicRejected) {
  {
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out << "not a ledger at all, definitely";
  }
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, TruncatedFileRejected) {
  Fixture f;
  f.add({0}, {1.0f}, 1);
  save_ledger(kPath, f.tangle, f.store);
  // Truncate the file in the middle.
  {
    std::ifstream in(kPath, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> bytes(size / 2);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, MissingFileThrows) {
  ModelStore store;
  EXPECT_THROW((void)load_ledger("/tmp/tanglefl_definitely_missing.bin", store),
               std::runtime_error);
}

TEST(Checkpoint, NonEmptyStoreRejected) {
  Fixture f;
  save_ledger(kPath, f.tangle, f.store);
  ModelStore busy;
  busy.add({9.0f});
  EXPECT_THROW((void)load_ledger(kPath, busy), std::invalid_argument);
  std::remove(kPath);
}

TEST(Checkpoint, SimulationLedgerRoundTrips) {
  // A ledger produced by an actual simulation round-trips bit-exact.
  data::FemnistSynthConfig data_config;
  data_config.num_users = 8;
  data_config.num_classes = 3;
  data_config.image_size = 8;
  data_config.seed = 4;
  const auto dataset = data::make_femnist_synth(data_config);
  nn::ImageCnnConfig model_config;
  model_config.image_size = 8;
  model_config.num_classes = 3;
  model_config.conv1_channels = 2;
  model_config.conv2_channels = 4;
  model_config.hidden = 8;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  core::SimulationConfig config;
  config.rounds = 4;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  core::TangleSimulation sim(dataset, factory, config);
  for (std::uint64_t r = 1; r <= 4; ++r) sim.run_round(r);

  save_ledger(kPath, sim.tangle(), sim.store());
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);
  ASSERT_EQ(restored.size(), sim.tangle().size());
  EXPECT_EQ(restored.view().tips(), sim.tangle().view().tips());
  EXPECT_EQ(restored_store.size(), sim.store().size());
  std::remove(kPath);
}

}  // namespace
}  // namespace tanglefl::tangle
