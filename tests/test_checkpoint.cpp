#include "tangle/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/async_simulation.hpp"
#include "core/gossip_simulation.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::tangle {
namespace {

const char* kPath = "/tmp/tanglefl_test_checkpoint.bin";

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f, 1.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, nn::ParamVector params,
              std::uint64_t round) {
    const auto added = store.add(std::move(params));
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(Checkpoint, RoundTripPreservesLedger) {
  Fixture f;
  const TxIndex a = f.add({0}, {1.0f, 2.0f}, 1);
  f.add({0, a}, {3.0f, 4.0f}, 2);

  save_ledger(kPath, f.tangle, f.store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);

  ASSERT_EQ(restored.size(), f.tangle.size());
  for (TxIndex i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored.transaction(i).id, f.tangle.transaction(i).id);
    EXPECT_EQ(restored_store.get(restored.transaction(i).payload),
              f.store.get(f.tangle.transaction(i).payload));
  }
  std::remove(kPath);
}

TEST(Checkpoint, PayloadIdsStayValid) {
  Fixture f;
  f.add({0}, {5.0f}, 1);
  save_ledger(kPath, f.tangle, f.store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);
  // Payload handle 1 still addresses {5.0f}.
  EXPECT_EQ(restored_store.get(restored.transaction(1).payload),
            (nn::ParamVector{5.0f}));
  std::remove(kPath);
}

TEST(Checkpoint, BadMagicRejected) {
  {
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out << "not a ledger at all, definitely";
  }
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, TruncatedFileRejected) {
  Fixture f;
  f.add({0}, {1.0f}, 1);
  save_ledger(kPath, f.tangle, f.store);
  // Truncate the file in the middle.
  {
    std::ifstream in(kPath, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> bytes(size / 2);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, MissingFileThrows) {
  ModelStore store;
  EXPECT_THROW((void)load_ledger("/tmp/tanglefl_definitely_missing.bin", store),
               std::runtime_error);
}

TEST(Checkpoint, NonEmptyStoreRejected) {
  Fixture f;
  save_ledger(kPath, f.tangle, f.store);
  ModelStore busy;
  busy.add({9.0f});
  EXPECT_THROW((void)load_ledger(kPath, busy), std::invalid_argument);
  std::remove(kPath);
}

TEST(Checkpoint, DanglingPayloadIdRejected) {
  // A transaction whose payload handle does not resolve in the store must
  // fail validation at load time, not deep inside a simulation.
  Fixture f;
  f.add({0}, {1.0f}, 1);
  const Transaction& tx = f.tangle.transaction(1);
  const std::vector<TxIndex> parents{1};
  f.tangle.add_transaction(parents, /*payload=*/99, tx.payload_hash, 2);
  save_ledger(kPath, f.tangle, f.store);
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, PayloadHashMismatchRejected) {
  Fixture f;
  f.add({0}, {1.0f}, 1);
  Sha256Digest wrong = f.tangle.transaction(1).payload_hash;
  wrong[0] ^= 0xff;
  const std::vector<TxIndex> parents{1};
  f.tangle.add_transaction(parents, f.tangle.transaction(1).payload, wrong,
                           2);
  save_ledger(kPath, f.tangle, f.store);
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, PruneFloorRoundTrips) {
  Fixture f;
  TxIndex last = f.add({0}, {1.0f}, 1);
  for (std::uint64_t r = 2; r <= 6; ++r) {
    last = f.add({last}, {static_cast<float>(r)}, r);
  }
  f.tangle.set_prune_floor(3);
  save_ledger(kPath, f.tangle, f.store);
  ModelStore store;
  const Tangle restored = load_ledger(kPath, store);
  EXPECT_EQ(restored.prune_floor(), 3u);
  std::remove(kPath);
}

TEST(Checkpoint, ConeSidecarRoundTrips) {
  Fixture f;
  TxIndex last = f.add({0}, {1.0f}, 1);
  for (std::uint64_t r = 2; r <= 6; ++r) {
    last = f.add({last}, {static_cast<float>(r)}, r);
  }
  ConeStateCheckpoint cones;
  cones.past.assign(f.tangle.size(), 7);
  cones.future.assign(f.tangle.size(), 9);
  save_ledger(kPath, f.tangle, f.store, &cones);
  ModelStore store;
  ConeStateCheckpoint restored_cones;
  (void)load_ledger(kPath, store, &restored_cones);
  EXPECT_EQ(restored_cones.past, cones.past);
  EXPECT_EQ(restored_cones.future, cones.future);
  std::remove(kPath);
}

TEST(Checkpoint, ConeSidecarSizeMismatchRejected) {
  Fixture f;
  f.add({0}, {1.0f}, 1);
  ConeStateCheckpoint cones;
  cones.past.assign(1, 0);  // tangle has 2 transactions
  cones.future.assign(1, 0);
  save_ledger(kPath, f.tangle, f.store, &cones);
  ModelStore store;
  EXPECT_THROW((void)load_ledger(kPath, store), SerializeError);
  std::remove(kPath);
}

TEST(Checkpoint, ReleasedPayloadsRoundTrip) {
  // A pruned ledger carries released (tombstoned) payloads: the dump must
  // preserve tombstones and their hashes so validation still passes.
  Fixture f;
  TxIndex last = f.add({0}, {1.0f, 2.0f}, 1);
  for (std::uint64_t r = 2; r <= 8; ++r) {
    last = f.add({last}, {static_cast<float>(r), 0.5f}, r);
  }
  f.tangle.set_prune_floor(5);
  std::size_t released = 0;
  {
    std::vector<bool> live(f.store.size(), false);
    for (TxIndex i = 5; i < f.tangle.size(); ++i) {
      live[f.tangle.transaction(i).payload] = true;
    }
    for (PayloadId id = 0; id < live.size(); ++id) {
      if (!live[id]) {
        f.store.release(id);
        ++released;
      }
    }
  }
  ASSERT_GT(released, 0u);

  save_ledger(kPath, f.tangle, f.store);
  ModelStore store;
  const Tangle restored = load_ledger(kPath, store);
  ASSERT_EQ(store.size(), f.store.size());
  for (PayloadId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(store.is_released(id), f.store.is_released(id));
    EXPECT_EQ(store.hash_of(id), f.store.hash_of(id));
    if (!store.is_released(id)) {
      EXPECT_EQ(store.get(id), f.store.get(id));
    }
  }
  EXPECT_EQ(restored.prune_floor(), 5u);

  // Lossless: re-saving the restored ledger is byte-identical.
  const char* kPath2 = "/tmp/tanglefl_test_checkpoint_resave.bin";
  save_ledger(kPath2, restored, store);
  std::ifstream a(kPath, std::ios::binary);
  std::ifstream b(kPath2, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(kPath);
  std::remove(kPath2);
}

TEST(Checkpoint, SimulationLedgerRoundTrips) {
  // A ledger produced by an actual simulation round-trips bit-exact.
  data::FemnistSynthConfig data_config;
  data_config.num_users = 8;
  data_config.num_classes = 3;
  data_config.image_size = 8;
  data_config.seed = 4;
  const auto dataset = data::make_femnist_synth(data_config);
  nn::ImageCnnConfig model_config;
  model_config.image_size = 8;
  model_config.num_classes = 3;
  model_config.conv1_channels = 2;
  model_config.conv2_channels = 4;
  model_config.hidden = 8;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  core::SimulationConfig config;
  config.rounds = 4;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  core::TangleSimulation sim(dataset, factory, config);
  for (std::uint64_t r = 1; r <= 4; ++r) sim.run_round(r);

  save_ledger(kPath, sim.tangle(), sim.store());
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);
  ASSERT_EQ(restored.size(), sim.tangle().size());
  EXPECT_EQ(restored.view().tips(), sim.tangle().view().tips());
  EXPECT_EQ(restored_store.size(), sim.store().size());
  std::remove(kPath);
}

TEST(Checkpoint, ChunkedStoreLedgerRoundTrips) {
  // A ledger whose store runs content-defined chunk dedup must round-trip
  // with the chunk configuration, payload bytes, and tombstones intact —
  // and re-saving the restored ledger is byte-identical.
  ModelStore store;
  ChunkParams chunk_params;
  chunk_params.min_bytes = 8;
  chunk_params.max_bytes = 64;
  chunk_params.mask_bits = 4;
  store.configure_chunking(chunk_params);
  const auto genesis = store.add({0.0f, 1.0f});
  Tangle tangle(genesis.id, genesis.hash);
  nn::ParamVector params(120);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] = static_cast<float>(i) * 0.5f;
  }
  TxIndex last = 0;
  for (std::uint64_t r = 1; r <= 4; ++r) {
    params[0] = static_cast<float>(r);  // near-identical payloads: dedup
    const auto added = store.add(params);
    const std::vector<TxIndex> parents{last};
    last = tangle.add_transaction(parents, added.id, added.hash, r);
  }
  store.release(1);
  ASSERT_GT(store.chunk_count(), 0u);

  save_ledger(kPath, tangle, store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(kPath, restored_store);
  ASSERT_EQ(restored.size(), tangle.size());
  EXPECT_TRUE(restored_store.chunking_enabled());
  EXPECT_EQ(restored_store.chunk_params().mask_bits, chunk_params.mask_bits);
  EXPECT_EQ(restored_store.chunk_count(), store.chunk_count());
  for (PayloadId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(restored_store.is_released(id), store.is_released(id));
    if (!store.is_released(id)) {
      EXPECT_EQ(restored_store.get(id), store.get(id));
    }
  }

  // Reloading re-chunks live payloads, which compacts freed slots — so the
  // first re-save may differ from the original dump. It must be a fixpoint
  // after that one normalization: save(load(save(load(x)))) == save(load(x)).
  const char* kPath2 = "/tmp/tanglefl_test_checkpoint_chunked_resave.bin";
  const char* kPath3 = "/tmp/tanglefl_test_checkpoint_chunked_resave2.bin";
  save_ledger(kPath2, restored, restored_store);
  ModelStore second_store;
  const Tangle second = load_ledger(kPath2, second_store);
  save_ledger(kPath3, second, second_store);
  std::ifstream a(kPath2, std::ios::binary);
  std::ifstream b(kPath3, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(kPath);
  std::remove(kPath2);
  std::remove(kPath3);
}

void write_file(const char* path, const ByteWriter& writer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const auto& bytes = writer.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, FlatV2DumpStillLoads) {
  // Version-2 dumps (liveness flags, no chunk table) predate the chunked
  // store and must keep loading unchanged.
  Fixture f;
  f.add({0}, {1.0f, 2.0f}, 1);
  ByteWriter writer;
  writer.write_u32(0x544e474c);  // "TNGL"
  writer.write_u32(2);
  f.tangle.serialize(writer);
  writer.write_u64(f.store.size());
  for (PayloadId id = 0; id < f.store.size(); ++id) {
    writer.write_u8(1);
    writer.write_f32_span(f.store.get(id));
  }
  writer.write_u64(0);  // prune floor
  writer.write_u8(0);   // no cone sidecar
  write_file(kPath, writer);

  ModelStore store;
  const Tangle restored = load_ledger(kPath, store);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_FALSE(store.chunking_enabled());
  EXPECT_EQ(store.get(restored.transaction(1).payload),
            (nn::ParamVector{1.0f, 2.0f}));
  std::remove(kPath);
}

TEST(Checkpoint, LegacyV1DumpStillLoads) {
  // Version-1 dumps: flag-less store, no prune frontier, no sidecar.
  Fixture f;
  f.add({0}, {3.0f}, 1);
  ByteWriter writer;
  writer.write_u32(0x544e474c);  // "TNGL"
  writer.write_u32(1);
  f.tangle.serialize(writer);
  writer.write_u64(f.store.size());
  for (PayloadId id = 0; id < f.store.size(); ++id) {
    writer.write_f32_span(f.store.get(id));
  }
  write_file(kPath, writer);

  ModelStore store;
  const Tangle restored = load_ledger(kPath, store);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.prune_floor(), 0u);
  EXPECT_EQ(store.get(restored.transaction(1).payload),
            (nn::ParamVector{3.0f}));
  std::remove(kPath);
}

// --- pruned-ledger round trips through every engine ---------------------

data::FederatedDataset engine_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.seed = 4;
  return data::make_femnist_synth(config);
}

nn::ModelFactory engine_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

/// Save -> load -> re-save must be byte-identical (the dump is a faithful
/// fixpoint), and the restored ledger must mirror the live one exactly,
/// prune frontier and payload tombstones included.
void expect_pruned_ledger_round_trips(const Tangle& tangle,
                                      const ModelStore& store) {
  const char* path_a = "/tmp/tanglefl_test_ckpt_engine_a.bin";
  const char* path_b = "/tmp/tanglefl_test_ckpt_engine_b.bin";
  save_ledger(path_a, tangle, store);
  ModelStore restored_store;
  const Tangle restored = load_ledger(path_a, restored_store);

  ASSERT_EQ(restored.size(), tangle.size());
  EXPECT_EQ(restored.prune_floor(), tangle.prune_floor());
  EXPECT_EQ(restored.view().tips(), tangle.view().tips());
  ASSERT_EQ(restored_store.size(), store.size());
  for (PayloadId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(restored_store.is_released(id), store.is_released(id));
    EXPECT_EQ(restored_store.hash_of(id), store.hash_of(id));
  }

  save_ledger(path_b, restored, restored_store);
  std::ifstream a(path_a, std::ios::binary);
  std::ifstream b(path_b, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path_a);
  std::remove(path_b);
}

TEST(Checkpoint, PrunedSimulationLedgerRoundTrips) {
  const auto dataset = engine_dataset();
  core::SimulationConfig config;
  config.rounds = 12;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  config.prune.enabled = true;
  config.prune.interval = 2;
  config.prune.keep_recent = 6;
  core::TangleSimulation sim(dataset, engine_factory(), config);
  (void)sim.run();
  ASSERT_GT(sim.tangle().prune_floor(), 0u);
  expect_pruned_ledger_round_trips(sim.tangle(), sim.store());
}

TEST(Checkpoint, PrunedAsyncLedgerRoundTrips) {
  const auto dataset = engine_dataset();
  core::AsyncSimulationConfig config;
  config.duration_seconds = 30.0;
  config.wake_rate_per_node = 0.4;
  config.mean_training_seconds = 0.5;
  config.eval_every_seconds = 5.0;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 11;
  config.prune.enabled = true;
  config.prune.interval = 1;
  config.prune.keep_recent = 6;
  core::AsyncTangleSimulation sim(dataset, engine_factory(), config);
  (void)sim.run();
  expect_pruned_ledger_round_trips(sim.tangle(), sim.store());
}

TEST(Checkpoint, PrunedGossipLedgerRoundTrips) {
  const auto dataset = engine_dataset();
  core::GossipConfig config;
  config.rounds = 14;
  config.nodes_per_round = 4;
  config.peers_per_node = 3;
  config.gossip_exchanges = 2;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 13;
  config.prune.enabled = true;
  config.prune.interval = 2;
  config.prune.keep_recent = 6;
  core::GossipSimulation sim(dataset, engine_factory(), config);
  (void)sim.run();
  expect_pruned_ledger_round_trips(sim.tangle(), sim.store());
}

}  // namespace
}  // namespace tanglefl::tangle
