#include "data/shakespeare_synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tanglefl::data {
namespace {

ShakespeareSynthConfig small_config() {
  ShakespeareSynthConfig config;
  config.num_users = 6;
  config.vocab_size = 12;
  config.seq_length = 8;
  config.mean_chars_per_user = 300.0;
  config.min_samples_per_user = 16;
  config.seed = 11;
  return config;
}

TEST(ShakespeareSynth, GeneratesUsers) {
  const FederatedDataset dataset = make_shakespeare_synth(small_config());
  EXPECT_GT(dataset.num_users(), 0u);
  EXPECT_LE(dataset.num_users(), 6u);
  EXPECT_EQ(dataset.num_classes(), 12u);
  EXPECT_EQ(dataset.name(), "shakespeare-synth");
}

TEST(ShakespeareSynth, DeterministicInSeed) {
  const FederatedDataset a = make_shakespeare_synth(small_config());
  const FederatedDataset b = make_shakespeare_synth(small_config());
  ASSERT_EQ(a.num_users(), b.num_users());
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.user(u).train.labels, b.user(u).train.labels);
  }
}

TEST(ShakespeareSynth, FeaturesAreTokenIds) {
  const FederatedDataset dataset = make_shakespeare_synth(small_config());
  for (const float v : dataset.user(0).train.features.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 12.0f);
    EXPECT_EQ(v, std::floor(v));  // integral ids
  }
}

TEST(ShakespeareSynth, WindowShape) {
  const FederatedDataset dataset = make_shakespeare_synth(small_config());
  EXPECT_EQ(dataset.user(0).train.example_shape(),
            (std::vector<std::size_t>{8}));
}

TEST(ShakespeareSynth, LabelsInVocab) {
  const FederatedDataset dataset = make_shakespeare_synth(small_config());
  for (const auto label : dataset.user(0).train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 12);
  }
}

TEST(ShakespeareSynth, WindowsAreConsecutiveSlices) {
  // Reconstruct: feature row i shifted by one equals row i+1's prefix, and
  // labels continue the text.
  const FederatedDataset dataset = make_shakespeare_synth(small_config());
  const DataSplit& train = dataset.user(0).train;
  // Train/test split shuffles rows, so instead check the raw generator.
  const auto text = generate_user_text(small_config(), 0, 100);
  ASSERT_EQ(text.size(), 100u);
  for (const auto token : text) {
    EXPECT_GE(token, 0);
    EXPECT_LT(token, 12);
  }
  (void)train;
}

TEST(ShakespeareSynth, TextDeterministicPerUser) {
  const auto a = generate_user_text(small_config(), 2, 50);
  const auto b = generate_user_text(small_config(), 2, 50);
  EXPECT_EQ(a, b);
}

TEST(ShakespeareSynth, DifferentUsersSpeakDifferently) {
  const auto a = generate_user_text(small_config(), 0, 200);
  const auto b = generate_user_text(small_config(), 1, 200);
  EXPECT_NE(a, b);
}

TEST(ShakespeareSynth, RolesHaveDistinctUnigramDistributions) {
  // Style mixing must make per-user character histograms diverge: compute
  // L1 distance between two users' unigram distributions.
  ShakespeareSynthConfig config = small_config();
  config.style_mixture = 0.6;
  const auto text_a = generate_user_text(config, 0, 2000);
  const auto text_b = generate_user_text(config, 1, 2000);

  std::vector<double> hist_a(12, 0.0), hist_b(12, 0.0);
  for (const auto t : text_a) hist_a[static_cast<std::size_t>(t)] += 1.0 / 2000;
  for (const auto t : text_b) hist_b[static_cast<std::size_t>(t)] += 1.0 / 2000;
  double l1 = 0.0;
  for (std::size_t i = 0; i < 12; ++i) l1 += std::abs(hist_a[i] - hist_b[i]);
  EXPECT_GT(l1, 0.1);
}

TEST(ShakespeareSynth, MinSamplesFilterApplied) {
  ShakespeareSynthConfig config = small_config();
  config.min_samples_per_user = 1000000;  // absurd: filters everyone
  const FederatedDataset dataset = make_shakespeare_synth(config);
  EXPECT_EQ(dataset.num_users(), 0u);
}

TEST(ShakespeareSynth, TextIsNotDegenerate) {
  // A healthy Markov language uses a good chunk of the vocabulary.
  const auto text = generate_user_text(small_config(), 0, 1000);
  std::vector<bool> seen(12, false);
  for (const auto t : text) seen[static_cast<std::size_t>(t)] = true;
  const auto used = std::count(seen.begin(), seen.end(), true);
  EXPECT_GE(used, 6);
}

}  // namespace
}  // namespace tanglefl::data
