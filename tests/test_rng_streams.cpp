// Regression tests for the RNG stream registry (core/rng_streams.hpp).
// The pairwise-distinctness check is the one that would have caught the
// consensus/eval stream collision: consensus_params() derived its walks
// from kEval.split(tangle_size) while evaluate() sampled eval users from
// kEval.split(round), so the two purposes shared a stream root and
// correlated whenever tangle_size == round.
#include "core/rng_streams.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace tanglefl::core {
namespace {

TEST(RngStreams, AllStreamConstantsArePairwiseDistinct) {
  std::set<std::uint64_t> seen(streams::kAllStreams.begin(),
                               streams::kAllStreams.end());
  EXPECT_EQ(seen.size(), streams::kAllStreams.size())
      << "two purposes share a stream constant; their Rng::split streams "
         "would collide";
}

TEST(RngStreams, ConsensusStreamIsNotTheEvalStream) {
  // The specific collision this header fixed.
  EXPECT_NE(streams::kConsensus, streams::kEval);
}

TEST(RngStreams, SplitStreamsDecorrelate) {
  // Same master seed, different stream constants: the derived streams must
  // not reproduce each other's outputs. In particular the old collision
  // pattern — kEval.split(k) used for two different purposes — now maps to
  // kConsensus.split(k) vs kEval.split(k), which diverge for every k.
  Rng master(1234);
  for (std::uint64_t k = 1; k <= 64; ++k) {
    Rng consensus = master.split(streams::kConsensus).split(k);
    Rng eval = master.split(streams::kEval).split(k);
    bool differs = false;
    for (int draw = 0; draw < 4; ++draw) {
      if (consensus.uniform_index(1u << 30) != eval.uniform_index(1u << 30)) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << "consensus and eval streams collide at k=" << k;
  }
}

TEST(RngStreams, HistoricalConstantsAreStable) {
  // These values are part of the determinism contract: changing one
  // silently reshuffles every same-seed run. Update deliberately or not at
  // all.
  EXPECT_EQ(streams::kParticipant, 0x9a57u);
  EXPECT_EQ(streams::kNode, 0x40deu);
  EXPECT_EQ(streams::kEval, 0xe7a1u);
  EXPECT_EQ(streams::kGenesis, 0x6e51u);
  EXPECT_EQ(streams::kWalk, 0x71b5u);
  EXPECT_EQ(streams::kReference, 0x3ef5u);
  EXPECT_EQ(streams::kTrain, 0x7a19u);
}

}  // namespace
}  // namespace tanglefl::core
