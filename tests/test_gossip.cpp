#include "core/gossip_simulation.hpp"

#include <gtest/gtest.h>

#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::core {
namespace {

data::FederatedDataset small_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 12;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = 3;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

GossipConfig fast_config() {
  GossipConfig config;
  config.rounds = 8;
  config.nodes_per_round = 4;
  config.peers_per_node = 3;
  config.gossip_exchanges = 2;
  config.eval_every = 4;
  config.eval_nodes_fraction = 0.5;
  config.node.training.epochs = 1;
  config.node.training.sgd.learning_rate = 0.05;
  config.node.reference.confidence.sample_rounds = 6;
  config.seed = 7;
  return config;
}

TEST(GossipSimulation, ViewCacheIsBitIdenticalToForcedRecompute) {
  // Replica (masked) views go through the membership-keyed cache; results
  // must match the forced-recompute path exactly.
  const auto dataset = small_dataset();
  GossipConfig cached = fast_config();
  cached.use_view_cache = true;
  GossipConfig direct = fast_config();
  direct.use_view_cache = false;
  GossipSimulation a(dataset, small_factory(), cached);
  GossipSimulation b(dataset, small_factory(), direct);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
    EXPECT_EQ(ra.history[i].tip_count, rb.history[i].tip_count);
  }
  EXPECT_EQ(a.stats().published, b.stats().published);
  EXPECT_EQ(a.stats().suppressed, b.stats().suppressed);
}

TEST(MaskedView, RejectsNonClosedMembership) {
  tangle::ModelStore store;
  const auto genesis = store.add({0.0f});
  tangle::Tangle tangle(genesis.id, genesis.hash);
  const auto a = store.add({1.0f});
  const tangle::TxIndex ai = tangle.add_transaction(
      std::vector<tangle::TxIndex>{0}, a.id, a.hash, 1);
  const auto b = store.add({2.0f});
  const tangle::TxIndex bi = tangle.add_transaction(
      std::vector<tangle::TxIndex>{ai}, b.id, b.hash, 2);

  // b without a violates ancestor closure.
  std::vector<bool> bad(tangle.size(), false);
  bad[0] = true;
  bad[bi] = true;
  EXPECT_THROW((void)tangle::TangleView(tangle, bad), std::invalid_argument);

  // Genesis must be present.
  std::vector<bool> no_genesis(tangle.size(), false);
  no_genesis[ai] = true;
  EXPECT_THROW((void)tangle::TangleView(tangle, no_genesis),
               std::invalid_argument);
}

TEST(MaskedView, TipsAndConesRespectMask) {
  tangle::ModelStore store;
  const auto genesis = store.add({0.0f});
  tangle::Tangle tangle(genesis.id, genesis.hash);
  const auto pa = store.add({1.0f});
  const tangle::TxIndex a = tangle.add_transaction(
      std::vector<tangle::TxIndex>{0}, pa.id, pa.hash, 1);
  const auto pb = store.add({2.0f});
  const tangle::TxIndex b = tangle.add_transaction(
      std::vector<tangle::TxIndex>{0}, pb.id, pb.hash, 1);
  const auto pc = store.add({3.0f});
  (void)tangle.add_transaction(std::vector<tangle::TxIndex>{a, b}, pc.id,
                               pc.hash, 2);

  // Replica that has not yet received b or c.
  std::vector<bool> mask(tangle.size(), false);
  mask[0] = true;
  mask[a] = true;
  const tangle::TangleView view(tangle, mask);
  EXPECT_EQ(view.member_count(), 2u);
  EXPECT_EQ(view.tips(), (std::vector<tangle::TxIndex>{a}));
  const auto future = view.future_cone_sizes();
  EXPECT_EQ(future[0], 1u);  // only a
  const auto past = view.past_cone_sizes();
  EXPECT_EQ(past[a], 1u);
}

TEST(Gossip, CoverageStartsLowAndGrows) {
  const auto dataset = small_dataset();
  GossipConfig config = fast_config();
  config.gossip_exchanges = 1;
  config.max_transfer = 4;
  GossipSimulation sim(dataset, small_factory(), config);
  sim.run_round(1);
  const double early = sim.mean_coverage();
  for (std::uint64_t r = 2; r <= 8; ++r) sim.run_round(r);
  // After several gossip rounds nodes know a solid share of the ledger.
  EXPECT_GT(sim.mean_coverage(), 0.3);
  EXPECT_LE(early, 1.0);
}

TEST(Gossip, FullGossipReachesFullCoverage) {
  const auto dataset = small_dataset();
  GossipConfig config = fast_config();
  config.gossip_exchanges = 6;  // plenty of anti-entropy
  config.max_transfer = 0;      // unbounded transfers
  GossipSimulation sim(dataset, small_factory(), config);
  for (std::uint64_t r = 1; r <= 6; ++r) sim.run_round(r);
  // Everything except the very last round's publishes has propagated.
  EXPECT_GT(sim.mean_coverage(), 0.8);
}

TEST(Gossip, ReplicasAreAncestorClosed) {
  const auto dataset = small_dataset();
  GossipConfig config = fast_config();
  config.max_transfer = 3;  // aggressive truncation stresses closure
  GossipSimulation sim(dataset, small_factory(), config);
  for (std::uint64_t r = 1; r <= 6; ++r) {
    sim.run_round(r);
    for (std::size_t u = 0; u < dataset.num_users(); ++u) {
      // replica_view throws if closure is violated.
      EXPECT_NO_THROW((void)sim.replica_view(u));
    }
  }
}

TEST(Gossip, PullFailuresSlowPropagation) {
  const auto dataset = small_dataset();
  GossipConfig reliable = fast_config();
  GossipConfig flaky = fast_config();
  flaky.pull_failure = 0.7;

  GossipSimulation a(dataset, small_factory(), reliable);
  GossipSimulation b(dataset, small_factory(), flaky);
  for (std::uint64_t r = 1; r <= 6; ++r) {
    a.run_round(r);
    b.run_round(r);
  }
  EXPECT_GT(b.stats().failed_pulls, 0u);
  EXPECT_LE(b.mean_coverage(), a.mean_coverage() + 0.05);
}

TEST(Gossip, DeterministicInSeed) {
  const auto dataset = small_dataset();
  GossipSimulation a(dataset, small_factory(), fast_config());
  GossipSimulation b(dataset, small_factory(), fast_config());
  (void)a.run();
  (void)b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(a.tangle().transaction(i).id, b.tangle().transaction(i).id);
  }
}

TEST(Gossip, TopologyHasRequestedFanout) {
  const auto dataset = small_dataset();
  GossipSimulation sim(dataset, small_factory(), fast_config());
  for (std::size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& peers = sim.peers(u);
    EXPECT_EQ(peers.size(), 3u);
    for (const std::size_t p : peers) {
      EXPECT_NE(p, u);
      EXPECT_LT(p, dataset.num_users());
    }
  }
}

TEST(Gossip, RunProducesHistoryAndLearns) {
  const auto dataset = small_dataset();
  GossipConfig config = fast_config();
  config.rounds = 20;
  config.eval_every = 20;
  const RunResult result =
      run_gossip_tangle_learning(dataset, small_factory(), config);
  ASSERT_FALSE(result.history.empty());
  // 3-class problem: must beat chance even on partial replicas.
  EXPECT_GT(result.final_accuracy(), 0.34);
}

}  // namespace
}  // namespace tanglefl::core
