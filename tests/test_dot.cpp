#include "tangle/dot_export.hpp"

#include <gtest/gtest.h>

#include "tangle/model_store.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(DotExport, ContainsAllNodesAndEdges) {
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  f.add({0, a}, 2.0f, 2);
  const std::string dot = to_dot(f.tangle.view());
  EXPECT_NE(dot.find("digraph tangle"), std::string::npos);
  EXPECT_NE(dot.find("t0 ["), std::string::npos);
  EXPECT_NE(dot.find("t1 ["), std::string::npos);
  EXPECT_NE(dot.find("t2 ["), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t0"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t0"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t1"), std::string::npos);
}

TEST(DotExport, GenesisIsBlack) {
  Fixture f;
  const std::string dot = to_dot(f.tangle.view());
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
}

TEST(DotExport, TipsAreLightGray) {
  Fixture f;
  f.add({0}, 1.0f, 1);
  const std::string dot = to_dot(f.tangle.view());
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
}

TEST(DotExport, ConsensusIsDarkGray) {
  Fixture f;
  // mid is approved by both tips -> consensus (dark gray), Fig. 2.
  const TxIndex mid = f.add({0}, 1.0f, 1);
  f.add({mid}, 2.0f, 2);
  f.add({mid}, 3.0f, 2);
  const std::string dot = to_dot(f.tangle.view());
  EXPECT_NE(dot.find("fillcolor=darkgray"), std::string::npos);
}

TEST(DotExport, NonConsensusNonTipIsWhite) {
  Fixture f;
  // A transaction approved by only one of two tips stays white (Fig. 2's
  // white vertex).
  const TxIndex a = f.add({0}, 1.0f, 1);
  f.add({a}, 2.0f, 2);   // tip over a
  f.add({0}, 3.0f, 2);   // second tip not approving a
  const std::string dot = to_dot(f.tangle.view());
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
}

TEST(DotExport, RoundLabelsOptional) {
  Fixture f;
  f.add({0}, 1.0f, 5);
  DotOptions options;
  options.label_rounds = false;
  const std::string without = to_dot(f.tangle.view(), options);
  EXPECT_EQ(without.find("r5"), std::string::npos);
  options.label_rounds = true;
  EXPECT_NE(to_dot(f.tangle.view(), options).find("r5"), std::string::npos);
}

TEST(DotExport, DuplicateParentEdgeEmittedOnce) {
  Fixture f;
  f.add({0, 0}, 1.0f, 1);
  const std::string dot = to_dot(f.tangle.view());
  const auto first = dot.find("t1 -> t0");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(dot.find("t1 -> t0", first + 1), std::string::npos);
}

TEST(DotExport, CustomGraphName) {
  Fixture f;
  DotOptions options;
  options.graph_name = "myledger";
  EXPECT_NE(to_dot(f.tangle.view(), options).find("digraph myledger"),
            std::string::npos);
}

}  // namespace
}  // namespace tanglefl::tangle
