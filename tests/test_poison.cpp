#include "data/poison.hpp"

#include <gtest/gtest.h>

namespace tanglefl::data {
namespace {

DataSplit make_split(const std::vector<std::int32_t>& labels) {
  DataSplit split;
  split.features = nn::Tensor({labels.size(), 2});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    split.features.at(i, 0) = static_cast<float>(i);
  }
  split.labels = labels;
  return split;
}

TEST(Poison, LabelFlipKeepsOnlySourceClass) {
  const DataSplit split = make_split({3, 1, 3, 8, 3, 0});
  const DataSplit flipped = make_label_flip_split(split, {3, 8});
  EXPECT_EQ(flipped.size(), 3u);
  for (const auto label : flipped.labels) EXPECT_EQ(label, 8);
}

TEST(Poison, LabelFlipPreservesFeatures) {
  const DataSplit split = make_split({3, 1, 3});
  const DataSplit flipped = make_label_flip_split(split, {3, 8});
  EXPECT_FLOAT_EQ(flipped.features.at(0, 0), 0.0f);  // original row 0
  EXPECT_FLOAT_EQ(flipped.features.at(1, 0), 2.0f);  // original row 2
}

TEST(Poison, LabelFlipNoSourceSamplesIsEmpty) {
  const DataSplit split = make_split({1, 2, 4});
  EXPECT_TRUE(make_label_flip_split(split, {3, 8}).empty());
}

TEST(Poison, FlipUserAppliesToBothSplits) {
  UserData user;
  user.user_id = "u";
  user.train = make_split({3, 3, 1});
  user.test = make_split({3, 0});
  const UserData poisoned = make_label_flip_user(user, {3, 8});
  EXPECT_EQ(poisoned.train.size(), 2u);
  EXPECT_EQ(poisoned.test.size(), 1u);
  EXPECT_EQ(poisoned.user_id, "u_flipped");
  for (const auto label : poisoned.train.labels) EXPECT_EQ(label, 8);
}

TEST(Poison, CountClass) {
  const DataSplit split = make_split({3, 1, 3, 3, 2});
  EXPECT_EQ(count_class(split, 3), 3u);
  EXPECT_EQ(count_class(split, 1), 1u);
  EXPECT_EQ(count_class(split, 9), 0u);
}

}  // namespace
}  // namespace tanglefl::data
