#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"

namespace tanglefl::core {
namespace {

data::FederatedDataset small_dataset(std::uint64_t seed = 3) {
  data::FemnistSynthConfig config;
  config.num_users = 10;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = seed;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

SimulationConfig fast_config(std::size_t rounds = 4) {
  SimulationConfig config;
  config.rounds = rounds;
  config.nodes_per_round = 4;
  config.eval_every = 2;
  config.eval_nodes_fraction = 0.5;
  config.node.training.epochs = 1;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 1;
  return config;
}

TEST(Simulation, TangleGrowsAcrossRounds) {
  const auto dataset = small_dataset();
  TangleSimulation sim(dataset, small_factory(), fast_config());
  EXPECT_EQ(sim.tangle().size(), 1u);  // genesis
  sim.run_round(1);
  const std::size_t after_one = sim.tangle().size();
  EXPECT_GT(after_one, 1u);
  sim.run_round(2);
  EXPECT_GT(sim.tangle().size(), after_one);
}

TEST(Simulation, RoundVisibilityBarrier) {
  // Every transaction may only approve transactions from strictly earlier
  // rounds (Section IV: published transactions become visible in the next
  // round).
  const auto dataset = small_dataset();
  TangleSimulation sim(dataset, small_factory(), fast_config(5));
  for (std::uint64_t r = 1; r <= 5; ++r) sim.run_round(r);

  const tangle::Tangle& tangle = sim.tangle();
  for (tangle::TxIndex i = 1; i < tangle.size(); ++i) {
    for (const tangle::TxIndex p : tangle.parent_indices(i)) {
      EXPECT_LT(tangle.transaction(p).round, tangle.transaction(i).round);
    }
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  const auto dataset = small_dataset();
  TangleSimulation a(dataset, small_factory(), fast_config());
  TangleSimulation b(dataset, small_factory(), fast_config());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
  }
}

TEST(Simulation, DeterministicAcrossThreadCounts) {
  const auto dataset = small_dataset();
  SimulationConfig one = fast_config();
  one.threads = 1;
  SimulationConfig four = fast_config();
  four.threads = 4;
  TangleSimulation a(dataset, small_factory(), one);
  TangleSimulation b(dataset, small_factory(), four);
  (void)a.run();
  (void)b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
}

TEST(Simulation, DeterministicAcrossKernelPoolSizes) {
  // The intra-node GEMM pool partitions output rows only, so node training
  // — and therefore the whole ledger — must be bit-identical whether the
  // kernels run serially or on a shared pool, including concurrently with
  // multi-threaded node dispatch.
  const auto dataset = small_dataset();
  SimulationConfig serial = fast_config();
  serial.kernel_threads = 0;
  SimulationConfig pooled = fast_config();
  pooled.threads = 2;
  pooled.kernel_threads = 2;
  TangleSimulation a(dataset, small_factory(), serial);
  TangleSimulation b(dataset, small_factory(), pooled);
  (void)a.run();
  (void)b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
}

TEST(Simulation, ViewCacheIsBitIdenticalToForcedRecompute) {
  // The cone cache must be a pure memoization: cache-enabled and
  // forced-recompute runs of the same seed produce byte-identical ledgers
  // and evaluation histories.
  const auto dataset = small_dataset();
  SimulationConfig cached = fast_config();
  cached.use_view_cache = true;
  SimulationConfig direct = fast_config();
  direct.use_view_cache = false;
  TangleSimulation a(dataset, small_factory(), cached);
  TangleSimulation b(dataset, small_factory(), direct);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(a.tangle().size(), b.tangle().size());
  for (tangle::TxIndex i = 0; i < a.tangle().size(); ++i) {
    EXPECT_EQ(to_hex(a.tangle().transaction(i).id),
              to_hex(b.tangle().transaction(i).id));
  }
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
    EXPECT_DOUBLE_EQ(ra.history[i].loss, rb.history[i].loss);
    EXPECT_EQ(ra.history[i].tip_count, rb.history[i].tip_count);
  }
}

TEST(Simulation, ViewCacheBoundsConeRecomputesPerRound) {
  // The point of the shared cache: cone recomputations scale with rounds,
  // not rounds x participants. One build (2 passes) per training round
  // plus 2 per cached evaluation view, against ~3 per participant before.
  const auto dataset = small_dataset();
  obs::MetricsRegistry::global().reset();
  SimulationConfig config = fast_config(4);
  TangleSimulation sim(dataset, small_factory(), config);
  (void)sim.run();
  const std::uint64_t recomputes =
      obs::MetricsRegistry::global()
          .counter("tangle.cone_recompute.count")
          .value();
  const std::uint64_t evals = 2;  // rounds 2 and 4
  EXPECT_LE(recomputes, 2 * (config.rounds + 2 * evals));
  EXPECT_LT(recomputes, config.rounds * config.nodes_per_round);
  EXPECT_GT(obs::MetricsRegistry::global()
                .counter("tangle.view_cache.hit")
                .value(),
            0u);
}

TEST(Simulation, DeterministicMetricsSnapshot) {
  // Two same-seed runs must produce byte-identical deterministic metric
  // snapshots (the instrumentation layer's determinism contract), and the
  // snapshot must also be independent of the thread count.
  const auto dataset = small_dataset();
  const auto snapshot_for = [&](std::size_t threads) {
    obs::MetricsRegistry::global().reset();
    SimulationConfig config = fast_config();
    config.threads = threads;
    TangleSimulation sim(dataset, small_factory(), config);
    (void)sim.run();
    return obs::MetricsRegistry::global()
        .snapshot(obs::SnapshotKind::kDeterministic)
        .to_json();
  };
  const std::string first = snapshot_for(1);
  const std::string second = snapshot_for(1);
  const std::string threaded = snapshot_for(4);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, threaded);
  EXPECT_NE(first.find("sim.rounds"), std::string::npos);
  EXPECT_NE(first.find("tangle.tip_walk.length"), std::string::npos);
}

TEST(Simulation, RoundRecordCarriesPublishCounts) {
  // Regression for the run() loop dropping per-round publish counts: the
  // cumulative published/suppressed tally and ledger size must reach the
  // evaluation records.
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config(4);
  config.eval_every = 2;
  TangleSimulation sim(dataset, small_factory(), config);
  const RunResult result = sim.run();
  ASSERT_EQ(result.history.size(), 2u);
  const RoundRecord& mid = result.history.front();
  const RoundRecord& last = result.history.back();
  EXPECT_GT(last.published_cumulative, 0u);
  EXPECT_GE(last.published_cumulative, mid.published_cumulative);
  EXPECT_GE(last.suppressed_cumulative, mid.suppressed_cumulative);
  // Every participant either published or was suppressed.
  EXPECT_EQ(last.published_cumulative + last.suppressed_cumulative,
            4u * config.nodes_per_round);
  EXPECT_GT(last.ledger_bytes, 0u);
  EXPECT_EQ(last.ledger_bytes % sizeof(float), 0u);
}

TEST(Simulation, SeedChangesOutcome) {
  const auto dataset = small_dataset();
  SimulationConfig other = fast_config();
  other.seed = 99;
  TangleSimulation a(dataset, small_factory(), fast_config());
  TangleSimulation b(dataset, small_factory(), other);
  (void)a.run();
  (void)b.run();
  EXPECT_NE(to_hex(a.tangle().transaction(0).id),
            to_hex(b.tangle().transaction(0).id));
}

TEST(Simulation, EvaluateProducesPopulatedRecord) {
  const auto dataset = small_dataset();
  TangleSimulation sim(dataset, small_factory(), fast_config());
  sim.run_round(1);
  const RoundRecord record = sim.evaluate(1);
  EXPECT_EQ(record.round, 1u);
  EXPECT_GT(record.tangle_size, 0u);
  EXPECT_GT(record.tip_count, 0u);
  EXPECT_GE(record.accuracy, 0.0);
  EXPECT_LE(record.accuracy, 1.0);
  EXPECT_GT(record.loss, 0.0);
}

TEST(Simulation, RunReturnsHistoryAtCadence) {
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config(6);
  config.eval_every = 2;
  TangleSimulation sim(dataset, small_factory(), config);
  const RunResult result = sim.run();
  ASSERT_EQ(result.history.size(), 3u);  // rounds 2, 4, 6
  EXPECT_EQ(result.history[0].round, 2u);
  EXPECT_EQ(result.history[2].round, 6u);
}

TEST(Simulation, NoMaliciousUsersWithoutAttack) {
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config();
  config.malicious_fraction = 0.5;  // ignored without an attack type
  TangleSimulation sim(dataset, small_factory(), config);
  EXPECT_TRUE(sim.malicious_users().empty());
}

TEST(Simulation, MaliciousFractionSetsUserCount) {
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config();
  config.attack = AttackType::kRandomPoison;
  config.malicious_fraction = 0.3;
  TangleSimulation sim(dataset, small_factory(), config);
  EXPECT_EQ(sim.malicious_users().size(), 3u);  // 30% of 10
}

TEST(Simulation, AttackRespectsStartRound) {
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config(6);
  config.attack = AttackType::kRandomPoison;
  config.malicious_fraction = 0.5;
  config.attack_start_round = 4;
  TangleSimulation sim(dataset, small_factory(), config);
  (void)sim.run();

  for (tangle::TxIndex i = 1; i < sim.tangle().size(); ++i) {
    const auto& tx = sim.tangle().transaction(i);
    if (tx.publisher == "malicious") {
      EXPECT_GE(tx.round, 4u);
    }
  }
}

TEST(Simulation, RandomPoisonAttackInjectsTransactions) {
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config(4);
  config.attack = AttackType::kRandomPoison;
  config.malicious_fraction = 0.5;
  config.attack_start_round = 1;
  TangleSimulation sim(dataset, small_factory(), config);
  (void)sim.run();

  std::size_t malicious = 0;
  for (tangle::TxIndex i = 1; i < sim.tangle().size(); ++i) {
    if (sim.tangle().transaction(i).publisher == "malicious") ++malicious;
  }
  EXPECT_GT(malicious, 0u);
}

TEST(Simulation, ConsensusParamsHaveModelSize) {
  const auto dataset = small_dataset();
  TangleSimulation sim(dataset, small_factory(), fast_config());
  sim.run_round(1);
  EXPECT_EQ(sim.consensus_params().size(),
            small_factory()().parameter_count());
}

TEST(Simulation, AutoConfidenceSamplesFollowNodesPerRound) {
  // Covered indirectly: construction must not throw and produce a valid
  // run when auto_confidence_samples is on (default).
  const auto dataset = small_dataset();
  SimulationConfig config = fast_config(2);
  config.auto_confidence_samples = true;
  TangleSimulation sim(dataset, small_factory(), config);
  const RunResult result = sim.run();
  EXPECT_FALSE(result.history.empty());
}

TEST(RunResult, RoundsToAccuracy) {
  RunResult result;
  result.history = {{10, 0.3}, {20, 0.6}, {30, 0.8}};
  EXPECT_EQ(result.rounds_to_accuracy(0.5), 20);
  EXPECT_EQ(result.rounds_to_accuracy(0.9), -1);
  EXPECT_DOUBLE_EQ(result.final_accuracy(), 0.8);
}

}  // namespace
}  // namespace tanglefl::core
