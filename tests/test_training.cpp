#include "data/training.hpp"

#include <gtest/gtest.h>

#include "data/femnist_synth.hpp"
#include "data/shakespeare_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::data {
namespace {

/// Linearly separable two-class toy data.
DataSplit make_separable(std::size_t n, Rng& rng) {
  DataSplit split;
  split.features = nn::Tensor({n, 2});
  split.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    split.features.at(i, 0) =
        static_cast<float>(rng.normal()) + (positive ? 2.0f : -2.0f);
    split.features.at(i, 1) = static_cast<float>(rng.normal());
    split.labels[i] = positive ? 1 : 0;
  }
  return split;
}

TEST(Training, LearnsSeparableData) {
  Rng rng(1);
  const DataSplit train = make_separable(64, rng);
  const DataSplit test = make_separable(32, rng);

  nn::Model model = nn::make_mlp(2, 8, 2);
  Rng init_rng(2);
  model.init(init_rng);
  EXPECT_LT(evaluate(model, test).accuracy, 0.9);

  TrainConfig config;
  config.epochs = 10;
  config.batch_size = 8;
  config.sgd.learning_rate = 0.1;
  Rng train_rng(3);
  const double final_loss = train_local(model, train, config, train_rng);
  EXPECT_LT(final_loss, 0.3);
  EXPECT_GT(evaluate(model, test).accuracy, 0.9);
}

TEST(Training, EmptySplitIsNoop) {
  nn::Model model = nn::make_mlp(2, 4, 2);
  Rng init_rng(1);
  model.init(init_rng);
  const std::vector<float> before = model.get_parameters();
  TrainConfig config;
  Rng rng(2);
  EXPECT_EQ(train_local(model, DataSplit{}, config, rng), 0.0);
  EXPECT_EQ(model.get_parameters(), before);
}

TEST(Training, DeterministicInRngStream) {
  Rng data_rng(1);
  const DataSplit train = make_separable(32, data_rng);
  TrainConfig config;
  config.epochs = 2;
  config.sgd.learning_rate = 0.05;

  nn::Model a = nn::make_mlp(2, 4, 2);
  nn::Model b = nn::make_mlp(2, 4, 2);
  Rng init_a(9), init_b(9);
  a.init(init_a);
  b.init(init_b);
  Rng train_a(5), train_b(5);
  (void)train_local(a, train, config, train_a);
  (void)train_local(b, train, config, train_b);
  EXPECT_EQ(a.get_parameters(), b.get_parameters());
}

TEST(Training, MoreEpochsReduceTrainLoss) {
  Rng data_rng(1);
  const DataSplit train = make_separable(48, data_rng);

  const auto run = [&](std::size_t epochs) {
    nn::Model model = nn::make_mlp(2, 8, 2);
    Rng init_rng(4);
    model.init(init_rng);
    TrainConfig config;
    config.epochs = epochs;
    config.sgd.learning_rate = 0.05;
    Rng rng(5);
    (void)train_local(model, train, config, rng);
    return evaluate(model, train).loss;
  };
  EXPECT_LT(run(8), run(1));
}

TEST(Evaluate, EmptySplit) {
  nn::Model model = nn::make_mlp(2, 4, 2);
  Rng rng(1);
  model.init(rng);
  const EvalResult result = evaluate(model, DataSplit{});
  EXPECT_EQ(result.samples, 0u);
  EXPECT_EQ(result.accuracy, 0.0);
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  Rng data_rng(2);
  const DataSplit test = make_separable(33, data_rng);
  nn::Model model = nn::make_mlp(2, 4, 2);
  Rng init_rng(3);
  model.init(init_rng);
  const EvalResult a = evaluate(model, test, 8);
  const EvalResult b = evaluate(model, test, 100);
  EXPECT_NEAR(a.loss, b.loss, 1e-5);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Training, CnnLearnsFemnistUser) {
  // A single writer's data must be learnable to high train accuracy — the
  // overfitting-on-local-data behaviour decentralized learning fights.
  FemnistSynthConfig data_config;
  data_config.num_users = 2;
  data_config.num_classes = 3;
  data_config.image_size = 10;
  data_config.mean_samples_per_user = 60.0;
  data_config.seed = 5;
  const FederatedDataset dataset = make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 10;
  model_config.num_classes = 3;
  nn::Model model = nn::make_image_cnn(model_config);
  Rng init_rng(6);
  model.init(init_rng);

  TrainConfig config;
  config.epochs = 8;
  config.sgd.learning_rate = 0.05;
  Rng rng(7);
  (void)train_local(model, dataset.user(0).train, config, rng);
  EXPECT_GT(evaluate(model, dataset.user(0).train).accuracy, 0.8);
}

TEST(Training, LstmReducesCharLmLoss) {
  ShakespeareSynthConfig data_config;
  data_config.num_users = 2;
  data_config.vocab_size = 10;
  data_config.seq_length = 8;
  data_config.mean_chars_per_user = 1500.0;
  data_config.min_samples_per_user = 32;
  data_config.seed = 8;
  const FederatedDataset dataset = make_shakespeare_synth(data_config);
  ASSERT_GT(dataset.num_users(), 0u);

  nn::CharLstmConfig model_config;
  model_config.vocab_size = 10;
  model_config.seq_length = 8;
  model_config.embedding_dim = 16;
  model_config.hidden_dim = 48;
  nn::Model model = nn::make_char_lstm(model_config);
  Rng init_rng(9);
  model.init(init_rng);

  const double before = evaluate(model, dataset.user(0).train).loss;
  TrainConfig config;
  config.epochs = 10;
  config.sgd.learning_rate = 1.0;
  config.sgd.grad_clip = 5.0;
  Rng rng(10);
  (void)train_local(model, dataset.user(0).train, config, rng);
  const double after = evaluate(model, dataset.user(0).train).loss;
  EXPECT_LT(after, before - 0.1);
}

TEST(TargetedMisclassification, CountsOnlySourceClass) {
  // Construct a model-free check through a trivially predictable model: a
  // single linear layer with weights forcing argmax to class 1 always.
  nn::Model model;
  model.emplace<nn::Linear>(2, 3);
  std::vector<float> params(model.parameter_count(), 0.0f);
  params[1] = 1.0f;  // W(0,1): feature 0 pushes class 1
  model.set_parameters(params);

  DataSplit split;
  split.features = nn::Tensor({4, 2});
  for (std::size_t i = 0; i < 4; ++i) split.features.at(i, 0) = 1.0f;
  split.labels = {0, 0, 1, 2};

  // All predictions are class 1; of the two source-class (0) samples, both
  // are predicted as target 1 -> rate 1.0.
  EXPECT_DOUBLE_EQ(targeted_misclassification_rate(model, split, 0, 1), 1.0);
  // Source class 2: one sample, predicted 1, target 2 -> rate 0.
  EXPECT_DOUBLE_EQ(targeted_misclassification_rate(model, split, 2, 2), 0.0);
  // No samples of class 5 -> rate 0 by definition.
  EXPECT_DOUBLE_EQ(targeted_misclassification_rate(model, split, 5, 1), 0.0);
}

}  // namespace
}  // namespace tanglefl::data
