// Numerical gradient checks: for every layer type, compare the analytic
// backward pass against central finite differences of a scalarized forward
// pass. This is the ground-truth test for the NN substrate — if these pass,
// training dynamics are trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "support/rng.hpp"

namespace tanglefl::nn {
namespace {

/// Fills a tensor with small random values.
void randomize(Tensor& t, Rng& rng, float scale = 0.5f) {
  for (auto& v : t.values()) v = static_cast<float>(rng.normal()) * scale;
}

/// Scalarizes an output tensor with fixed random coefficients so that
/// d(scalar)/d(output) = coefficients.
struct Scalarizer {
  Tensor coefficients;

  explicit Scalarizer(const Tensor& shape_like, Rng& rng)
      : coefficients(shape_like.shape()) {
    randomize(coefficients, rng, 1.0f);
  }

  float operator()(const Tensor& out) const {
    float acc = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += out[i] * coefficients[i];
    }
    return acc;
  }
};

constexpr double kEpsilon = 1e-3;
constexpr double kTolerance = 2e-2;  // relative; float32 numerics

/// Checks d(scalar)/d(value) for one scalar location `target` against the
/// analytic gradient `analytic`.
void expect_close(double analytic, double numeric, const char* what,
                  std::size_t index) {
  // Central differences on float32 forwards carry ~1e-7/(2*eps) absolute
  // noise; accept tiny gradients on absolute grounds, larger ones on
  // relative grounds.
  if (std::abs(analytic - numeric) < 5e-4) return;
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  EXPECT_LT(std::abs(analytic - numeric) / denom, kTolerance)
      << what << " grad mismatch at flat index " << index << ": analytic="
      << analytic << " numeric=" << numeric;
}

/// Full check of one layer: input gradient plus every parameter gradient.
void check_layer(Layer& layer, Tensor input, Rng& rng,
                 bool check_input_grad = true) {
  const Tensor out = layer.forward(input, /*training=*/false);
  const Scalarizer scalarize(out, rng);

  // Analytic gradients.
  for (Tensor* g : layer.gradients()) g->zero();
  (void)layer.forward(input, false);
  const Tensor dinput = layer.backward(scalarize.coefficients);
  const std::vector<Tensor*> params = layer.parameters();
  const std::vector<Tensor*> grads = layer.gradients();

  // Numeric input gradient (sampled positions to keep runtime bounded).
  if (check_input_grad) {
    const std::size_t stride = std::max<std::size_t>(1, input.size() / 24);
    for (std::size_t i = 0; i < input.size(); i += stride) {
      const float saved = input[i];
      input[i] = saved + static_cast<float>(kEpsilon);
      const float up = scalarize(layer.forward(input, false));
      input[i] = saved - static_cast<float>(kEpsilon);
      const float down = scalarize(layer.forward(input, false));
      input[i] = saved;
      const double numeric = (up - down) / (2 * kEpsilon);
      expect_close(dinput[i], numeric, "input", i);
    }
  }

  // Numeric parameter gradients.
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    const Tensor& grad = *grads[p];
    const std::size_t stride = std::max<std::size_t>(1, param.size() / 24);
    for (std::size_t i = 0; i < param.size(); i += stride) {
      const float saved = param[i];
      param[i] = saved + static_cast<float>(kEpsilon);
      const float up = scalarize(layer.forward(input, false));
      param[i] = saved - static_cast<float>(kEpsilon);
      const float down = scalarize(layer.forward(input, false));
      param[i] = saved;
      const double numeric = (up - down) / (2 * kEpsilon);
      expect_close(grad[i], numeric, "param", i);
    }
  }
}

TEST(Gradients, Linear) {
  Rng rng(1);
  Linear layer(5, 4);
  layer.init(rng);
  Tensor input({3, 5});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, ReLU) {
  Rng rng(2);
  ReLU layer;
  Tensor input({4, 6});
  randomize(input, rng, 1.0f);
  // Nudge values away from the kink at 0 where the derivative is undefined.
  for (auto& v : input.values()) {
    if (std::abs(v) < 0.05f) v = 0.1f;
  }
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, Conv2D) {
  Rng rng(3);
  Conv2D layer(2, 3, 3, 1, 1);
  layer.init(rng);
  Tensor input({2, 2, 5, 5});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, Conv2DStride2NoPad) {
  Rng rng(4);
  Conv2D layer(1, 2, 2, 2, 0);
  layer.init(rng);
  Tensor input({1, 1, 6, 6});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, MaxPool) {
  Rng rng(5);
  MaxPool2D layer(2);
  Tensor input({2, 2, 4, 4});
  randomize(input, rng, 1.0f);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, Flatten) {
  Rng rng(6);
  Flatten layer;
  Tensor input({2, 3, 2, 2});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, Embedding) {
  Rng rng(7);
  Embedding layer(10, 4);
  layer.init(rng);
  Tensor input({3, 5});
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.uniform_index(10));
  }
  // Token ids are not differentiable: check parameters only.
  check_layer(layer, std::move(input), rng, /*check_input_grad=*/false);
}

TEST(Gradients, LSTM) {
  Rng rng(8);
  LSTM layer(3, 4);
  layer.init(rng);
  Tensor input({2, 5, 3});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, StackedLSTM) {
  Rng rng(9);
  LSTM layer(4, 4);
  layer.init(rng);
  Tensor input({1, 3, 4});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, LastTimestep) {
  Rng rng(10);
  LastTimestep layer;
  Tensor input({2, 4, 3});
  randomize(input, rng);
  check_layer(layer, std::move(input), rng);
}

TEST(Gradients, SoftmaxCrossEntropyMatchesNumeric) {
  Rng rng(11);
  Tensor logits({3, 5});
  randomize(logits, rng, 1.0f);
  const std::vector<std::int32_t> labels = {1, 4, 0};

  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(kEpsilon);
    const float up = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved - static_cast<float>(kEpsilon);
    const float down = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved;
    const double numeric = (up - down) / (2 * kEpsilon);
    expect_close(result.grad[i], numeric, "logits", i);
  }
}

TEST(Gradients, FullCnnEndToEnd) {
  // End-to-end: CNN forward + cross-entropy, check a sample of parameter
  // gradients through the whole stack.
  Rng rng(12);
  ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 3;
  config.hidden = 8;
  Model model = make_image_cnn(config);
  model.init(rng);

  Tensor input({2, 1, 8, 8});
  randomize(input, rng);
  const std::vector<std::int32_t> labels = {0, 2};

  model.zero_gradients();
  const Tensor logits = model.forward(input, false);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(loss.grad);
  const std::vector<float> analytic = model.get_gradients();
  std::vector<float> params = model.get_parameters();

  const std::size_t stride = std::max<std::size_t>(1, params.size() / 40);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + static_cast<float>(kEpsilon);
    model.set_parameters(params);
    const float up = softmax_cross_entropy_loss(model.forward(input, false), labels);
    params[i] = saved - static_cast<float>(kEpsilon);
    model.set_parameters(params);
    const float down = softmax_cross_entropy_loss(model.forward(input, false), labels);
    params[i] = saved;
    model.set_parameters(params);
    const double numeric = (up - down) / (2 * kEpsilon);
    expect_close(analytic[i], numeric, "cnn-param", i);
  }
}

TEST(Gradients, FullLstmEndToEnd) {
  Rng rng(13);
  CharLstmConfig config;
  config.vocab_size = 6;
  config.seq_length = 4;
  config.embedding_dim = 3;
  config.hidden_dim = 5;
  config.lstm_layers = 2;
  Model model = make_char_lstm(config);
  model.init(rng);

  Tensor input({2, 4});
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.uniform_index(6));
  }
  const std::vector<std::int32_t> labels = {2, 5};

  model.zero_gradients();
  const Tensor logits = model.forward(input, false);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(loss.grad);
  const std::vector<float> analytic = model.get_gradients();
  std::vector<float> params = model.get_parameters();

  const std::size_t stride = std::max<std::size_t>(1, params.size() / 40);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + static_cast<float>(kEpsilon);
    model.set_parameters(params);
    const float up = softmax_cross_entropy_loss(model.forward(input, false), labels);
    params[i] = saved - static_cast<float>(kEpsilon);
    model.set_parameters(params);
    const float down = softmax_cross_entropy_loss(model.forward(input, false), labels);
    params[i] = saved;
    model.set_parameters(params);
    const double numeric = (up - down) / (2 * kEpsilon);
    expect_close(analytic[i], numeric, "lstm-param", i);
  }
}

}  // namespace
}  // namespace tanglefl::nn
