#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/training.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::nn {
namespace {

/// A 1-parameter model for exact optimizer arithmetic: y = w * x.
Model one_weight_model() {
  Model model;
  model.emplace<Linear>(1, 1);
  return model;
}

void set_weight(Model& model, float w, float b = 0.0f) {
  model.set_parameters(std::vector<float>{w, b});
}

TEST(Sgd, VanillaStepIsLrTimesGrad) {
  Model model = one_weight_model();
  set_weight(model, 1.0f);
  // Force a known gradient through a forward/backward pass: with x = 1 and
  // d(loss)/d(y) = 2, dW = 2.
  const Tensor x({1, 1}, {1.0f});
  (void)model.forward(x, true);
  model.backward(Tensor({1, 1}, {2.0f}));

  SgdOptimizer sgd({.learning_rate = 0.1});
  sgd.step(model);
  EXPECT_NEAR(model.get_parameters()[0], 1.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Model model = one_weight_model();
  set_weight(model, 10.0f);
  model.zero_gradients();  // zero grad: only decay acts
  SgdOptimizer sgd({.learning_rate = 0.1, .weight_decay = 0.5});
  sgd.step(model);
  EXPECT_NEAR(model.get_parameters()[0], 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(Sgd, MomentumAccumulates) {
  Model model = one_weight_model();
  set_weight(model, 0.0f);
  SgdOptimizer sgd({.learning_rate = 1.0, .momentum = 0.5});

  const Tensor x({1, 1}, {1.0f});
  for (int i = 0; i < 2; ++i) {
    model.zero_gradients();
    (void)model.forward(x, true);
    model.backward(Tensor({1, 1}, {1.0f}));  // constant grad 1
    sgd.step(model);
  }
  // v1 = 1, w1 = -1; v2 = 0.5 + 1 = 1.5, w2 = -2.5.
  EXPECT_NEAR(model.get_parameters()[0], -2.5f, 1e-5f);
}

TEST(Sgd, GradClipBoundsUpdate) {
  Model model = one_weight_model();
  set_weight(model, 0.0f);
  const Tensor x({1, 1}, {1.0f});
  (void)model.forward(x, true);
  model.backward(Tensor({1, 1}, {100.0f}));  // dW=100, db=100 -> norm ~141

  SgdOptimizer sgd({.learning_rate = 1.0, .grad_clip = 1.0});
  sgd.step(model);
  const auto params = model.get_parameters();
  const float norm = std::sqrt(params[0] * params[0] + params[1] * params[1]);
  EXPECT_NEAR(norm, 1.0f, 1e-4f);
}

TEST(Sgd, DecreasesLossOnQuadratic) {
  // Minimize cross-entropy on a fixed batch: loss must drop monotonically
  // for a small enough learning rate.
  Rng rng(3);
  Model model = make_mlp(4, 8, 3);
  model.init(rng);
  Tensor x({6, 4});
  for (auto& v : x.values()) v = static_cast<float>(rng.normal());
  const std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2};

  SgdOptimizer sgd({.learning_rate = 0.1});
  float last = 1e9f;
  for (int step = 0; step < 20; ++step) {
    model.zero_gradients();
    const Tensor logits = model.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    sgd.step(model);
    EXPECT_LE(loss.loss, last + 1e-3f);
    last = loss.loss;
  }
  EXPECT_LT(last, std::log(3.0f));
}

TEST(Adam, FirstStepIsSignScaled) {
  // With bias correction, the very first Adam step has magnitude ~lr in
  // the gradient's sign direction (m_hat/sqrt(v_hat) = g/|g|).
  Model model = one_weight_model();
  set_weight(model, 0.0f);
  const Tensor x({1, 1}, {1.0f});
  (void)model.forward(x, true);
  model.backward(Tensor({1, 1}, {3.0f}));  // dW = 3, db = 3

  AdamOptimizer adam({.learning_rate = 0.1});
  adam.step(model);
  EXPECT_NEAR(model.get_parameters()[0], -0.1f, 1e-4f);
  EXPECT_EQ(adam.steps_taken(), 1u);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two parameters with gradients of very different magnitude receive
  // near-equal Adam updates (per-coordinate normalization).
  Model model;
  model.emplace<Linear>(2, 1);
  model.set_parameters(std::vector<float>{0.0f, 0.0f, 0.0f});
  const Tensor x({1, 2}, {1.0f, 100.0f});  // dW = [1, 100] * dy
  (void)model.forward(x, true);
  model.backward(Tensor({1, 1}, {1.0f}));

  AdamOptimizer adam({.learning_rate = 0.01});
  adam.step(model);
  const auto params = model.get_parameters();
  EXPECT_NEAR(params[0], -0.01f, 1e-4f);
  EXPECT_NEAR(params[1], -0.01f, 1e-4f);
}

TEST(Adam, DecreasesLossOnClassification) {
  Rng rng(13);
  Model model = make_mlp(4, 8, 3);
  model.init(rng);
  Tensor x({6, 4});
  for (auto& v : x.values()) v = static_cast<float>(rng.normal());
  const std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2};

  AdamOptimizer adam({.learning_rate = 0.05});
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    model.zero_gradients();
    const Tensor logits = model.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    adam.step(model);
    if (step == 0) first = loss.loss;
    last = loss.loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Adam, TrainLocalIntegration) {
  // TrainConfig::use_adam routes through the Adam path and learns.
  Rng data_rng(14);
  data::DataSplit train;
  train.features = nn::Tensor({32, 2});
  train.labels.resize(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const bool positive = i % 2 == 0;
    train.features.at(i, 0) =
        static_cast<float>(data_rng.normal()) + (positive ? 2.0f : -2.0f);
    train.labels[i] = positive ? 1 : 0;
  }

  Model model = make_mlp(2, 8, 2);
  Rng init_rng(15);
  model.init(init_rng);
  data::TrainConfig config;
  config.epochs = 10;
  config.use_adam = true;
  config.adam.learning_rate = 0.02;
  Rng rng(16);
  const double final_loss = data::train_local(model, train, config, rng);
  EXPECT_LT(final_loss, 0.3);
}

TEST(Sgd, SetLearningRate) {
  SgdOptimizer sgd({.learning_rate = 0.1});
  sgd.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(sgd.config().learning_rate, 0.01);
}

}  // namespace
}  // namespace tanglefl::nn
