#include "nn/ops.hpp"

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tanglefl::nn {
namespace {

TEST(Ops, MatmulSmall) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c({2, 2});
  ops::matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulIdentity) {
  const Tensor a({2, 2}, {3, -1, 2, 5});
  const Tensor eye({2, 2}, {1, 0, 0, 1});
  Tensor c({2, 2});
  ops::matmul(a, eye, c);
  EXPECT_TRUE(c.equals(a));
}

TEST(Ops, MatmulOverwritesOutput) {
  const Tensor a({1, 1}, {2});
  const Tensor b({1, 1}, {3});
  Tensor c({1, 1}, {99});
  ops::matmul(a, b, c);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
}

TEST(Ops, MatmulTransA) {
  // A(3,2), B(3,4) -> C(2,4) = A^T B.
  const Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 4}, {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0});
  Tensor c({2, 4});
  ops::matmul_trans_a(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(Ops, MatmulTransB) {
  // A(2,3), B(4,3) -> C(2,4) = A B^T.
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({4, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1});
  Tensor c({2, 4});
  ops::matmul_trans_b(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(c.at(0, 3), 6.0f);
  EXPECT_FLOAT_EQ(c.at(1, 3), 15.0f);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Tensor a({4, 3}), b({4, 5});
  for (auto& v : a.values()) v = static_cast<float>(rng.normal());
  for (auto& v : b.values()) v = static_cast<float>(rng.normal());

  Tensor at({3, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor expect({3, 5}), got({3, 5});
  ops::matmul(at, b, expect);
  ops::matmul_trans_a(a, b, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-5f);
  }
}

TEST(Ops, AddRowBias) {
  Tensor x({2, 3}, {0, 0, 0, 1, 1, 1});
  const Tensor bias({3}, {10, 20, 30});
  ops::add_row_bias(x, bias);
  EXPECT_FLOAT_EQ(x.at(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 31.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const Tensor logits({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
  Tensor probs;
  ops::softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_GE(probs.at(r, c), 0.0f);
      total += probs.at(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  const Tensor a({1, 3}, {1, 2, 3});
  const Tensor b({1, 3}, {1001, 1002, 1003});
  Tensor pa, pb;
  ops::softmax_rows(a, pa);
  ops::softmax_rows(b, pb);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-5f);
  EXPECT_FALSE(std::isnan(pb[0]));
}

TEST(Ops, SoftmaxInPlace) {
  Tensor logits({1, 2}, {0, 0});
  ops::softmax_rows(logits, logits);
  EXPECT_NEAR(logits[0], 0.5f, 1e-6f);
}

TEST(Ops, Conv2DIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  const Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor w({1, 1, 1, 1}, {1});
  const Tensor bias({1}, {0});
  const ops::Conv2DShape shape{1, 1, 1, 1, 0};
  Tensor y({1, 1, 3, 3});
  ops::conv2d_forward(x, w, bias, shape, y);
  EXPECT_TRUE(y.equals(x));
}

TEST(Ops, Conv2DSumKernel) {
  // 2x2 all-ones kernel computes window sums.
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor w({1, 1, 2, 2}, {1, 1, 1, 1});
  const Tensor bias({1}, {0.5f});
  const ops::Conv2DShape shape{1, 1, 2, 1, 0};
  Tensor y({1, 1, 1, 1});
  ops::conv2d_forward(x, w, bias, shape, y);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
}

TEST(Ops, Conv2DPaddingKeepsSize) {
  const ops::Conv2DShape shape{1, 1, 3, 1, 1};
  EXPECT_EQ(shape.out_extent(5), 5u);
}

TEST(Ops, Conv2DStrideHalvesSize) {
  const ops::Conv2DShape shape{1, 1, 2, 2, 0};
  EXPECT_EQ(shape.out_extent(6), 3u);
}

TEST(Ops, Conv2DMultiChannel) {
  // Two input channels, kernel picks only channel 1.
  const Tensor x({1, 2, 2, 2}, {1, 1, 1, 1, 5, 6, 7, 8});
  const Tensor w({1, 2, 1, 1}, {0, 1});
  const Tensor bias({1}, {0});
  const ops::Conv2DShape shape{2, 1, 1, 1, 0};
  Tensor y({1, 1, 2, 2});
  ops::conv2d_forward(x, w, bias, shape, y);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[3], 8.0f);
}

TEST(Ops, MaxPoolForwardPicksMaxima) {
  const Tensor x({1, 1, 4, 4},
                 {1, 2, 0, 0, 3, 4, 0, 0, 0, 0, 5, 6, 0, 0, 7, 8});
  Tensor y({1, 1, 2, 2});
  std::vector<std::size_t> argmax;
  ops::maxpool2d_forward(x, 2, 2, y, argmax);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[3], 8.0f);
}

TEST(Ops, MaxPoolBackwardRoutesToArgmax) {
  const Tensor x({1, 1, 2, 2}, {1, 9, 2, 3});
  Tensor y({1, 1, 1, 1});
  std::vector<std::size_t> argmax;
  ops::maxpool2d_forward(x, 2, 2, y, argmax);
  const Tensor dy({1, 1, 1, 1}, {5});
  Tensor dx({1, 1, 2, 2});
  ops::maxpool2d_backward(dy, argmax, dx);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

}  // namespace
}  // namespace tanglefl::nn
