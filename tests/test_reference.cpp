#include "core/reference.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "tangle/model_store.hpp"

namespace tanglefl::core {
namespace {

using tangle::ModelStore;
using tangle::Tangle;
using tangle::TxIndex;

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f, 0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, nn::ParamVector params,
              std::uint64_t round) {
    const auto added = store.add(std::move(params));
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }
};

TEST(Reference, GenesisOnlyReturnsGenesisPayload) {
  Fixture f;
  Rng rng(1);
  const ReferenceResult result =
      choose_reference(f.tangle.view(), f.store, rng, {});
  ASSERT_EQ(result.transactions.size(), 1u);
  EXPECT_EQ(result.transactions[0], 0u);
  EXPECT_EQ(result.params, (nn::ParamVector{0.0f, 0.0f}));
}

TEST(Reference, PicksDeepConsensusTransaction) {
  Fixture f;
  // A linear chain: the newest chain element has the highest
  // confidence * rating (confidence 1, largest past cone).
  TxIndex tip = 0;
  for (int i = 1; i <= 5; ++i) {
    tip = f.add({tip}, {static_cast<float>(i), 0.0f},
                static_cast<std::uint64_t>(i));
  }
  Rng rng(2);
  const ReferenceResult result =
      choose_reference(f.tangle.view(), f.store, rng, {});
  EXPECT_EQ(result.transactions[0], tip);
  EXPECT_EQ(result.params[0], 5.0f);
}

TEST(Reference, AbandonedBranchLosesToConsensusBranch) {
  Fixture f;
  // A short abandoned fork vs a long approved chain.
  const TxIndex orphan = f.add({0}, {99.0f, 0.0f}, 1);
  TxIndex tip = f.add({0}, {1.0f, 0.0f}, 1);
  for (int i = 2; i <= 6; ++i) {
    tip = f.add({tip}, {static_cast<float>(i), 0.0f},
                static_cast<std::uint64_t>(i));
  }
  Rng rng(3);
  ReferenceConfig config;
  config.confidence.sample_rounds = 64;
  config.confidence.tip_selection.alpha = 1.0;  // favor the heavy branch
  const ReferenceResult result =
      choose_reference(f.tangle.view(), f.store, rng, config);
  EXPECT_NE(result.transactions[0], orphan);
  EXPECT_EQ(result.params[0], 6.0f);
}

TEST(Reference, TopNAveragesPayloads) {
  Fixture f;
  TxIndex tip = 0;
  for (int i = 1; i <= 4; ++i) {
    tip = f.add({tip}, {static_cast<float>(i), 0.0f},
                static_cast<std::uint64_t>(i));
  }
  Rng rng(4);
  ReferenceConfig config;
  config.num_reference_models = 2;
  const ReferenceResult result =
      choose_reference(f.tangle.view(), f.store, rng, config);
  ASSERT_EQ(result.transactions.size(), 2u);
  // Top two by confidence * rating are the two newest chain elements.
  EXPECT_EQ(result.params[0], (4.0f + 3.0f) / 2.0f);
}

TEST(Reference, TopNClampedToViewSize) {
  Fixture f;
  f.add({0}, {1.0f, 0.0f}, 1);
  Rng rng(5);
  ReferenceConfig config;
  config.num_reference_models = 50;
  const ReferenceResult result =
      choose_reference(f.tangle.view(), f.store, rng, config);
  EXPECT_EQ(result.transactions.size(), 2u);  // genesis + one transaction
}

TEST(Reference, DeterministicInRng) {
  Fixture f;
  for (int i = 0; i < 6; ++i) {
    f.add({0}, {static_cast<float>(i), 0.0f}, 1);
  }
  Rng rng_a(6), rng_b(6);
  const ReferenceResult a = choose_reference(f.tangle.view(), f.store, rng_a, {});
  const ReferenceResult b = choose_reference(f.tangle.view(), f.store, rng_b, {});
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.params, b.params);
}

TEST(Reference, TopPriorityIndicesMatchesPriorityQueuePopOrder) {
  // Regression for the priority_queue -> nth_element rewrite: the top-k
  // selection must reproduce the old pop sequence bit-exactly, including
  // the ties-go-to-the-newest-index rule. Quantized priorities force many
  // exact ties.
  Rng rng(99);
  const std::size_t counts[] = {0, 1, 7, 64, 257};
  for (const std::size_t count : counts) {
    std::vector<double> priorities(count);
    for (double& priority : priorities) {
      priority = static_cast<double>(rng.uniform_index(8)) / 8.0;
    }
    const std::size_t takes[] = {0, 1, 3, count / 2, count, count + 5};
    for (const std::size_t take : takes) {
      // The old implementation, verbatim: push everything, pop `take`.
      std::priority_queue<std::pair<double, TxIndex>> queue;
      for (TxIndex i = 0; i < priorities.size(); ++i) {
        queue.emplace(priorities[i], i);
      }
      std::vector<TxIndex> expected;
      while (!queue.empty() && expected.size() < take) {
        expected.push_back(queue.top().second);
        queue.pop();
      }
      EXPECT_EQ(top_priority_indices(priorities, take), expected)
          << "count=" << count << " take=" << take;
    }
  }
}

TEST(Reference, RespectsViewPrefix) {
  Fixture f;
  const TxIndex a = f.add({0}, {1.0f, 0.0f}, 1);
  f.add({a}, {2.0f, 0.0f}, 2);
  Rng rng(7);
  const ReferenceResult result = choose_reference(
      f.tangle.view_prefix(2), f.store, rng, {});
  EXPECT_LE(result.transactions[0], 1u);
  EXPECT_NE(result.params[0], 2.0f);
}

}  // namespace
}  // namespace tanglefl::core
