// Property-based sweeps (parameterized gtest): structural invariants that
// must hold for entire families of inputs — random tangles, random models,
// random parameter vectors — rather than single examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "nn/model_zoo.hpp"
#include "nn/params.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tip_selection.hpp"

namespace tanglefl {
namespace {

// ------------------------------------------------------- random tangles

struct TangleParams {
  std::uint64_t seed;
  std::size_t transactions;
  std::size_t max_parents;
  double alpha;
};

void PrintTo(const TangleParams& p, std::ostream* os) {
  *os << "seed=" << p.seed << " tx=" << p.transactions
      << " parents=" << p.max_parents << " alpha=" << p.alpha;
}

class TangleInvariants : public ::testing::TestWithParam<TangleParams> {
 protected:
  TangleInvariants() : tangle_(make_genesis(store_)) {
    const TangleParams& p = GetParam();
    Rng rng(p.seed);
    tangle::TipSelectionConfig config;
    config.alpha = p.alpha;
    for (std::size_t i = 1; i < p.transactions; ++i) {
      const tangle::TangleView view = tangle_.view();
      const std::size_t parents =
          1 + rng.uniform_index(p.max_parents);
      const auto tips = tangle::select_tips(view, parents, rng, config);
      const auto added = store_.add({static_cast<float>(i)});
      tangle_.add_transaction(tips, added.id, added.hash, 1 + i / 5);
    }
  }

  static tangle::Tangle make_genesis(tangle::ModelStore& store) {
    const auto added = store.add({0.0f});
    return tangle::Tangle(added.id, added.hash);
  }

  tangle::ModelStore store_;
  tangle::Tangle tangle_;
};

TEST_P(TangleInvariants, ParentsPrecedeChildren) {
  for (tangle::TxIndex i = 1; i < tangle_.size(); ++i) {
    for (const tangle::TxIndex p : tangle_.parent_indices(i)) {
      EXPECT_LT(p, i);
    }
  }
}

TEST_P(TangleInvariants, TipsHaveNoApprovers) {
  const tangle::TangleView view = tangle_.view();
  const auto tips = view.tips();
  EXPECT_FALSE(tips.empty());
  for (const tangle::TxIndex t : tips) {
    EXPECT_TRUE(view.approvers(t).empty());
  }
}

TEST_P(TangleInvariants, NonTipsHaveApprovers) {
  const tangle::TangleView view = tangle_.view();
  const auto tips = view.tips();
  for (tangle::TxIndex i = 0; i < view.size(); ++i) {
    const bool is_tip = std::find(tips.begin(), tips.end(), i) != tips.end();
    EXPECT_EQ(view.approvers(i).empty(), is_tip);
  }
}

TEST_P(TangleInvariants, ConeSizesCountTheSamePairs) {
  // Both cone computations count the ordered reachability pairs, so their
  // totals must agree.
  const tangle::TangleView view = tangle_.view();
  const auto past = view.past_cone_sizes();
  const auto future = view.future_cone_sizes();
  const auto sum = [](const std::vector<std::uint32_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(past), sum(future));
}

TEST_P(TangleInvariants, EveryTransactionApprovesGenesis) {
  const tangle::TangleView view = tangle_.view();
  const auto past = view.past_cone_sizes();
  for (tangle::TxIndex i = 1; i < view.size(); ++i) {
    EXPECT_TRUE(view.approves(i, tangle_.genesis()));
    EXPECT_GE(past[i], 1u);
  }
}

TEST_P(TangleInvariants, ApprovesAgreesWithFutureCones) {
  // future_cone[genesis] must equal the number of transactions approving
  // genesis, which is everyone else.
  const tangle::TangleView view = tangle_.view();
  const auto future = view.future_cone_sizes();
  EXPECT_EQ(future[tangle_.genesis()], view.size() - 1);
}

TEST_P(TangleInvariants, WalksTerminateAtTips) {
  const tangle::TangleView view = tangle_.view();
  const auto cones = view.future_cone_sizes();
  const auto tips = view.tips();
  Rng rng(GetParam().seed + 1);
  tangle::TipSelectionConfig config;
  config.alpha = GetParam().alpha;
  for (int i = 0; i < 32; ++i) {
    const tangle::TxIndex tip =
        tangle::random_walk_tip(view, cones, rng, config);
    EXPECT_TRUE(std::find(tips.begin(), tips.end(), tip) != tips.end());
  }
}

TEST_P(TangleInvariants, ConfidencesAreProbabilities) {
  Rng rng(GetParam().seed + 2);
  tangle::ConfidenceConfig config;
  config.sample_rounds = 16;
  const auto confidences =
      tangle::compute_confidences(tangle_.view(), rng, config);
  for (const double c : confidences) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_DOUBLE_EQ(confidences[tangle_.genesis()], 1.0);
}

TEST_P(TangleInvariants, SerializeRoundTripIdentical) {
  ByteWriter writer;
  tangle_.serialize(writer);
  ByteReader reader(writer.bytes());
  const tangle::Tangle back = tangle::Tangle::deserialize(reader);
  ASSERT_EQ(back.size(), tangle_.size());
  for (tangle::TxIndex i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.transaction(i).id, tangle_.transaction(i).id);
    EXPECT_EQ(back.parent_indices(i), tangle_.parent_indices(i));
  }
  EXPECT_EQ(back.view().tips(), tangle_.view().tips());
}

TEST_P(TangleInvariants, PrefixViewsAreMonotonic) {
  // Growing the view can only grow cone sizes.
  const std::size_t half = tangle_.size() / 2;
  if (half < 2) GTEST_SKIP();
  const auto small = tangle_.view_prefix(half).future_cone_sizes();
  const auto full = tangle_.view().future_cone_sizes();
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_LE(small[i], full[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTangles, TangleInvariants,
    ::testing::Values(TangleParams{1, 12, 2, 0.0},
                      TangleParams{2, 40, 2, 0.01},
                      TangleParams{3, 80, 2, 0.1},
                      TangleParams{4, 40, 3, 0.0},
                      TangleParams{5, 60, 3, 1.0},
                      TangleParams{6, 25, 1, 0.5},
                      TangleParams{7, 100, 2, 0.05}));

// ----------------------------------------------------- model round trips

struct ModelParams {
  std::string name;
  std::size_t variant;
  std::uint64_t seed;
};

void PrintTo(const ModelParams& p, std::ostream* os) {
  *os << p.name << "/" << p.variant << " seed=" << p.seed;
}

nn::Model build_model(const ModelParams& p) {
  if (p.name == "mlp") {
    return nn::make_mlp(3 + p.variant, 4 + 2 * p.variant, 2 + p.variant);
  }
  if (p.name == "cnn") {
    nn::ImageCnnConfig config;
    config.image_size = 8 + 4 * p.variant;
    config.num_classes = 3 + p.variant;
    config.conv1_channels = 2 + p.variant;
    config.conv2_channels = 4;
    config.hidden = 8;
    return nn::make_image_cnn(config);
  }
  nn::CharLstmConfig config;
  config.vocab_size = 8 + 4 * p.variant;
  config.seq_length = 4 + p.variant;
  config.embedding_dim = 4;
  config.hidden_dim = 8;
  config.lstm_layers = 1 + p.variant % 2;
  return nn::make_char_lstm(config);
}

nn::Tensor model_input(const ModelParams& p, Rng& rng) {
  if (p.name == "mlp") {
    nn::Tensor x({2, 3 + p.variant});
    for (auto& v : x.values()) v = static_cast<float>(rng.normal());
    return x;
  }
  if (p.name == "cnn") {
    nn::Tensor x({2, 1, 8 + 4 * p.variant, 8 + 4 * p.variant});
    for (auto& v : x.values()) v = static_cast<float>(rng.normal());
    return x;
  }
  nn::Tensor x({2, 4 + p.variant});
  for (auto& v : x.values()) {
    v = static_cast<float>(rng.uniform_index(8 + 4 * p.variant));
  }
  return x;
}

class ModelProperties : public ::testing::TestWithParam<ModelParams> {};

TEST_P(ModelProperties, ParameterRoundTrip) {
  nn::Model model = build_model(GetParam());
  Rng rng(GetParam().seed);
  model.init(rng);
  const auto params = model.get_parameters();
  EXPECT_EQ(params.size(), model.parameter_count());

  nn::Model other = build_model(GetParam());
  other.set_parameters(params);
  EXPECT_EQ(other.get_parameters(), params);
}

TEST_P(ModelProperties, CloneIsBehaviorallyIdentical) {
  nn::Model model = build_model(GetParam());
  Rng rng(GetParam().seed);
  model.init(rng);
  nn::Model copy = model.clone();

  Rng input_rng(GetParam().seed + 1);
  const nn::Tensor x = model_input(GetParam(), input_rng);
  EXPECT_TRUE(model.forward(x, false).equals(copy.forward(x, false)));
}

TEST_P(ModelProperties, SetParametersChangesForward) {
  nn::Model model = build_model(GetParam());
  Rng rng(GetParam().seed);
  model.init(rng);
  Rng input_rng(GetParam().seed + 1);
  const nn::Tensor x = model_input(GetParam(), input_rng);
  const nn::Tensor before = model.forward(x, false);

  std::vector<float> zeros(model.parameter_count(), 0.0f);
  model.set_parameters(zeros);
  const nn::Tensor after = model.forward(x, false);
  EXPECT_FALSE(before.equals(after));
  // All-zero parameters produce all-zero logits for these stacks.
  for (const float v : after.values()) EXPECT_EQ(v, 0.0f);
}

TEST_P(ModelProperties, GradientsSizedLikeParameters) {
  nn::Model model = build_model(GetParam());
  Rng rng(GetParam().seed);
  model.init(rng);
  EXPECT_EQ(model.get_gradients().size(), model.parameter_count());
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ModelProperties,
    ::testing::Values(ModelParams{"mlp", 0, 1}, ModelParams{"mlp", 2, 2},
                      ModelParams{"cnn", 0, 3}, ModelParams{"cnn", 1, 4},
                      ModelParams{"lstm", 0, 5}, ModelParams{"lstm", 1, 6}));

// ------------------------------------------------- parameter averaging

class AveragingProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AveragingProperties, MeanWithinBounds) {
  const std::size_t count = GetParam();
  Rng rng(count);
  std::vector<nn::ParamVector> params(count);
  for (auto& p : params) {
    p.resize(32);
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const nn::ParamVector avg = nn::average_params(params);
  for (std::size_t i = 0; i < 32; ++i) {
    float lo = params[0][i], hi = params[0][i];
    for (const auto& p : params) {
      lo = std::min(lo, p[i]);
      hi = std::max(hi, p[i]);
    }
    EXPECT_GE(avg[i], lo - 1e-5f);
    EXPECT_LE(avg[i], hi + 1e-5f);
  }
}

TEST_P(AveragingProperties, IdenticalInputsAreFixedPoint) {
  const std::size_t count = GetParam();
  Rng rng(count + 100);
  nn::ParamVector base(16);
  for (auto& v : base) v = static_cast<float>(rng.normal());
  const std::vector<nn::ParamVector> params(count, base);
  const nn::ParamVector avg = nn::average_params(params);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(avg[i], base[i], 1e-5f);
  }
}

TEST_P(AveragingProperties, OrderInvariant) {
  const std::size_t count = GetParam();
  Rng rng(count + 200);
  std::vector<nn::ParamVector> params(count);
  for (auto& p : params) {
    p.resize(8);
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const nn::ParamVector forward = nn::average_params(params);
  std::reverse(params.begin(), params.end());
  const nn::ParamVector backward = nn::average_params(params);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(forward[i], backward[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, AveragingProperties,
                         ::testing::Values(1, 2, 3, 5, 10, 32));

// ----------------------------------------------- serialization fuzzing

class SerializeProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperties, RandomParamsRoundTrip) {
  Rng rng(GetParam());
  nn::ParamVector params(rng.uniform_index(200));
  for (auto& v : params) v = static_cast<float>(rng.normal(0.0, 100.0));
  ByteWriter writer;
  nn::serialize_params(params, writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(nn::deserialize_params(reader), params);
}

TEST_P(SerializeProperties, TruncationAlwaysThrows) {
  Rng rng(GetParam() + 1000);
  nn::ParamVector params(8 + rng.uniform_index(64));
  for (auto& v : params) v = static_cast<float>(rng.normal());
  ByteWriter writer;
  nn::serialize_params(params, writer);
  auto bytes = writer.take();
  const std::size_t cut = 1 + rng.uniform_index(bytes.size() - 1);
  bytes.resize(bytes.size() - cut);
  ByteReader reader(bytes);
  EXPECT_THROW((void)nn::deserialize_params(reader), SerializeError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperties,
                         ::testing::Range<std::uint64_t>(0, 10));

// --------------------------------------------------------- rng sweeps

class DirichletProperties : public ::testing::TestWithParam<double> {};

TEST_P(DirichletProperties, SimplexMembership) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  for (const std::size_t k : {2u, 5u, 17u}) {
    const auto sample = rng.dirichlet(GetParam(), k);
    double total = 0.0;
    for (const double s : sample) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletProperties,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 5.0, 50.0));

}  // namespace
}  // namespace tanglefl
