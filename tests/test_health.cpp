#include "tangle/health.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/rng.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {
namespace {

/// Hand-built DAG with payloads ready to attach (test_tangle.cpp idiom).
struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value,
              std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round, {});
  }
};

HealthConfig no_confirmation(std::uint64_t orphan_age = 5) {
  HealthConfig config;
  config.orphan_age = orphan_age;
  config.track_confirmation = false;
  return config;
}

TEST(HealthTracker, GenesisOnlyIsHealthy) {
  Fixture f;
  HealthTracker tracker(no_confirmation());
  Rng rng(1);
  const HealthSample sample =
      tracker.sample(f.tangle.view(), nullptr, 100, rng);
  EXPECT_EQ(sample.tangle_size, 1u);
  EXPECT_EQ(sample.tip_count, 1u);  // genesis is the sole tip...
  EXPECT_EQ(sample.orphan_count, 0u);  // ...but never an orphan
  EXPECT_DOUBLE_EQ(sample.orphan_rate, 0.0);
  EXPECT_TRUE(sample.first_approval_delays.empty());
}

TEST(HealthTracker, DepthsTipsAndDiamond) {
  // genesis <- {a, b} <- c : c is the only tip; a, b sit one step below.
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  const TxIndex b = f.add({0, 0}, 2.0f, 1);
  f.add({a, b}, 3.0f, 2);
  HealthTracker tracker(no_confirmation());
  Rng rng(1);
  const HealthSample sample = tracker.sample(f.tangle.view(), nullptr, 2, rng);
  EXPECT_EQ(sample.tangle_size, 4u);
  EXPECT_EQ(sample.tip_count, 1u);
  EXPECT_EQ(sample.approval_depth_max, 2u);  // genesis: two hops below c
  EXPECT_DOUBLE_EQ(sample.approval_depth_mean, (0.0 + 1.0 + 1.0 + 2.0) / 4.0);
  EXPECT_DOUBLE_EQ(sample.approval_depth_p50, 1.0);
}

TEST(HealthTracker, OrphanAgingAgainstNow) {
  // a (round 1) stays an unapproved tip; c (round 3) approves only b.
  Fixture f;
  f.add({0, 0}, 1.0f, 1);                      // a: the future orphan
  const TxIndex b = f.add({0, 0}, 2.0f, 1);
  f.add({b, b}, 3.0f, 3);                      // c
  HealthTracker tracker(no_confirmation(/*orphan_age=*/2));
  Rng rng(1);
  // At now=2, a is only 1 old: not yet an orphan.
  HealthSample sample = tracker.sample(f.tangle.view(), nullptr, 2, rng);
  EXPECT_EQ(sample.orphan_count, 0u);
  // At now=3, a's age reaches the threshold; c (age 0) stays healthy.
  sample = tracker.sample(f.tangle.view(), nullptr, 3, rng);
  EXPECT_EQ(sample.tip_count, 2u);
  EXPECT_EQ(sample.orphan_count, 1u);
  EXPECT_DOUBLE_EQ(sample.orphan_rate, 1.0 / 3.0);  // 3 non-genesis txs
}

TEST(HealthTracker, MaxOrphanAgeNeverFlagsOrphans) {
  // Regression: the aging test used to compute round + orphan_age, which
  // wrapped for orphan_age = UINT64_MAX and flagged every fresh tip as an
  // orphan. The subtraction form must classify nothing, ever.
  Fixture f;
  f.add({0, 0}, 1.0f, 1);  // an unapproved tip from round 1
  HealthTracker tracker(
      no_confirmation(std::numeric_limits<std::uint64_t>::max()));
  Rng rng(1);
  const HealthSample sample =
      tracker.sample(f.tangle.view(), nullptr, /*now=*/1'000'000, rng);
  EXPECT_EQ(sample.orphan_count, 0u);
  EXPECT_DOUBLE_EQ(sample.orphan_rate, 0.0);
}

TEST(HealthTracker, FirstApprovalRecordedExactlyOnce) {
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  const TxIndex b = f.add({0, 0}, 2.0f, 1);
  HealthTracker tracker(no_confirmation());
  Rng rng(1);
  // Round 1: a and b are unapproved; nothing to record.
  HealthSample sample = tracker.sample(f.tangle.view(), nullptr, 1, rng);
  EXPECT_TRUE(sample.first_approval_delays.empty());

  f.add({a, b}, 3.0f, 3);  // c approves both at round 3
  sample = tracker.sample(f.tangle.view(), nullptr, 3, rng);
  ASSERT_EQ(sample.first_approval_delays.size(), 2u);
  EXPECT_EQ(sample.first_approval_delays[0], 2u);  // 3 - 1, for a
  EXPECT_EQ(sample.first_approval_delays[1], 2u);  // 3 - 1, for b

  // Re-sampling must not re-report the same events.
  sample = tracker.sample(f.tangle.view(), nullptr, 4, rng);
  EXPECT_TRUE(sample.first_approval_delays.empty());
}

TEST(HealthTracker, ConfirmationOnChain) {
  // genesis <- a <- b: every walk crosses a, so a confirms immediately.
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  f.add({a, a}, 2.0f, 2);
  HealthConfig config;
  config.confirmation_threshold = 0.5;
  config.confidence.sample_rounds = 8;
  HealthTracker tracker(config);
  Rng rng(1);
  HealthSample sample = tracker.sample(f.tangle.view(), nullptr, 3, rng);
  EXPECT_GE(sample.confirmed_count, 1u);
  ASSERT_FALSE(sample.confirmation_delays.empty());
  // a published at round 1, confirmed when first observed at now=3.
  EXPECT_EQ(sample.confirmation_delays.front(), 2u);

  // Confirmation is cumulative and recorded once.
  const std::size_t confirmed = sample.confirmed_count;
  sample = tracker.sample(f.tangle.view(), nullptr, 4, rng);
  EXPECT_GE(sample.confirmed_count, confirmed);
  EXPECT_TRUE(sample.confirmation_delays.empty());
}

TEST(HealthTracker, PartialViewRestrictsStats) {
  // The membership mask hides c; a and b become tips again in that view.
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  const TxIndex b = f.add({0, 0}, 2.0f, 1);
  f.add({a, b}, 3.0f, 2);
  std::vector<bool> members = {true, true, true, false};
  const TangleView view(f.tangle, members);
  HealthTracker tracker(no_confirmation());
  Rng rng(1);
  const HealthSample sample = tracker.sample(view, nullptr, 2, rng);
  EXPECT_EQ(sample.tangle_size, 3u);
  EXPECT_EQ(sample.tip_count, 2u);
  EXPECT_EQ(sample.approval_depth_max, 1u);  // genesis is one hop below a/b
}

TEST(HealthTracker, DeterministicAcrossTrackers) {
  Fixture f;
  const TxIndex a = f.add({0, 0}, 1.0f, 1);
  const TxIndex b = f.add({a, a}, 2.0f, 2);
  f.add({a, b}, 3.0f, 3);
  HealthConfig config;
  config.confidence.sample_rounds = 4;
  HealthTracker t1(config);
  HealthTracker t2(config);
  Rng r1(9);
  Rng r2(9);
  const HealthSample s1 = t1.sample(f.tangle.view(), nullptr, 4, r1);
  const HealthSample s2 = t2.sample(f.tangle.view(), nullptr, 4, r2);
  EXPECT_EQ(s1.tip_count, s2.tip_count);
  EXPECT_EQ(s1.confirmed_count, s2.confirmed_count);
  EXPECT_EQ(s1.first_approval_delays, s2.first_approval_delays);
  EXPECT_EQ(s1.confirmation_delays, s2.confirmation_delays);
  EXPECT_DOUBLE_EQ(s1.approval_depth_mean, s2.approval_depth_mean);
}

}  // namespace
}  // namespace tanglefl::tangle
