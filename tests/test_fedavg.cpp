#include "fedavg/fedavg.hpp"

#include <gtest/gtest.h>

#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::fedavg {
namespace {

data::FederatedDataset small_dataset(std::uint64_t seed = 3) {
  data::FemnistSynthConfig config;
  config.num_users = 10;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 20.0;
  config.seed = seed;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

FedAvgConfig fast_config(std::size_t rounds = 6) {
  FedAvgConfig config;
  config.rounds = rounds;
  config.clients_per_round = 4;
  config.eval_every = 2;
  config.eval_nodes_fraction = 0.5;
  config.training.epochs = 1;
  config.training.sgd.learning_rate = 0.05;
  config.seed = 1;
  return config;
}

TEST(FedAvg, GlobalParamsSizedToModel) {
  const auto dataset = small_dataset();
  FedAvgServer server(dataset, small_factory(), fast_config());
  EXPECT_EQ(server.global_params().size(),
            small_factory()().parameter_count());
}

TEST(FedAvg, RoundChangesGlobalModel) {
  const auto dataset = small_dataset();
  FedAvgServer server(dataset, small_factory(), fast_config());
  const nn::ParamVector before = server.global_params();
  const std::size_t contributors = server.run_round(1);
  EXPECT_GT(contributors, 0u);
  EXPECT_NE(server.global_params(), before);
}

TEST(FedAvg, DeterministicAcrossRuns) {
  const auto dataset = small_dataset();
  FedAvgServer a(dataset, small_factory(), fast_config());
  FedAvgServer b(dataset, small_factory(), fast_config());
  (void)a.run();
  (void)b.run();
  EXPECT_EQ(a.global_params(), b.global_params());
}

TEST(FedAvg, DeterministicAcrossThreadCounts) {
  const auto dataset = small_dataset();
  FedAvgConfig one = fast_config();
  one.threads = 1;
  FedAvgConfig four = fast_config();
  four.threads = 4;
  FedAvgServer a(dataset, small_factory(), one);
  FedAvgServer b(dataset, small_factory(), four);
  (void)a.run();
  (void)b.run();
  // Weighted averaging order is fixed by slot order, so results match
  // exactly regardless of scheduling.
  EXPECT_EQ(a.global_params(), b.global_params());
}

TEST(FedAvg, HistoryAtCadence) {
  const auto dataset = small_dataset();
  const core::RunResult result =
      run_fedavg(dataset, small_factory(), fast_config(6));
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.label, "fedavg");
}

TEST(FedAvg, AccuracyImprovesOverTraining) {
  const auto dataset = small_dataset();
  // A slightly larger CNN than the smoke-test factory: the 2/4/8 model is
  // too weak to fit this task.
  nn::ImageCnnConfig model_config;
  model_config.image_size = 8;
  model_config.num_classes = 3;
  model_config.conv1_channels = 4;
  model_config.conv2_channels = 8;
  model_config.hidden = 16;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };
  FedAvgConfig config = fast_config(20);
  config.training.epochs = 2;
  config.training.sgd.learning_rate = 0.1;
  const core::RunResult result = run_fedavg(dataset, factory, config);
  // 3-class problem: random is ~0.33; trained must be clearly better.
  EXPECT_GT(result.final_accuracy(), 0.5);
}

TEST(FedAvg, EvaluateRecordFields) {
  const auto dataset = small_dataset();
  FedAvgServer server(dataset, small_factory(), fast_config());
  server.run_round(1);
  const core::RoundRecord record = server.evaluate(1);
  EXPECT_EQ(record.round, 1u);
  EXPECT_GT(record.loss, 0.0);
  EXPECT_EQ(record.tangle_size, 0u);  // not a tangle run
}

}  // namespace
}  // namespace tanglefl::fedavg
