// Tests for the shared evaluation engine (core/eval_engine): content-keyed
// split identity, bit-exact cached evaluation, model pooling under
// concurrent probes, and end-to-end byte-identity of all three simulation
// engines with the loss cache on versus off.
#include "core/eval_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/async_simulation.hpp"
#include "core/gossip_simulation.hpp"
#include "core/node.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "support/thread_pool.hpp"
#include "tangle/model_store.hpp"

namespace tanglefl::core {
namespace {

using tangle::ModelStore;
using tangle::Tangle;
using tangle::TxIndex;

data::DataSplit make_split(std::size_t n, std::uint64_t seed,
                           std::int32_t classes = 2) {
  Rng rng(seed);
  data::DataSplit split;
  split.features = nn::Tensor({n, 2});
  split.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    split.features.at(i, 0) = static_cast<float>(rng.normal());
    split.features.at(i, 1) = static_cast<float>(rng.normal());
    split.labels[i] =
        static_cast<std::int32_t>(rng.uniform_index(
            static_cast<std::uint64_t>(classes)));
  }
  return split;
}

nn::ModelFactory mlp_factory() {
  return [] { return nn::make_mlp(2, 6, 2); };
}

nn::ParamVector random_params(const nn::ModelFactory& factory,
                              std::uint64_t seed) {
  nn::Model model = factory();
  Rng rng(seed);
  model.init(rng);
  return model.get_parameters();
}

TEST(EvalEngine, SplitKeyIsContentIdentity) {
  EvalEngine engine(mlp_factory());
  const data::DataSplit split = make_split(30, 5);
  data::DataSplit copy = split;  // distinct object, identical contents

  const auto a = engine.prepare(split);
  const auto b = engine.prepare(copy);
  EXPECT_EQ(a.get(), b.get());  // reused by content, not by address
  EXPECT_EQ(a->key(), b->key());
  EXPECT_EQ(engine.cached_splits(), 1u);

  copy.features.at(0, 0) += 1.0f;
  const auto c = engine.prepare(copy);
  EXPECT_NE(a.get(), c.get());
  EXPECT_FALSE(a->key() == c->key());

  data::DataSplit relabeled = split;
  relabeled.labels[0] = 1 - relabeled.labels[0];
  const auto d = engine.prepare(relabeled);
  EXPECT_NE(a.get(), d.get());
  EXPECT_FALSE(a->key() == d->key());
  EXPECT_EQ(engine.cached_splits(), 3u);
}

TEST(EvalEngine, EvaluateMatchesDataEvaluateBitwise) {
  // 150 samples -> batches of 64, 64, 22: exercises the partial tail batch
  // and the per-batch mean-times-count accumulation order.
  EvalEngine engine(mlp_factory());
  const data::DataSplit split = make_split(150, 11);
  const auto prepared = engine.prepare(split);
  ASSERT_EQ(prepared->samples(), 150u);
  ASSERT_EQ(prepared->batch_count(), 3u);

  nn::Model model = mlp_factory()();
  Rng rng(21);
  model.init(rng);

  const data::EvalResult direct = data::evaluate(model, split);
  const data::EvalResult pooled = engine.evaluate(model, *prepared);
  EXPECT_EQ(direct.loss, pooled.loss);  // bitwise, not approximate
  EXPECT_EQ(direct.accuracy, pooled.accuracy);
}

TEST(EvalEngine, PayloadEvalCachesAcrossProbesAndDedupedPayloads) {
  EvalEngine engine(mlp_factory());
  ModelStore store;
  const nn::ParamVector params = random_params(mlp_factory(), 7);
  const auto first = store.add(params);
  const auto duplicate = store.add(params);  // content-deduplicated
  ASSERT_EQ(first.id, duplicate.id);

  const data::DataSplit split = make_split(40, 13);
  const auto prepared = engine.prepare(split);

  const EvalOutcome miss = engine.payload_eval(store, first.id, *prepared);
  EXPECT_FALSE(miss.cache_hit);
  const EvalOutcome hit = engine.payload_eval(store, duplicate.id, *prepared);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(miss.result.loss, hit.result.loss);
  EXPECT_EQ(miss.result.accuracy, hit.result.accuracy);
  EXPECT_EQ(engine.cached_results(), 1u);

  // Same payload on a different split is a distinct cache entry.
  const auto other = engine.prepare(make_split(40, 14));
  EXPECT_FALSE(engine.payload_eval(store, first.id, *other).cache_hit);
  EXPECT_EQ(engine.cached_results(), 2u);
}

TEST(EvalEngine, ParamsEvalKeyedByOrderedPayloadList) {
  EvalEngine engine(mlp_factory());
  ModelStore store;
  const auto a = store.add(random_params(mlp_factory(), 31));
  const auto b = store.add(random_params(mlp_factory(), 32));
  const std::vector<const nn::ParamVector*> pointers = {&store.get(a.id),
                                                        &store.get(b.id)};
  const nn::ParamVector averaged = nn::average_params(pointers);

  const data::DataSplit split = make_split(50, 15);
  const auto prepared = engine.prepare(split);

  const ParamsKey key{{a.id, b.id}};
  const EvalOutcome miss = engine.params_eval(key, averaged, *prepared);
  EXPECT_FALSE(miss.cache_hit);
  const EvalOutcome hit = engine.params_eval(key, averaged, *prepared);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(miss.result.loss, hit.result.loss);

  // The reversed list is a different identity (average_params is order-
  // sensitive in float arithmetic only by convention; the key is exact).
  const EvalOutcome reversed =
      engine.params_eval(ParamsKey{{b.id, a.id}}, averaged, *prepared);
  EXPECT_FALSE(reversed.cache_hit);

  // The cached value equals the direct uncached computation bitwise.
  nn::Model model = mlp_factory()();
  model.set_parameters(averaged);
  const data::EvalResult direct = data::evaluate(model, split);
  EXPECT_EQ(hit.result.loss, direct.loss);
  EXPECT_EQ(hit.result.accuracy, direct.accuracy);
}

TEST(EvalEngine, CacheOffStillPoolsAndMatches) {
  EvalEngineConfig config;
  config.use_cache = false;
  EvalEngine engine(mlp_factory(), config);
  ModelStore store;
  const auto added = store.add(random_params(mlp_factory(), 41));
  const data::DataSplit split = make_split(40, 16);
  const auto prepared = engine.prepare(split);

  const EvalOutcome one = engine.payload_eval(store, added.id, *prepared);
  const EvalOutcome two = engine.payload_eval(store, added.id, *prepared);
  EXPECT_FALSE(one.cache_hit);
  EXPECT_FALSE(two.cache_hit);
  EXPECT_EQ(one.result.loss, two.result.loss);
  EXPECT_EQ(engine.cached_results(), 0u);
  EXPECT_EQ(engine.cached_splits(), 0u);
  // Sequential probes reuse a single pooled instance.
  EXPECT_EQ(engine.models_created(), 1u);
}

TEST(EvalEngine, BatchSizeContractEnforcedAtConstruction) {
  // The comment-only contract ("must stay equal to data::evaluate's
  // default") is now a hard constructor check: a divergent batch size would
  // silently give cached and direct evaluations different batch boundaries.
  EvalEngineConfig divergent;
  divergent.batch_size = data::kEvalBatchSize / 2;
  EXPECT_THROW(EvalEngine(mlp_factory(), divergent), std::invalid_argument);
  divergent.batch_size = 0;
  EXPECT_THROW(EvalEngine(mlp_factory(), divergent), std::invalid_argument);

  EvalEngineConfig pinned;
  pinned.batch_size = data::kEvalBatchSize;
  EXPECT_NO_THROW(EvalEngine(mlp_factory(), pinned));
}

TEST(EvalEngine, ParamsKeyCachesPayloadHash) {
  const ParamsKey a{{1, 2, 3}};
  const ParamsKey b{{1, 2, 3}};
  const ParamsKey c{{3, 2, 1}};
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());  // order-sensitive, like the identity
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(ParamsKey::single(7).payloads(), (std::vector<tangle::PayloadId>{7}));
}

// An image split matching small_factory()'s 8x8 single-channel input, so
// evaluate_many exercises the fused conv path (shared input packs).
data::DataSplit make_image_split(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::DataSplit split;
  split.features = nn::Tensor({n, 1, 8, 8});
  for (auto& v : split.features.values()) {
    v = static_cast<float>(rng.normal());
  }
  split.labels.resize(n);
  for (auto& l : split.labels) {
    l = static_cast<std::int32_t>(rng.uniform_index(3));
  }
  return split;
}

nn::ModelFactory conv_factory() {
  return [] {
    nn::ImageCnnConfig config;
    config.image_size = 8;
    config.num_classes = 3;
    config.conv1_channels = 2;
    config.conv2_channels = 4;
    config.hidden = 8;
    return nn::make_image_cnn(config);
  };
}

TEST(EvalEngine, EvaluateManyMatchesPerModelEvaluateBitExactly) {
  // CNN stack: the group runs the fused pass (shared conv input packs,
  // grid on a kernel pool). 150 samples -> batches of 64/64/22, so the
  // per-model reduction crosses a partial tail batch.
  const nn::ModelFactory factory = conv_factory();
  EvalEngine engine(factory);
  const data::DataSplit split = make_image_split(150, 71);
  const auto prepared = engine.prepare(split);

  ModelStore store;
  std::vector<tangle::PayloadId> ids;
  for (std::size_t i = 0; i < 5; ++i) {
    ids.push_back(store.add(random_params(factory, 300 + i)).id);
  }

  std::vector<data::EvalResult> expected;
  for (const tangle::PayloadId id : ids) {
    nn::Model model = factory();
    model.set_parameters(store.get(id));
    expected.push_back(data::evaluate(model, split));
  }

  ThreadPool pool(3);
  const std::vector<EvalOutcome> outcomes =
      engine.payloads_eval_many(store, ids, *prepared, &pool);
  ASSERT_EQ(outcomes.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FALSE(outcomes[i].cache_hit);
    EXPECT_EQ(outcomes[i].result.loss, expected[i].loss);  // bitwise
    EXPECT_EQ(outcomes[i].result.accuracy, expected[i].accuracy);
    EXPECT_EQ(outcomes[i].result.samples, expected[i].samples);
  }

  // A repeat group resolves entirely from the cache.
  const std::vector<EvalOutcome> again =
      engine.payloads_eval_many(store, ids, *prepared, &pool);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(again[i].cache_hit);
    EXPECT_EQ(again[i].result.loss, expected[i].loss);
  }
}

TEST(EvalEngine, EvaluateManyNonConvStackMatchesBitExactly) {
  // MLP stack: no conv to fuse, so the group takes the per-model grid
  // fallback — results must still match the standalone path bitwise.
  EvalEngine engine(mlp_factory());
  const data::DataSplit split = make_split(150, 72);
  const auto prepared = engine.prepare(split);
  ModelStore store;
  std::vector<tangle::PayloadId> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    ids.push_back(store.add(random_params(mlp_factory(), 400 + i)).id);
  }
  const std::vector<EvalOutcome> outcomes =
      engine.payloads_eval_many(store, ids, *prepared, nullptr);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    nn::Model model = mlp_factory()();
    model.set_parameters(store.get(ids[i]));
    const data::EvalResult direct = data::evaluate(model, split);
    EXPECT_FALSE(outcomes[i].cache_hit);
    EXPECT_EQ(outcomes[i].result.loss, direct.loss);
    EXPECT_EQ(outcomes[i].result.accuracy, direct.accuracy);
  }
}

TEST(EvalEngine, EvaluateManyCacheInterleavings) {
  const nn::ModelFactory factory = conv_factory();
  EvalEngine engine(factory);
  const data::DataSplit split = make_image_split(90, 73);
  const auto prepared = engine.prepare(split);
  ModelStore store;
  const auto warm = store.add(random_params(factory, 500));
  const auto cold = store.add(random_params(factory, 501));
  const nn::ParamVector fresh = random_params(factory, 502);

  engine.payload_eval(store, warm.id, *prepared);  // pre-warm one key
  ASSERT_EQ(engine.cached_results(), 1u);

  // Group mixing: a cached key, a missing key, an in-group duplicate of
  // that missing key, and a keyless request.
  const std::vector<EvalRequest> requests{
      EvalRequest{store.get(warm.id), ParamsKey::single(warm.id)},
      EvalRequest{store.get(cold.id), ParamsKey::single(cold.id)},
      EvalRequest{store.get(cold.id), ParamsKey::single(cold.id)},
      EvalRequest{fresh, std::nullopt},
  };
  const std::vector<EvalOutcome> outcomes =
      engine.evaluate_many(requests, *prepared, nullptr);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].cache_hit);
  EXPECT_FALSE(outcomes[1].cache_hit);  // first occurrence pays the eval
  EXPECT_TRUE(outcomes[2].cache_hit);   // duplicate resolves against it
  EXPECT_FALSE(outcomes[3].cache_hit);  // keyless: always evaluated
  EXPECT_EQ(outcomes[1].result.loss, outcomes[2].result.loss);

  // Bit-exact against the standalone path for every distinct probe.
  for (const auto& [params, expected_index] :
       std::vector<std::pair<std::span<const float>, std::size_t>>{
           {store.get(warm.id), 0}, {store.get(cold.id), 1}, {fresh, 3}}) {
    nn::Model model = factory();
    model.set_parameters(params);
    const data::EvalResult direct = data::evaluate(model, split);
    EXPECT_EQ(outcomes[expected_index].result.loss, direct.loss);
    EXPECT_EQ(outcomes[expected_index].result.accuracy, direct.accuracy);
  }

  // The keyless result was not cached; the duplicate added one entry.
  EXPECT_EQ(engine.cached_results(), 2u);
}

TEST(EvalEngine, EvaluateManyBatchedOffReplaysSerialPath) {
  const nn::ModelFactory factory = conv_factory();
  EvalEngineConfig off_config;
  off_config.use_batched = false;
  EvalEngine batched(factory);
  EvalEngine serial(factory, off_config);
  const data::DataSplit split = make_image_split(90, 74);
  const auto prepared_batched = batched.prepare(split);
  const auto prepared_serial = serial.prepare(split);

  ModelStore store;
  std::vector<tangle::PayloadId> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    ids.push_back(store.add(random_params(factory, 600 + i)).id);
  }
  ThreadPool pool(2);
  const auto a = batched.payloads_eval_many(store, ids, *prepared_batched,
                                            &pool);
  const auto b = serial.payloads_eval_many(store, ids, *prepared_serial,
                                           nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit);
    EXPECT_EQ(a[i].result.loss, b[i].result.loss);  // bitwise
    EXPECT_EQ(a[i].result.accuracy, b[i].result.accuracy);
  }
}

// A forwarding backend that counts how many evaluations it served — enough
// to prove the engine routes every miss through the configured backend.
class CountingBackend final : public EvalBackend {
 public:
  explicit CountingBackend(EvalEngine& engine, std::size_t& calls)
      : engine_(engine), calls_(calls) {}

  data::EvalResult eval(std::span<const float> params,
                        const BatchedSplit& batched, ThreadPool* pool) override {
    (void)pool;
    ++calls_;
    EvalEngine::ModelLease lease = engine_.acquire();
    lease.model().set_parameters(params);
    return engine_.evaluate(lease.model(), batched);
  }

 private:
  EvalEngine& engine_;
  std::size_t& calls_;
};

TEST(EvalEngine, BackendSelectableViaConfig) {
  std::size_t calls = 0;
  EvalEngineConfig config;
  config.backend_factory =
      [&calls](EvalEngine& engine) -> std::unique_ptr<EvalBackend> {
    return std::make_unique<CountingBackend>(engine, calls);
  };
  EvalEngine engine(mlp_factory(), config);
  ModelStore store;
  const auto added = store.add(random_params(mlp_factory(), 700));
  const data::DataSplit split = make_split(40, 75);
  const auto prepared = engine.prepare(split);

  const EvalOutcome miss = engine.payload_eval(store, added.id, *prepared);
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(miss.cache_hit);
  // Base-class eval_many loops eval(): three misses = three backend calls.
  std::vector<tangle::PayloadId> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    ids.push_back(store.add(random_params(mlp_factory(), 710 + i)).id);
  }
  engine.payloads_eval_many(store, ids, *prepared, nullptr);
  EXPECT_EQ(calls, 4u);
  // A hit skips the backend entirely.
  engine.payload_eval(store, added.id, *prepared);
  EXPECT_EQ(calls, 4u);
  // Results still match the direct computation bitwise.
  nn::Model model = mlp_factory()();
  model.set_parameters(store.get(added.id));
  EXPECT_EQ(miss.result.loss, data::evaluate(model, split).loss);
}

TEST(EvalEngine, PoolReusesInstancesUnderParallelFor) {
  // With the cache off every probe runs a forward pass and needs a model.
  // parallel_for runs at most (workers + caller) lanes, so the pool must
  // not create more instances than that — and far fewer than probes.
  EvalEngineConfig config;
  config.use_cache = false;
  EvalEngine engine(mlp_factory(), config);
  ModelStore store;
  constexpr std::size_t kPayloads = 8;
  std::vector<tangle::PayloadId> ids;
  for (std::size_t i = 0; i < kPayloads; ++i) {
    ids.push_back(store.add(random_params(mlp_factory(), 100 + i)).id);
  }
  const data::DataSplit split = make_split(60, 17);
  const auto prepared = engine.prepare(split);

  std::vector<double> expected(kPayloads);
  for (std::size_t i = 0; i < kPayloads; ++i) {
    nn::Model model = mlp_factory()();
    model.set_parameters(store.get(ids[i]));
    expected[i] = data::evaluate(model, split).loss;
  }

  constexpr std::size_t kProbes = 64;
  std::vector<double> losses(kProbes, 0.0);
  ThreadPool pool(3);
  pool.parallel_for(kProbes, [&](std::size_t i) {
    losses[i] =
        engine.payload_eval(store, ids[i % kPayloads], *prepared).result.loss;
  });
  for (std::size_t i = 0; i < kProbes; ++i) {
    EXPECT_EQ(losses[i], expected[i % kPayloads]) << "probe " << i;
  }
  EXPECT_LE(engine.models_created(), 4u);  // 3 workers + the caller lane
  EXPECT_EQ(engine.pool_size(), engine.models_created());  // all returned
}

TEST(EvalEngine, SplitLruEvictsOverBudgetAndKeepsOutstandingEntries) {
  const data::DataSplit split_a = make_split(64, 101);
  const data::DataSplit split_b = make_split(64, 102);
  const data::DataSplit split_c = make_split(64, 103);

  // All three splits have the same shape, hence the same retained bytes;
  // a budget of exactly two of them makes the third insert evict the LRU.
  std::size_t bytes_per = 0;
  {
    EvalEngine probe(mlp_factory());
    bytes_per = probe.prepare(split_a)->bytes();
  }
  ASSERT_GT(bytes_per, 0u);
  EvalEngineConfig config;
  config.batched_budget_bytes = 2 * bytes_per;
  EvalEngine engine(mlp_factory(), config);

  const auto a = engine.prepare(split_a);
  const auto b = engine.prepare(split_b);
  EXPECT_EQ(engine.cached_splits(), 2u);
  EXPECT_EQ(engine.prepare(split_a).get(), a.get());  // refresh a's LRU tick
  const auto c = engine.prepare(split_c);             // over budget: b evicted
  EXPECT_EQ(engine.cached_splits(), 2u);

  // a was refreshed and survived; b was the LRU and is gone (a re-prepare
  // rebuilds a distinct instance — `b` is still alive, so the address
  // cannot be reused).
  EXPECT_EQ(engine.prepare(split_a).get(), a.get());
  EXPECT_NE(engine.prepare(split_b).get(), b.get());

  // Regression for the eviction restructure: an outstanding reference to
  // the evicted BatchedSplit stays fully usable (eviction only drops the
  // cache's reference; destruction is deferred past the lock), and
  // evaluating through it is still bit-exact.
  nn::Model model = mlp_factory()();
  Rng rng(33);
  model.init(rng);
  const data::EvalResult direct = data::evaluate(model, split_b);
  const data::EvalResult via_evicted = engine.evaluate(model, *b);
  EXPECT_EQ(direct.loss, via_evicted.loss);
  EXPECT_EQ(direct.accuracy, via_evicted.accuracy);
  (void)c;
}

// --- end-to-end byte-identity -------------------------------------------

data::FederatedDataset small_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 10;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = 3;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

void expect_identical_runs(const Tangle& tangle_a, const Tangle& tangle_b,
                           const RunResult& a, const RunResult& b) {
  ASSERT_EQ(tangle_a.size(), tangle_b.size());
  for (TxIndex i = 0; i < tangle_a.size(); ++i) {
    EXPECT_EQ(to_hex(tangle_a.transaction(i).id),
              to_hex(tangle_b.transaction(i).id));
  }
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const RoundRecord& ra = a.history[i];
    const RoundRecord& rb = b.history[i];
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.accuracy, rb.accuracy);  // bitwise
    EXPECT_EQ(ra.loss, rb.loss);
    EXPECT_EQ(ra.target_misclassification, rb.target_misclassification);
    EXPECT_EQ(ra.backdoor_success, rb.backdoor_success);
    EXPECT_EQ(ra.tangle_size, rb.tangle_size);
    EXPECT_EQ(ra.tip_count, rb.tip_count);
    EXPECT_EQ(ra.publish_rate, rb.publish_rate);
    EXPECT_EQ(ra.published_cumulative, rb.published_cumulative);
    EXPECT_EQ(ra.suppressed_cumulative, rb.suppressed_cumulative);
    EXPECT_EQ(ra.ledger_bytes, rb.ledger_bytes);
  }
}

TEST(EvalEngine, SimulationByteIdenticalCacheOnVsOff) {
  // Robust mode (tip_sample_size > num_tips) so every step runs the
  // Section III-E candidate probes through the engine.
  const auto dataset = small_dataset();
  SimulationConfig on;
  on.rounds = 4;
  on.nodes_per_round = 4;
  on.eval_every = 2;
  on.eval_nodes_fraction = 0.5;
  on.node.training.epochs = 1;
  on.node.training.sgd.learning_rate = 0.05;
  on.node.num_tips = 2;
  on.node.tip_sample_size = 4;
  on.seed = 1;
  SimulationConfig off = on;
  off.use_eval_cache = false;

  TangleSimulation a(dataset, small_factory(), on);
  TangleSimulation b(dataset, small_factory(), off);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
  // The cached run actually cached (the off run kept the map empty).
  EXPECT_GT(a.eval_engine().cached_results(), 0u);
  EXPECT_EQ(b.eval_engine().cached_results(), 0u);
}

TEST(EvalEngine, SimulationByteIdenticalEvalBatchOnVsOffAcrossKernelThreads) {
  // Batched candidate probes must not perturb a single bit of the run,
  // regardless of the kernel pool driving the fused grid. Every
  // (eval_batch, kernel_threads) combination is compared against the
  // batch-on single-threaded baseline.
  const auto dataset = small_dataset();
  SimulationConfig base;
  base.rounds = 4;
  base.nodes_per_round = 4;
  base.eval_every = 2;
  base.eval_nodes_fraction = 0.5;
  base.node.training.epochs = 1;
  base.node.training.sgd.learning_rate = 0.05;
  base.node.num_tips = 2;
  base.node.tip_sample_size = 4;
  base.seed = 1;

  std::vector<std::unique_ptr<TangleSimulation>> sims;
  std::vector<RunResult> results;
  for (const std::size_t kernel_threads : {1, 2, 4}) {
    for (const bool eval_batch : {true, false}) {
      SimulationConfig config = base;
      config.kernel_threads = kernel_threads;
      config.use_eval_batch = eval_batch;
      sims.push_back(std::make_unique<TangleSimulation>(
          dataset, small_factory(), config));
      results.push_back(sims.back()->run());
    }
  }
  for (std::size_t i = 1; i < sims.size(); ++i) {
    expect_identical_runs(sims[0]->tangle(), sims[i]->tangle(), results[0],
                          results[i]);
  }
}

TEST(EvalEngine, AsyncSimulationByteIdenticalEvalBatchOnVsOff) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig on;
  on.duration_seconds = 30.0;
  on.wake_rate_per_node = 0.3;
  on.mean_training_seconds = 0.5;
  on.network_delay_seconds = 0.5;
  on.eval_every_seconds = 10.0;
  on.eval_nodes_fraction = 0.5;
  on.node.training.epochs = 1;
  on.node.training.sgd.learning_rate = 0.05;
  on.node.num_tips = 2;
  on.node.tip_sample_size = 4;
  on.seed = 7;
  AsyncSimulationConfig off = on;
  off.use_eval_batch = false;

  AsyncTangleSimulation a(dataset, small_factory(), on);
  AsyncTangleSimulation b(dataset, small_factory(), off);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
}

TEST(EvalEngine, GossipSimulationByteIdenticalEvalBatchOnVsOff) {
  const auto dataset = small_dataset();
  GossipConfig on;
  on.rounds = 8;
  on.nodes_per_round = 4;
  on.peers_per_node = 3;
  on.gossip_exchanges = 2;
  on.eval_every = 4;
  on.eval_nodes_fraction = 0.5;
  on.node.training.epochs = 1;
  on.node.training.sgd.learning_rate = 0.05;
  on.node.num_tips = 2;
  on.node.tip_sample_size = 4;
  on.node.reference.confidence.sample_rounds = 6;
  on.seed = 7;
  GossipConfig off = on;
  off.use_eval_batch = false;

  GossipSimulation a(dataset, small_factory(), on);
  GossipSimulation b(dataset, small_factory(), off);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
}

TEST(EvalEngine, SimulationByteIdenticalAcrossThreadCounts) {
  // The engine's sharded cache must not perturb determinism when node
  // steps probe it concurrently.
  const auto dataset = small_dataset();
  SimulationConfig one;
  one.rounds = 4;
  one.nodes_per_round = 4;
  one.eval_every = 2;
  one.eval_nodes_fraction = 0.5;
  one.node.training.epochs = 1;
  one.node.training.sgd.learning_rate = 0.05;
  one.node.num_tips = 2;
  one.node.tip_sample_size = 4;
  one.seed = 1;
  one.threads = 1;
  SimulationConfig four = one;
  four.threads = 4;

  TangleSimulation a(dataset, small_factory(), one);
  TangleSimulation b(dataset, small_factory(), four);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
}

TEST(EvalEngine, AsyncSimulationByteIdenticalCacheOnVsOff) {
  const auto dataset = small_dataset();
  AsyncSimulationConfig on;
  on.duration_seconds = 30.0;
  on.wake_rate_per_node = 0.3;
  on.mean_training_seconds = 0.5;
  on.network_delay_seconds = 0.5;
  on.eval_every_seconds = 10.0;
  on.eval_nodes_fraction = 0.5;
  on.node.training.epochs = 1;
  on.node.training.sgd.learning_rate = 0.05;
  on.node.num_tips = 2;
  on.node.tip_sample_size = 4;
  on.seed = 7;
  AsyncSimulationConfig off = on;
  off.use_eval_cache = false;

  AsyncTangleSimulation a(dataset, small_factory(), on);
  AsyncTangleSimulation b(dataset, small_factory(), off);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
}

TEST(EvalEngine, GossipSimulationByteIdenticalCacheOnVsOff) {
  const auto dataset = small_dataset();
  GossipConfig on;
  on.rounds = 8;
  on.nodes_per_round = 4;
  on.peers_per_node = 3;
  on.gossip_exchanges = 2;
  on.eval_every = 4;
  on.eval_nodes_fraction = 0.5;
  on.node.training.epochs = 1;
  on.node.training.sgd.learning_rate = 0.05;
  on.node.num_tips = 2;
  on.node.tip_sample_size = 4;
  on.node.reference.confidence.sample_rounds = 6;
  on.seed = 7;
  GossipConfig off = on;
  off.use_eval_cache = false;

  GossipSimulation a(dataset, small_factory(), on);
  GossipSimulation b(dataset, small_factory(), off);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  expect_identical_runs(a.tangle(), b.tangle(), ra, rb);
}

TEST(EvalEngine, NodeStepBitIdenticalWithAndWithoutEngine) {
  // A node step routed through the engine (prepared batches, pooled
  // models, cached probes) must publish exactly what the legacy
  // factory-per-probe path publishes.
  nn::ModelFactory factory = mlp_factory();
  ModelStore store;
  nn::Model genesis_model = factory();
  Rng genesis_rng(55);
  genesis_model.init(genesis_rng);
  const auto genesis = store.add(genesis_model.get_parameters());
  Tangle tangle(genesis.id, genesis.hash);
  const std::vector<TxIndex> genesis_parent = {0};
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto added = store.add(random_params(factory, 200 + i));
    tangle.add_transaction(genesis_parent, added.id, added.hash, i + 1);
  }

  data::UserData user;
  user.user_id = "probe";
  user.train = make_split(40, 61);
  user.test = make_split(20, 62);

  NodeConfig config;
  config.training.epochs = 2;
  config.training.sgd.learning_rate = 0.2;
  config.num_tips = 2;
  config.tip_sample_size = 4;
  HonestNode node(config);

  const tangle::TangleView view = tangle.view();
  NodeContext legacy{view, store, factory, 5, Rng(9)};
  const auto without = node.step(legacy, user);

  EvalEngine engine(factory);
  NodeContext engined{view, store, factory, 5, Rng(9)};
  engined.eval = &engine;
  const auto with = node.step(engined, user);

  ASSERT_EQ(without.has_value(), with.has_value());
  if (without.has_value()) {
    EXPECT_EQ(without->parents, with->parents);
    EXPECT_EQ(without->params, with->params);  // bitwise ParamVector
  }
}

}  // namespace
}  // namespace tanglefl::core
