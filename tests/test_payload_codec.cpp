#include "tangle/payload_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "nn/privacy.hpp"
#include "support/rng.hpp"

namespace tanglefl::tangle {
namespace {

std::uint32_t bits_of(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

bool bit_equal(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (bits_of(a[i]) != bits_of(b[i])) return false;
  }
  return true;
}

/// A payload that looks like a trained update: base + small perturbations
/// on a fraction of coordinates, so delta/topk/entropy all have structure
/// to work with.
struct CodecFixture {
  nn::ParamVector base;
  nn::ParamVector params;

  explicit CodecFixture(std::size_t n = 2048, std::uint64_t seed = 7) {
    Rng rng(seed);
    base.resize(n);
    params.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = static_cast<float>(rng.normal()) * 0.3f;
      params[i] = base[i];
      if (rng.uniform() < 0.3) {
        params[i] += static_cast<float>(rng.normal()) * 0.01f;
      }
    }
  }
};

PayloadCodecConfig combo_config(unsigned combo) {
  PayloadCodecConfig config;
  config.delta = (combo & 1u) != 0;
  config.topk = (combo & 2u) != 0;
  config.topk_fraction = 0.05;
  config.quantize = (combo & 4u) != 0;
  config.entropy = (combo & 8u) != 0;
  return config;
}

// --------------------------------------------------------------- round trips

// For every stage combination, with and without a resolvable base:
// decode(encode(x)) must itself be a fixpoint of the codec — re-encoding
// the published payload and decoding again reproduces it bit-exactly.
// That is the ledger contract: the stored payload is exactly what any
// decoder reconstructs.
TEST(PayloadCodec, AllStageCombosRoundTripToPublishedPayload) {
  const CodecFixture f;
  const std::span<const float> no_base;
  for (unsigned combo = 0; combo < 16; ++combo) {
    const PayloadCodec codec(combo_config(combo));
    for (const bool with_base : {false, true}) {
      const std::span<const float> base =
          with_base ? std::span<const float>(f.base) : no_base;
      const EncodedPayload encoded = codec.encode(f.params, base);
      const nn::ParamVector published = codec.decode(encoded, base);
      ASSERT_EQ(published.size(), f.params.size())
          << "combo " << combo << " base " << with_base;
      const EncodedPayload re_encoded = codec.encode(published, base);
      const nn::ParamVector again = codec.decode(re_encoded, base);
      EXPECT_TRUE(bit_equal(published, again))
          << "combo " << combo << " base " << with_base
          << ": decode(encode(.)) is not idempotent";
    }
  }
}

TEST(PayloadCodec, LosslessCombosAreBitExact) {
  const CodecFixture f;
  const std::span<const float> no_base;
  for (unsigned combo = 0; combo < 16; ++combo) {
    const PayloadCodecConfig config = combo_config(combo);
    if (config.lossy()) continue;  // delta/entropy only
    const PayloadCodec codec(config);
    for (const bool with_base : {false, true}) {
      const std::span<const float> base =
          with_base ? std::span<const float>(f.base) : no_base;
      const nn::ParamVector decoded = codec.decode(codec.encode(f.params, base), base);
      EXPECT_TRUE(bit_equal(decoded, f.params))
          << "lossless combo " << combo << " base " << with_base;
    }
  }
}

TEST(PayloadCodec, LosslessPreservesSpecialValues) {
  // The dense lossless path works on raw float bit patterns; signed zeros,
  // denormals, infinities and NaN payloads must survive unchanged.
  nn::ParamVector params = {0.0f,
                            -0.0f,
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest(),
                            1.0f};
  nn::ParamVector base(params.size(), 0.5f);
  for (unsigned combo : {0u, 1u, 8u, 9u}) {  // off, delta, entropy, both
    const PayloadCodec codec(combo_config(combo));
    const nn::ParamVector decoded =
        codec.decode(codec.encode(params, base), base);
    EXPECT_TRUE(bit_equal(decoded, params)) << "combo " << combo;
  }
}

TEST(PayloadCodec, EmptyAndSingleParamPayloads) {
  const nn::ParamVector empty;
  const nn::ParamVector one = {0.25f};
  for (unsigned combo = 0; combo < 16; ++combo) {
    const PayloadCodec codec(combo_config(combo));
    const nn::ParamVector decoded_empty =
        codec.decode(codec.encode(empty, {}), {});
    EXPECT_TRUE(decoded_empty.empty()) << "combo " << combo;
    const nn::ParamVector decoded_one = codec.decode(codec.encode(one, {}), {});
    ASSERT_EQ(decoded_one.size(), 1u) << "combo " << combo;
  }
}

TEST(PayloadCodec, MismatchedBaseSizeThrows) {
  PayloadCodecConfig config;
  config.delta = true;
  const PayloadCodec codec(config);
  const nn::ParamVector params(8, 1.0f);
  const nn::ParamVector base(4, 0.0f);
  EXPECT_THROW((void)codec.encode(params, base), std::invalid_argument);
}

TEST(PayloadCodec, EncodeIsDeterministic) {
  const CodecFixture f;
  for (unsigned combo = 0; combo < 16; ++combo) {
    const PayloadCodec codec(combo_config(combo));
    const EncodedPayload a = codec.encode(f.params, f.base);
    const EncodedPayload b = codec.encode(f.params, f.base);
    EXPECT_EQ(a.bytes, b.bytes) << "combo " << combo;
  }
}

TEST(PayloadCodec, EntropyShrinksStructuredUpdates) {
  // A trained-update-shaped payload (most coordinates equal to the base)
  // must compress well below raw size under delta+entropy.
  const CodecFixture f(8192);
  PayloadCodecConfig config;
  config.delta = true;
  config.entropy = true;
  const PayloadCodec codec(config);
  const EncodedPayload encoded = codec.encode(f.params, f.base);
  EXPECT_LT(encoded.bytes.size(), encoded.raw_bytes() * 3 / 4);
  EXPECT_TRUE(bit_equal(codec.decode(encoded, f.base), f.params));
}

TEST(PayloadCodec, TopkKeepsRequestedFraction) {
  const CodecFixture f(1000);
  PayloadCodecConfig config;
  config.delta = true;
  config.topk = true;
  config.topk_fraction = 0.05;
  const PayloadCodec codec(config);
  const nn::ParamVector decoded =
      codec.decode(codec.encode(f.params, f.base), f.base);
  // At most 5% of coordinates moved off the base (the kept set), everything
  // else decodes to the base exactly.
  std::size_t moved = 0;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (bits_of(decoded[i]) != bits_of(f.base[i])) ++moved;
  }
  EXPECT_LE(moved, 50u);
  EXPECT_GT(moved, 0u);
}

// ---------------------------------------------------------------- spec parse

TEST(CodecSpec, OffAndDefaultPresets) {
  const PayloadCodecConfig off = parse_codec_spec("off");
  EXPECT_FALSE(off.enabled());
  const PayloadCodecConfig none = parse_codec_spec("");
  EXPECT_FALSE(none.enabled());
  const PayloadCodecConfig preset = parse_codec_spec("default");
  EXPECT_TRUE(preset.delta);
  EXPECT_TRUE(preset.entropy);
  EXPECT_TRUE(preset.chunk);
  EXPECT_FALSE(preset.topk);
  EXPECT_FALSE(preset.quantize);
  EXPECT_FALSE(preset.lossy());
}

TEST(CodecSpec, FullListParses) {
  const PayloadCodecConfig config =
      parse_codec_spec("delta,topk:0.25,quantize,entropy,chunk");
  EXPECT_TRUE(config.delta);
  EXPECT_TRUE(config.topk);
  EXPECT_DOUBLE_EQ(config.topk_fraction, 0.25);
  EXPECT_TRUE(config.quantize);
  EXPECT_TRUE(config.entropy);
  EXPECT_TRUE(config.chunk);
  EXPECT_TRUE(config.lossy());
}

TEST(CodecSpec, SpecStringRoundTrips) {
  for (const char* spec : {"off", "delta", "delta,entropy",
                           "delta,quantize,entropy", "chunk",
                           "delta,entropy,chunk"}) {
    const PayloadCodecConfig config = parse_codec_spec(spec);
    EXPECT_EQ(codec_spec_string(config), spec);
    const PayloadCodecConfig reparsed = parse_codec_spec(codec_spec_string(config));
    EXPECT_EQ(codec_spec_string(reparsed), spec);
  }
}

TEST(CodecSpec, BadSpecsThrow) {
  EXPECT_THROW((void)parse_codec_spec("gzip"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("delta,"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("topk=0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("topk:abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("topk:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("topk:1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_codec_spec("delta,,entropy"), std::invalid_argument);
}

// ---------------------------------------------------------- chunk boundaries

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  return bytes;
}

TEST(ChunkBoundaries, PartitionWithinBounds) {
  const std::vector<std::uint8_t> data = random_bytes(100000, 11);
  const ChunkParams params;  // 512..8192, mask 11
  const std::vector<std::size_t> ends = chunk_boundaries(data, params);
  ASSERT_FALSE(ends.empty());
  EXPECT_EQ(ends.back(), data.size());
  std::size_t begin = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    ASSERT_GT(ends[i], begin);
    const std::size_t size = ends[i] - begin;
    EXPECT_LE(size, params.max_bytes);
    if (i + 1 < ends.size()) {
      EXPECT_GE(size, params.min_bytes);
    }
    begin = ends[i];
  }
}

TEST(ChunkBoundaries, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(chunk_boundaries({}, ChunkParams{}).empty());
}

TEST(ChunkBoundaries, DeterministicAndPrefixStable) {
  const std::vector<std::uint8_t> data = random_bytes(50000, 13);
  const ChunkParams params;
  const std::vector<std::size_t> ends = chunk_boundaries(data, params);
  EXPECT_EQ(chunk_boundaries(data, params), ends);
  // Cuts are computed left to right with the hash reset at every cut, so
  // appending data never moves an earlier boundary: every full-data cut
  // strictly inside a prefix is also a cut of that prefix.
  const std::size_t prefix_size = data.size() / 2;
  const std::vector<std::size_t> prefix_ends = chunk_boundaries(
      std::span<const std::uint8_t>(data.data(), prefix_size), params);
  for (std::size_t i = 0; i < ends.size() && ends[i] < prefix_size; ++i) {
    ASSERT_LT(i, prefix_ends.size());
    EXPECT_EQ(prefix_ends[i], ends[i]);
  }
}

TEST(ChunkBoundaries, SharedContentProducesSharedChunks) {
  // Content-defined cutting: inserting bytes at the front leaves the cuts
  // in the unchanged tail at the same content positions (after the cutter
  // resynchronizes), which is what makes chunk-level dedup work.
  const std::vector<std::uint8_t> tail = random_bytes(60000, 17);
  std::vector<std::uint8_t> shifted = random_bytes(1000, 19);
  shifted.insert(shifted.end(), tail.begin(), tail.end());

  const ChunkParams params;
  const std::vector<std::size_t> ends_a = chunk_boundaries(tail, params);
  const std::vector<std::size_t> ends_b = chunk_boundaries(shifted, params);
  // Compare cut positions relative to the shared tail content.
  std::vector<std::size_t> cuts_a(ends_a.begin(), ends_a.end());
  std::vector<std::size_t> cuts_b;
  for (const std::size_t end : ends_b) {
    if (end > 1000) cuts_b.push_back(end - 1000);
  }
  std::size_t shared = 0;
  for (const std::size_t cut : cuts_b) {
    for (const std::size_t other : cuts_a) {
      if (cut == other) {
        ++shared;
        break;
      }
    }
  }
  // The vast majority of tail cuts must line up once resynchronized.
  EXPECT_GE(shared, cuts_a.size() / 2);
}

// ------------------------------------------------------------ engine parity

data::FederatedDataset small_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 10;
  config.num_classes = 3;
  config.image_size = 8;
  config.mean_samples_per_user = 15.0;
  config.seed = 3;
  return data::make_femnist_synth(config);
}

nn::ModelFactory small_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

core::SimulationConfig fast_config(std::uint64_t rounds = 4) {
  core::SimulationConfig config;
  config.rounds = rounds;
  config.nodes_per_round = 4;
  config.eval_every = 2;
  config.eval_nodes_fraction = 0.5;
  config.node.training.epochs = 1;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 1;
  return config;
}

std::vector<std::string> tx_hexes(const Tangle& tangle) {
  std::vector<std::string> out;
  for (TxIndex i = 0; i < tangle.size(); ++i) {
    out.push_back(to_hex(tangle.transaction(i).id));
  }
  return out;
}

TEST(PayloadCodecEngine, LosslessCodecMatchesCodecOffBitExactly) {
  const auto dataset = small_dataset();
  const auto factory = small_factory();

  core::TangleSimulation off(dataset, factory, fast_config());
  const core::RunResult result_off = off.run();

  core::SimulationConfig codec_config = fast_config();
  codec_config.codec = parse_codec_spec("default");  // delta+entropy+chunk
  core::TangleSimulation on(dataset, factory, codec_config);
  const core::RunResult result_on = on.run();

  // Same ledger (transaction ids hash payload bytes) and same accuracy
  // trajectory: the lossless codec is invisible to results.
  EXPECT_EQ(tx_hexes(on.tangle()), tx_hexes(off.tangle()));
  ASSERT_EQ(result_on.history.size(), result_off.history.size());
  for (std::size_t i = 0; i < result_on.history.size(); ++i) {
    EXPECT_EQ(result_on.history[i].accuracy, result_off.history[i].accuracy);
    EXPECT_EQ(result_on.history[i].loss, result_off.history[i].loss);
  }
  // And the chunked store actually engaged.
  EXPECT_TRUE(on.store().chunking_enabled());
  EXPECT_GT(on.store().chunk_count(), 0u);
}

TEST(PayloadCodecEngine, LossyCodecChangesPayloadsButStaysDeterministic) {
  const auto dataset = small_dataset();
  const auto factory = small_factory();

  core::SimulationConfig codec_config = fast_config();
  codec_config.codec = parse_codec_spec("delta,quantize,entropy");
  core::TangleSimulation a(dataset, factory, codec_config);
  (void)a.run();
  core::TangleSimulation b(dataset, factory, codec_config);
  (void)b.run();
  EXPECT_EQ(tx_hexes(a.tangle()), tx_hexes(b.tangle()));

  core::TangleSimulation off(dataset, factory, fast_config());
  (void)off.run();
  EXPECT_NE(tx_hexes(a.tangle()), tx_hexes(off.tangle()));
}

TEST(PayloadCodecEngine, BitIdenticalAcrossKernelThreadCounts) {
  const auto dataset = small_dataset();
  const auto factory = small_factory();

  std::vector<std::vector<std::string>> ledgers;
  std::vector<core::RunResult> results;
  for (const std::size_t kernel_threads : {1u, 2u, 4u}) {
    core::SimulationConfig config = fast_config();
    config.codec = parse_codec_spec("default");
    config.kernel_threads = kernel_threads;
    core::TangleSimulation sim(dataset, factory, config);
    results.push_back(sim.run());
    ledgers.push_back(tx_hexes(sim.tangle()));
  }
  for (std::size_t i = 1; i < ledgers.size(); ++i) {
    EXPECT_EQ(ledgers[i], ledgers[0]) << "kernel thread variant " << i;
    const auto& history = results[i].history;
    const auto& reference = results[0].history;
    ASSERT_EQ(history.size(), reference.size());
    for (std::size_t j = 0; j < history.size(); ++j) {
      EXPECT_EQ(history[j].accuracy, reference[j].accuracy);
      EXPECT_EQ(history[j].loss, reference[j].loss);
    }
  }
}

}  // namespace
}  // namespace tanglefl::tangle
