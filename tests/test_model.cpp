#include "nn/model.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "nn/params.hpp"

namespace tanglefl::nn {
namespace {

TEST(Model, ParameterCountMatchesLayers) {
  Model model = make_mlp(4, 8, 3);
  // Linear(4,8): 4*8+8 = 40; Linear(8,3): 8*3+3 = 27.
  EXPECT_EQ(model.parameter_count(), 67u);
}

TEST(Model, GetSetParametersRoundTrip) {
  Rng rng(1);
  Model model = make_mlp(3, 5, 2);
  model.init(rng);
  const std::vector<float> params = model.get_parameters();
  EXPECT_EQ(params.size(), model.parameter_count());

  Model other = make_mlp(3, 5, 2);
  other.set_parameters(params);
  EXPECT_EQ(other.get_parameters(), params);
}

TEST(Model, SetParametersWrongSizeThrows) {
  Model model = make_mlp(3, 5, 2);
  std::vector<float> too_short(model.parameter_count() - 1, 0.0f);
  EXPECT_THROW(model.set_parameters(too_short), std::invalid_argument);
  std::vector<float> too_long(model.parameter_count() + 1, 0.0f);
  EXPECT_THROW(model.set_parameters(too_long), std::invalid_argument);
}

TEST(Model, InitIsDeterministicInSeed) {
  Model a = make_mlp(3, 4, 2);
  Model b = make_mlp(3, 4, 2);
  Rng rng_a(7), rng_b(7);
  a.init(rng_a);
  b.init(rng_b);
  EXPECT_EQ(a.get_parameters(), b.get_parameters());
}

TEST(Model, InitDiffersAcrossSeeds) {
  Model a = make_mlp(3, 4, 2);
  Model b = make_mlp(3, 4, 2);
  Rng rng_a(7), rng_b(8);
  a.init(rng_a);
  b.init(rng_b);
  EXPECT_NE(a.get_parameters(), b.get_parameters());
}

TEST(Model, CloneCopiesParameters) {
  Rng rng(1);
  Model model = make_mlp(3, 4, 2);
  model.init(rng);
  Model copy = model.clone();
  EXPECT_EQ(copy.get_parameters(), model.get_parameters());

  // Mutating the copy must not affect the original.
  std::vector<float> zeros(copy.parameter_count(), 0.0f);
  copy.set_parameters(zeros);
  EXPECT_NE(copy.get_parameters(), model.get_parameters());
}

TEST(Model, CloneForwardAgrees) {
  Rng rng(2);
  Model model = make_mlp(3, 4, 2);
  model.init(rng);
  Model copy = model.clone();

  Tensor x({2, 3});
  for (auto& v : x.values()) v = static_cast<float>(rng.normal());
  const Tensor ya = model.forward(x, false);
  const Tensor yb = copy.forward(x, false);
  EXPECT_TRUE(ya.equals(yb));
}

TEST(Model, ZeroGradientsClearsAll) {
  Rng rng(3);
  Model model = make_mlp(3, 4, 2);
  model.init(rng);
  Tensor x({1, 3}, {1, 2, 3});
  (void)model.forward(x, true);
  model.backward(Tensor({1, 2}, {1, 1}));
  bool any_nonzero = false;
  for (const float g : model.get_gradients()) {
    if (g != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  model.zero_gradients();
  for (const float g : model.get_gradients()) EXPECT_EQ(g, 0.0f);
}

TEST(Model, GradientsAccumulateAcrossBackwards) {
  Rng rng(4);
  Model model = make_mlp(2, 3, 2);
  model.init(rng);
  Tensor x({1, 2}, {1, -1});

  model.zero_gradients();
  (void)model.forward(x, true);
  model.backward(Tensor({1, 2}, {1, 0}));
  const std::vector<float> once = model.get_gradients();

  (void)model.forward(x, true);
  model.backward(Tensor({1, 2}, {1, 0}));
  const std::vector<float> twice = model.get_gradients();
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-5f);
  }
}

TEST(Model, SummaryListsLayersAndParams) {
  Model model = make_mlp(3, 4, 2);
  const std::string summary = model.summary();
  EXPECT_NE(summary.find("Linear -> ReLU -> Linear"), std::string::npos);
  EXPECT_NE(summary.find("params"), std::string::npos);
}

TEST(ModelZoo, ImageCnnOutputShape) {
  ImageCnnConfig config;
  config.image_size = 12;
  config.num_classes = 7;
  Model model = make_image_cnn(config);
  Rng rng(5);
  model.init(rng);
  const Tensor logits = model.forward(Tensor({3, 1, 12, 12}), false);
  EXPECT_EQ(logits.dim(0), 3u);
  EXPECT_EQ(logits.dim(1), 7u);
}

TEST(ModelZoo, ImageCnnWithDropout) {
  ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 2;
  config.dropout = 0.5;
  Model model = make_image_cnn(config);
  Rng rng(6);
  model.init(rng);
  // Dropout active in training mode: repeated forwards differ.
  Tensor x({1, 1, 8, 8});
  for (auto& v : x.values()) v = 1.0f;
  const Tensor a = model.forward(x, true);
  const Tensor b = model.forward(x, true);
  EXPECT_FALSE(a.equals(b));
  // Evaluation mode: deterministic.
  const Tensor c = model.forward(x, false);
  const Tensor d = model.forward(x, false);
  EXPECT_TRUE(c.equals(d));
}

TEST(ModelZoo, CharLstmOutputShape) {
  CharLstmConfig config;
  config.vocab_size = 11;
  config.seq_length = 6;
  Model model = make_char_lstm(config);
  Rng rng(7);
  model.init(rng);
  Tensor tokens({2, 6});
  for (auto& v : tokens.values()) v = 3.0f;
  const Tensor logits = model.forward(tokens, false);
  EXPECT_EQ(logits.dim(0), 2u);
  EXPECT_EQ(logits.dim(1), 11u);
}

TEST(ModelZoo, StackedLstmHasMoreParams) {
  CharLstmConfig one;
  one.lstm_layers = 1;
  CharLstmConfig two;
  two.lstm_layers = 2;
  EXPECT_GT(make_char_lstm(two).parameter_count(),
            make_char_lstm(one).parameter_count());
}

TEST(Params, UnweightedAverage) {
  const std::vector<ParamVector> params = {{1, 2, 3}, {3, 4, 5}};
  const ParamVector avg = average_params(params);
  EXPECT_EQ(avg, (ParamVector{2, 3, 4}));
}

TEST(Params, AverageSingleIsIdentity) {
  const std::vector<ParamVector> params = {{5, -1}};
  EXPECT_EQ(average_params(params), (ParamVector{5, -1}));
}

TEST(Params, AverageEmptyThrows) {
  const std::vector<ParamVector> params;
  EXPECT_THROW((void)average_params(params), std::invalid_argument);
}

TEST(Params, AverageSizeMismatchThrows) {
  const std::vector<ParamVector> params = {{1, 2}, {1, 2, 3}};
  EXPECT_THROW((void)average_params(params), std::invalid_argument);
}

TEST(Params, WeightedAverage) {
  const std::vector<ParamVector> params = {{0, 0}, {10, 20}};
  const std::vector<double> weights = {3, 1};
  const ParamVector avg = weighted_average_params(params, weights);
  EXPECT_NEAR(avg[0], 2.5f, 1e-6f);
  EXPECT_NEAR(avg[1], 5.0f, 1e-6f);
}

TEST(Params, WeightedAverageRejectsBadWeights) {
  const std::vector<ParamVector> params = {{1}, {2}};
  EXPECT_THROW(
      (void)weighted_average_params(params, std::vector<double>{1, -1}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)weighted_average_params(params, std::vector<double>{0, 0}),
      std::invalid_argument);
  EXPECT_THROW((void)weighted_average_params(params, std::vector<double>{1}),
               std::invalid_argument);
}

TEST(Params, DistanceIsEuclidean) {
  const ParamVector a = {0, 0};
  const ParamVector b = {3, 4};
  EXPECT_NEAR(param_distance(a, b), 5.0, 1e-9);
}

TEST(Params, SerializeRoundTrip) {
  const ParamVector params = {1.5f, -2.0f, 0.0f};
  ByteWriter writer;
  serialize_params(params, writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(deserialize_params(reader), params);
}

}  // namespace
}  // namespace tanglefl::nn
