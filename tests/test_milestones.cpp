// Milestone pruning invariants: a milestone must be approved by every
// required tip, the frontier must only advance onto such confirmed history,
// frozen-only payloads must be released (and only those), and engines with
// pruning enabled must keep every walkable quantity inside the live window.
#include "tangle/milestones.hpp"

#include <gtest/gtest.h>

#include "core/async_simulation.hpp"
#include "core/gossip_simulation.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "support/rng.hpp"

namespace tanglefl::tangle {
namespace {

struct Fixture {
  ModelStore store;
  Tangle tangle;

  Fixture() : tangle(make_genesis(store)) {}

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f});
    return Tangle(added.id, added.hash);
  }

  TxIndex add(std::vector<TxIndex> parents, float value, std::uint64_t round) {
    const auto added = store.add({value});
    return tangle.add_transaction(parents, added.id, added.hash, round);
  }

  /// 0 <- 1 <- 2 <- ... <- (count-1): a single chain, one tip.
  void grow_chain(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      add({static_cast<TxIndex>(tangle.size() - 1)}, static_cast<float>(i),
          i + 1);
    }
  }

  std::shared_ptr<const ViewCacheEntry> cones() {
    return ViewCacheEntry::build(tangle.view());
  }
};

TEST(FindMilestone, ChainPicksNewestOutsideKeepWindow) {
  Fixture f;
  f.grow_chain(9);  // indices 0..9, tip = 9
  const auto cones = f.cones();
  const std::vector<TxIndex> tips{9};
  // n = 10, keep_recent = 3 => candidates < 7; everything on the chain is
  // in the tip's past cone, so the best milestone is 6.
  EXPECT_EQ(find_milestone(*cones, tips, /*current_floor=*/0,
                           /*keep_recent=*/3),
            6u);
}

TEST(FindMilestone, RequiresCoverageByEveryTip) {
  // Fork: 0 <- 1, then 1 <- 2 and 1 <- 3 diverge into two chains. The only
  // transactions below both tips are 0 and 1.
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  TxIndex left = f.add({a}, 2.0f, 2);
  TxIndex right = f.add({a}, 3.0f, 2);
  for (std::uint64_t r = 3; r < 9; ++r) {
    left = f.add({left}, static_cast<float>(r), r);
    right = f.add({right}, static_cast<float>(r) + 0.5f, r);
  }
  const auto cones = f.cones();
  const std::vector<TxIndex> tips{left, right};
  EXPECT_EQ(find_milestone(*cones, tips, 0, /*keep_recent=*/2),
            a);  // 1: the newest common ancestor of both chains
}

TEST(FindMilestone, GuardsReturnTheCurrentFloor) {
  Fixture f;
  f.grow_chain(9);
  const auto cones = f.cones();
  const std::vector<TxIndex> tips{9};
  // No tips.
  EXPECT_EQ(find_milestone(*cones, {}, 0, 3), 0u);
  // A required tip at or below the floor (e.g. a gossip replica stuck at
  // the genesis) blocks any advance.
  const std::vector<TxIndex> stuck{0, 9};
  EXPECT_EQ(find_milestone(*cones, stuck, 0, 3), 0u);
  // Live window covers the whole tangle.
  EXPECT_EQ(find_milestone(*cones, tips, 0, /*keep_recent=*/64), 0u);
  // Too many required tips for the coverage pass.
  EXPECT_EQ(find_milestone(*cones, tips, 0, 3, /*max_required_tips=*/0), 0u);
  // Advancing from an existing floor stays monotonic.
  EXPECT_EQ(find_milestone(*cones, tips, /*current_floor=*/6, 3), 6u);
  EXPECT_EQ(find_milestone(*cones, tips, /*current_floor=*/4, 3), 6u);
}

TEST(ReleaseFrozenPayloads, ReleasesExactlyTheDeadOnes) {
  Fixture f;
  f.grow_chain(9);
  f.tangle.set_prune_floor(5);
  const std::size_t released = release_frozen_payloads(f.tangle, f.store);
  // The store dedupes by hash: transaction 1's {0.0f} reuses the genesis
  // payload, so transaction i holds payload i - 1 and the live window
  // [5, 10) references payloads 4..8 — exactly 0..3 are dead.
  EXPECT_EQ(released, 4u);
  for (PayloadId id = 0; id < f.store.size(); ++id) {
    EXPECT_EQ(f.store.is_released(id), id < 4) << "payload " << id;
  }
  EXPECT_THROW((void)f.store.get(0), std::logic_error);
  (void)f.store.get(4);  // live payloads stay readable
  // Idempotent: a second sweep finds nothing new.
  EXPECT_EQ(release_frozen_payloads(f.tangle, f.store), 0u);
}

TEST(ReleaseFrozenPayloads, SharedPayloadSurvivesWhileReferencedLive) {
  // Transaction 3 reuses the payload of transaction 1: freezing 1 must not
  // release the payload while 3 is live.
  Fixture f;
  const TxIndex a = f.add({0}, 1.0f, 1);
  const TxIndex b = f.add({a}, 2.0f, 2);
  const PayloadId shared = f.tangle.transaction(a).payload;
  const std::vector<TxIndex> parents{b};
  const TxIndex c = f.tangle.add_transaction(
      parents, shared, f.tangle.transaction(a).payload_hash, 3);
  f.add({c}, 4.0f, 4);
  f.tangle.set_prune_floor(b);
  (void)release_frozen_payloads(f.tangle, f.store);
  EXPECT_FALSE(f.store.is_released(shared));
}

TEST(MilestoneTracker, TicksAtTheConfiguredInterval) {
  MilestoneConfig config;
  config.enabled = true;
  config.interval = 3;
  MilestoneTracker tracker(config);
  EXPECT_FALSE(tracker.tick());
  EXPECT_FALSE(tracker.tick());
  EXPECT_TRUE(tracker.tick());
  EXPECT_FALSE(tracker.tick());

  MilestoneTracker disabled(MilestoneConfig{});
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(disabled.tick());
}

TEST(MilestoneTracker, AdvanceFreezesAndReleases) {
  Fixture f;
  f.grow_chain(9);
  MilestoneConfig config;
  config.enabled = true;
  config.keep_recent = 3;
  MilestoneTracker tracker(config);
  EXPECT_TRUE(tracker.advance(f.tangle, f.store, *f.cones()));
  EXPECT_EQ(f.tangle.prune_floor(), 6u);
  EXPECT_TRUE(f.store.is_released(0));
  EXPECT_FALSE(f.store.is_released(6));
  // Nothing new below the keep window: no further advance.
  EXPECT_FALSE(tracker.advance(f.tangle, f.store, *f.cones()));
}

TEST(MilestoneTracker, FloorLimitClampsTheAdvance) {
  Fixture f;
  f.grow_chain(9);
  MilestoneConfig config;
  config.enabled = true;
  config.keep_recent = 3;
  MilestoneTracker tracker(config);
  const auto cones = f.cones();
  const std::vector<TxIndex> tips(cones->tips().begin(),
                                  cones->tips().end());
  EXPECT_TRUE(
      tracker.advance(f.tangle, f.store, *cones, tips, /*floor_limit=*/4));
  EXPECT_EQ(f.tangle.prune_floor(), 4u);
}

// --- engine integration -------------------------------------------------

data::FederatedDataset tiny_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.seed = 4;
  return data::make_femnist_synth(config);
}

nn::ModelFactory tiny_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 8;
  config.num_classes = 3;
  config.conv1_channels = 2;
  config.conv2_channels = 4;
  config.hidden = 8;
  return [config] { return nn::make_image_cnn(config); };
}

void expect_live_invariants(const Tangle& tangle) {
  const TxIndex floor = tangle.prune_floor();
  for (const TxIndex tip : tangle.view().tips()) {
    EXPECT_GE(tip, floor);
  }
}

TEST(EnginePruning, SimulationRunsAndKeepsTipsLive) {
  const auto dataset = tiny_dataset();
  core::SimulationConfig config;
  config.rounds = 14;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  config.prune.enabled = true;
  config.prune.interval = 2;
  config.prune.keep_recent = 6;
  core::TangleSimulation sim(dataset, tiny_factory(), config);
  const core::RunResult result = sim.run();
  EXPECT_FALSE(result.history.empty());
  EXPECT_GT(sim.tangle().prune_floor(), 0u);
  expect_live_invariants(sim.tangle());
  // Something frozen-only was actually garbage-collected.
  std::size_t released = 0;
  for (PayloadId id = 0; id < sim.store().size(); ++id) {
    released += sim.store().is_released(id) ? 1 : 0;
  }
  EXPECT_GT(released, 0u);
}

TEST(EnginePruning, SimulationIsDeterministicUnderPruning) {
  const auto dataset = tiny_dataset();
  core::SimulationConfig config;
  config.rounds = 10;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  config.prune.enabled = true;
  config.prune.interval = 2;
  config.prune.keep_recent = 6;
  core::TangleSimulation a(dataset, tiny_factory(), config);
  core::TangleSimulation b(dataset, tiny_factory(), config);
  const core::RunResult ra = a.run();
  const core::RunResult rb = b.run();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
    EXPECT_EQ(ra.history[i].loss, rb.history[i].loss);
    EXPECT_EQ(ra.history[i].tangle_size, rb.history[i].tangle_size);
    EXPECT_EQ(ra.history[i].tip_count, rb.history[i].tip_count);
  }
  EXPECT_EQ(a.tangle().prune_floor(), b.tangle().prune_floor());
}

TEST(EnginePruning, DisabledPruningMatchesDefaultConfigExactly) {
  const auto dataset = tiny_dataset();
  core::SimulationConfig config;
  config.rounds = 8;
  config.nodes_per_round = 4;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 9;
  core::TangleSimulation baseline(dataset, tiny_factory(), config);

  core::SimulationConfig explicit_off = config;
  explicit_off.prune.enabled = false;
  explicit_off.prune.interval = 1;
  explicit_off.prune.keep_recent = 1;
  core::TangleSimulation off(dataset, tiny_factory(), explicit_off);

  const core::RunResult ra = baseline.run();
  const core::RunResult rb = off.run();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].accuracy, rb.history[i].accuracy);
    EXPECT_EQ(ra.history[i].loss, rb.history[i].loss);
  }
  EXPECT_EQ(off.tangle().prune_floor(), 0u);
}

TEST(EnginePruning, AsyncRunCompletesWithPruning) {
  const auto dataset = tiny_dataset();
  core::AsyncSimulationConfig config;
  config.duration_seconds = 30.0;
  config.wake_rate_per_node = 0.4;
  config.mean_training_seconds = 0.5;
  config.eval_every_seconds = 5.0;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 11;
  config.prune.enabled = true;
  config.prune.interval = 1;
  config.prune.keep_recent = 6;
  core::AsyncTangleSimulation sim(dataset, tiny_factory(), config);
  const core::RunResult result = sim.run();
  EXPECT_FALSE(result.history.empty());
  expect_live_invariants(sim.tangle());
  // The floor never outruns the slowest horizon: every transaction at or
  // above it would be visible to a wake at the final instant.
  const TxIndex floor = sim.tangle().prune_floor();
  EXPECT_LT(floor, sim.tangle().size());
}

TEST(EnginePruning, GossipRunCompletesWithPruning) {
  const auto dataset = tiny_dataset();
  core::GossipConfig config;
  config.rounds = 14;
  config.nodes_per_round = 4;
  config.peers_per_node = 3;
  config.gossip_exchanges = 2;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = 13;
  config.prune.enabled = true;
  config.prune.interval = 2;
  config.prune.keep_recent = 6;
  core::GossipSimulation sim(dataset, tiny_factory(), config);
  const core::RunResult result = sim.run();
  EXPECT_FALSE(result.history.empty());
  expect_live_invariants(sim.tangle());
}

}  // namespace
}  // namespace tanglefl::tangle
