#include "data/femnist_synth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tanglefl::data {
namespace {

FemnistSynthConfig small_config() {
  FemnistSynthConfig config;
  config.num_users = 8;
  config.num_classes = 4;
  config.image_size = 10;
  config.mean_samples_per_user = 20.0;
  config.seed = 7;
  return config;
}

TEST(FemnistSynth, GeneratesRequestedUsers) {
  const FederatedDataset dataset = make_femnist_synth(small_config());
  EXPECT_EQ(dataset.num_users(), 8u);
  EXPECT_EQ(dataset.num_classes(), 4u);
  EXPECT_EQ(dataset.name(), "femnist-synth");
}

TEST(FemnistSynth, DeterministicInSeed) {
  const FederatedDataset a = make_femnist_synth(small_config());
  const FederatedDataset b = make_femnist_synth(small_config());
  ASSERT_EQ(a.num_users(), b.num_users());
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    EXPECT_TRUE(a.user(u).train.features.equals(b.user(u).train.features));
    EXPECT_EQ(a.user(u).train.labels, b.user(u).train.labels);
  }
}

TEST(FemnistSynth, DifferentSeedsDiffer) {
  FemnistSynthConfig other = small_config();
  other.seed = 8;
  const FederatedDataset a = make_femnist_synth(small_config());
  const FederatedDataset b = make_femnist_synth(other);
  EXPECT_FALSE(
      a.user(0).train.features.equals(b.user(0).train.features));
}

TEST(FemnistSynth, PixelsInUnitRange) {
  const FederatedDataset dataset = make_femnist_synth(small_config());
  for (const float v : dataset.user(0).train.features.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(FemnistSynth, LabelsInRange) {
  const FederatedDataset dataset = make_femnist_synth(small_config());
  for (std::size_t u = 0; u < dataset.num_users(); ++u) {
    for (const auto label : dataset.user(u).train.labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 4);
    }
  }
}

TEST(FemnistSynth, ExampleShapeMatchesConfig) {
  const FederatedDataset dataset = make_femnist_synth(small_config());
  EXPECT_EQ(dataset.user(0).train.example_shape(),
            (std::vector<std::size_t>{1, 10, 10}));
}

TEST(FemnistSynth, TrainFractionApproximatelyRespected) {
  const FederatedDataset dataset = make_femnist_synth(small_config());
  for (std::size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& user = dataset.user(u);
    const double fraction =
        static_cast<double>(user.train.size()) /
        static_cast<double>(user.total_samples());
    EXPECT_NEAR(fraction, 0.8, 0.1);
  }
}

TEST(FemnistSynth, UsersAreUnbalanced) {
  FemnistSynthConfig config = small_config();
  config.num_users = 30;
  const FederatedDataset dataset = make_femnist_synth(config);
  const DatasetStats stats = dataset.stats();
  EXPECT_GT(stats.max_samples_per_user, stats.min_samples_per_user);
}

TEST(FemnistSynth, LabelDistributionIsNonIid) {
  // With a small Dirichlet alpha, users' label histograms must differ
  // substantially: measure the mean max-class share.
  FemnistSynthConfig config = small_config();
  config.num_users = 20;
  config.dirichlet_alpha = 0.3;
  config.mean_samples_per_user = 40.0;
  const FederatedDataset dataset = make_femnist_synth(config);

  double mean_max_share = 0.0;
  for (std::size_t u = 0; u < dataset.num_users(); ++u) {
    std::vector<int> counts(4, 0);
    const auto& user = dataset.user(u);
    for (const auto label : user.train.labels) ++counts[static_cast<std::size_t>(label)];
    const int max_count = *std::max_element(counts.begin(), counts.end());
    if (!user.train.labels.empty()) {
      mean_max_share += static_cast<double>(max_count) /
                        static_cast<double>(user.train.labels.size());
    }
  }
  mean_max_share /= static_cast<double>(dataset.num_users());
  // IID over 4 classes would give ~0.25; non-IID must be far higher.
  EXPECT_GT(mean_max_share, 0.45);
}

TEST(FemnistSynth, SameClassSameUserSamplesAreCorrelated) {
  // Two renders of the same class by the same writer should be much closer
  // than renders of different classes.
  const FemnistSynthConfig config = small_config();
  const nn::Tensor a = render_femnist_sample(config, 1, 2, 100);
  const nn::Tensor b = render_femnist_sample(config, 1, 2, 101);
  const nn::Tensor c = render_femnist_sample(config, 1, 3, 102);

  const auto distance = [](const nn::Tensor& x, const nn::Tensor& y) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - y[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  EXPECT_LT(distance(a, b), distance(a, c));
}

TEST(FemnistSynth, SamplesWithinUserVary) {
  const FemnistSynthConfig config = small_config();
  const nn::Tensor a = render_femnist_sample(config, 1, 2, 100);
  const nn::Tensor b = render_femnist_sample(config, 1, 2, 101);
  EXPECT_FALSE(a.equals(b));
}

TEST(FemnistSynth, MinSamplesHonored) {
  FemnistSynthConfig config = small_config();
  config.min_samples_per_user = 10;
  config.mean_samples_per_user = 5.0;  // force the floor to matter
  const FederatedDataset dataset = make_femnist_synth(config);
  for (std::size_t u = 0; u < dataset.num_users(); ++u) {
    EXPECT_GE(dataset.user(u).total_samples(), 10u);
  }
}

}  // namespace
}  // namespace tanglefl::data
