#include "support/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace tanglefl {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter writer;
  writer.write_u8(0xab);
  writer.write_u32(0xdeadbeef);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_i64(-42);
  writer.write_f32(3.5f);
  writer.write_f64(-2.25);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_EQ(reader.read_f32(), 3.5f);
  EXPECT_EQ(reader.read_f64(), -2.25);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter writer;
  writer.write_string("hello tangle");
  writer.write_string("");
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string(), "hello tangle");
  EXPECT_EQ(reader.read_string(), "");
}

TEST(Serialize, FloatVectorRoundTrip) {
  const std::vector<float> values = {1.0f, -2.5f, 0.0f, 1e-7f, 1e7f};
  ByteWriter writer;
  writer.write_f32_span(values);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_f32_vector(), values);
}

TEST(Serialize, U64VectorRoundTrip) {
  const std::vector<std::uint64_t> values = {
      0, 1, std::numeric_limits<std::uint64_t>::max()};
  ByteWriter writer;
  writer.write_u64_span(values);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u64_vector(), values);
}

TEST(Serialize, U32VectorRoundTrip) {
  const std::vector<std::uint32_t> values = {
      0, 1, 77, std::numeric_limits<std::uint32_t>::max()};
  ByteWriter writer;
  writer.write_u32_span(values);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u32_vector(), values);
}

TEST(Serialize, EmptyU32VectorRoundTrip) {
  ByteWriter writer;
  writer.write_u32_span({});
  ByteReader reader(writer.bytes());
  EXPECT_TRUE(reader.read_u32_vector().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, BytesRoundTrip) {
  const std::vector<std::uint8_t> payload = {0x00, 0xff, 0x7f, 0x80};
  ByteWriter writer;
  writer.write_bytes(payload);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_bytes(), payload);
}

TEST(Serialize, ReadPastEndThrows) {
  ByteWriter writer;
  writer.write_u8(1);
  ByteReader reader(writer.bytes());
  (void)reader.read_u8();
  EXPECT_THROW((void)reader.read_u32(), SerializeError);
}

TEST(Serialize, HostileLengthPrefixThrows) {
  ByteWriter writer;
  writer.write_u64(std::numeric_limits<std::uint64_t>::max());  // length
  writer.write_u32(0);  // 4 bytes of "payload"
  ByteReader reader(writer.bytes());
  EXPECT_THROW((void)reader.read_f32_vector(), SerializeError);
}

TEST(Serialize, TruncatedStringThrows) {
  ByteWriter writer;
  writer.write_string("hello");
  const std::vector<std::uint8_t> bytes = writer.take();
  // Drop the last two bytes of the string body.
  ByteReader reader(std::span(bytes.data(), bytes.size() - 2));
  EXPECT_THROW((void)reader.read_string(), SerializeError);
}

TEST(Serialize, RemainingCountsDown) {
  ByteWriter writer;
  writer.write_u32(7);
  writer.write_u32(8);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 8u);
  (void)reader.read_u32();
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(Serialize, EmptyVectorRoundTrip) {
  ByteWriter writer;
  writer.write_f32_span(std::vector<float>{});
  ByteReader reader(writer.bytes());
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, TakeMovesBuffer) {
  ByteWriter writer;
  writer.write_u8(9);
  const auto bytes = writer.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(writer.bytes().empty());
}

}  // namespace
}  // namespace tanglefl
