#include "nn/privacy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/node.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl::nn {
namespace {

double delta_norm(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TEST(DpSanitize, ClipsLargeUpdates) {
  const ParamVector base(16, 0.0f);
  ParamVector params(16, 0.0f);
  params[0] = 100.0f;  // update norm 100

  Rng rng(1);
  const DpConfig config{.clip_norm = 1.0, .noise_multiplier = 0.0};
  const ParamVector out = dp_sanitize(params, base, config, rng);
  EXPECT_NEAR(delta_norm(out, base), 1.0, 1e-5);
  // Direction preserved: only coordinate 0 moved.
  EXPECT_NEAR(out[0], 1.0f, 1e-5f);
  EXPECT_NEAR(out[1], 0.0f, 1e-6f);
}

TEST(DpSanitize, SmallUpdatesPassUnclipped) {
  const ParamVector base(8, 1.0f);
  ParamVector params(8, 1.0f);
  params[3] = 1.25f;  // norm 0.25 < clip 1

  Rng rng(2);
  const DpConfig config{.clip_norm = 1.0, .noise_multiplier = 0.0};
  const ParamVector out = dp_sanitize(params, base, config, rng);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(out[i], params[i], 1e-6f);
}

TEST(DpSanitize, NoiseHasConfiguredScale) {
  const std::size_t n = 20000;
  const ParamVector base(n, 0.0f);
  const ParamVector params(n, 0.0f);  // zero update: output is pure noise

  Rng rng(3);
  const DpConfig config{.clip_norm = 2.0, .noise_multiplier = 0.5};
  const ParamVector out = dp_sanitize(params, base, config, rng);
  double mean = 0.0, var = 0.0;
  for (const float v : out) mean += v;
  mean /= static_cast<double>(n);
  for (const float v : out) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 1.0, 0.05);  // sigma = 0.5 * 2.0
}

TEST(DpSanitize, DeterministicInRng) {
  const ParamVector base(8, 0.0f);
  ParamVector params(8, 0.5f);
  Rng a(7), b(7);
  const DpConfig config{.clip_norm = 1.0, .noise_multiplier = 0.2};
  EXPECT_EQ(dp_sanitize(params, base, config, a),
            dp_sanitize(params, base, config, b));
}

TEST(Quantize, RoundTripErrorBounded) {
  Rng rng(4);
  ParamVector params(500);
  for (auto& v : params) v = static_cast<float>(rng.normal()) * 3.0f;

  const QuantizedParams quantized = quantize_params(params);
  const ParamVector restored = dequantize_params(quantized);
  ASSERT_EQ(restored.size(), params.size());
  // Max error is half a quantization step.
  const float step = quantized.scale;
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_LE(std::abs(restored[i] - params[i]), 0.5f * step + 1e-6f);
  }
}

TEST(Quantize, ZeroVectorStaysZero) {
  const ParamVector params(10, 0.0f);
  const ParamVector restored = quantize_roundtrip(params);
  for (const float v : restored) EXPECT_EQ(v, 0.0f);
}

TEST(Quantize, ExtremesMapToFullRange) {
  const ParamVector params = {-5.0f, 0.0f, 5.0f};
  const QuantizedParams quantized = quantize_params(params);
  EXPECT_EQ(quantized.values[0], -127);
  EXPECT_EQ(quantized.values[1], 0);
  EXPECT_EQ(quantized.values[2], 127);
}

TEST(Quantize, ByteSizeIsQuarterOfFloats) {
  const ParamVector params(1000, 1.0f);
  const QuantizedParams quantized = quantize_params(params);
  EXPECT_EQ(quantized.byte_size(), 1000u + sizeof(float));
  EXPECT_LT(quantized.byte_size(), params.size() * sizeof(float) / 3);
}

TEST(Quantize, IdempotentOnQuantizedValues) {
  Rng rng(5);
  ParamVector params(64);
  for (auto& v : params) v = static_cast<float>(rng.normal());
  const ParamVector once = quantize_roundtrip(params);
  const ParamVector twice = quantize_roundtrip(once);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-6f);
  }
}

TEST(Quantize, AllZeroVectorUsesUnitScale) {
  // max_abs == 0 must not divide by zero; the scale falls back to 1 and
  // every value quantizes to exactly 0.
  const ParamVector params(16, 0.0f);
  const QuantizedParams quantized = quantize_params(params);
  EXPECT_EQ(quantized.scale, 1.0f);
  for (const std::int8_t v : quantized.values) EXPECT_EQ(v, 0);
  EXPECT_EQ(dequantize_params(quantized), params);
}

TEST(Quantize, EmptyVector) {
  const QuantizedParams quantized = quantize_params(ParamVector{});
  EXPECT_TRUE(quantized.values.empty());
  EXPECT_EQ(quantized.scale, 1.0f);
  EXPECT_TRUE(dequantize_params(quantized).empty());
}

TEST(Quantize, SingleElementSaturatesGrid) {
  const ParamVector params = {-2.5f};
  const QuantizedParams quantized = quantize_params(params);
  ASSERT_EQ(quantized.values.size(), 1u);
  EXPECT_EQ(quantized.values[0], -127);
  EXPECT_NEAR(dequantize_params(quantized)[0], -2.5f, 1e-6f);
}

TEST(Quantize, NonFiniteParametersThrow) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW((void)quantize_params(ParamVector{1.0f, inf}),
               std::invalid_argument);
  EXPECT_THROW((void)quantize_params(ParamVector{-inf}),
               std::invalid_argument);
  EXPECT_THROW((void)quantize_params(ParamVector{0.0f, nan, 2.0f}),
               std::invalid_argument);
}

TEST(Quantize, GridValuesRoundTripExactly) {
  // A vector whose entries already sit on the 8-bit grid (integers with
  // max_abs 127 give scale exactly 1) survives quantization bit-exact.
  const ParamVector params = {-127.0f, -64.0f, -1.0f, 0.0f,
                              1.0f,    63.0f,  127.0f};
  const QuantizedParams quantized = quantize_params(params);
  EXPECT_EQ(quantized.scale, 1.0f);
  EXPECT_EQ(dequantize_params(quantized), params);
}

// ----------------------------------------------- node integration

TEST(PrivacyNodeIntegration, DpNodeStillPublishesAndImproves) {
  // An honest node with DP enabled publishes sanitized parameters whose
  // update norm respects the clip.
  const nn::ModelFactory factory = [] { return nn::make_mlp(2, 4, 2); };
  tangle::ModelStore store;
  nn::Model genesis_model = factory();
  Rng init_rng(1);
  genesis_model.init(init_rng);
  const auto added = store.add(genesis_model.get_parameters());
  tangle::Tangle tangle(added.id, added.hash);

  data::UserData user;
  user.user_id = "dp-node";
  user.train.features = nn::Tensor({16, 2});
  user.train.labels.resize(16);
  Rng data_rng(2);
  for (std::size_t i = 0; i < 16; ++i) {
    const bool positive = i % 2 == 0;
    user.train.features.at(i, 0) =
        static_cast<float>(data_rng.normal()) + (positive ? 2.0f : -2.0f);
    user.train.labels[i] = positive ? 1 : 0;
  }
  user.test = user.train;

  core::NodeConfig config;
  config.use_dp = true;
  config.dp.clip_norm = 0.5;
  config.dp.noise_multiplier = 0.01;
  config.training.epochs = 6;
  config.training.sgd.learning_rate = 0.2;

  core::HonestNode node(config);
  const tangle::TangleView view = tangle.view();
  core::NodeContext context{view, store, factory, 1, Rng(3)};
  const auto publish = node.step(context, user);
  ASSERT_TRUE(publish.has_value());
  // Published parameters differ from the base by at most clip + noise.
  const double norm =
      delta_norm(publish->params, genesis_model.get_parameters());
  EXPECT_LT(norm, 0.5 + 0.3);
}

TEST(PrivacyNodeIntegration, QuantizedNodePublishesQuantizedGrid) {
  const nn::ModelFactory factory = [] { return nn::make_mlp(2, 4, 2); };
  tangle::ModelStore store;
  nn::Model genesis_model = factory();
  Rng init_rng(1);
  genesis_model.init(init_rng);
  const auto added = store.add(genesis_model.get_parameters());
  tangle::Tangle tangle(added.id, added.hash);

  data::UserData user;
  user.user_id = "q-node";
  user.train.features = nn::Tensor({16, 2});
  user.train.labels.resize(16);
  Rng data_rng(2);
  for (std::size_t i = 0; i < 16; ++i) {
    const bool positive = i % 2 == 0;
    user.train.features.at(i, 0) =
        static_cast<float>(data_rng.normal()) + (positive ? 2.0f : -2.0f);
    user.train.labels[i] = positive ? 1 : 0;
  }
  user.test = user.train;

  core::NodeConfig config;
  config.quantize_payloads = true;
  config.training.epochs = 6;
  config.training.sgd.learning_rate = 0.2;

  core::HonestNode node(config);
  const tangle::TangleView view = tangle.view();
  core::NodeContext context{view, store, factory, 1, Rng(3)};
  const auto publish = node.step(context, user);
  ASSERT_TRUE(publish.has_value());
  // Every published value lies exactly on an 8-bit grid.
  const QuantizedParams requantized = quantize_params(publish->params);
  const ParamVector restored = dequantize_params(requantized);
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_NEAR(restored[i], publish->params[i], 1e-6f);
  }
}

}  // namespace
}  // namespace tanglefl::nn
