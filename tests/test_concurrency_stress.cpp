// ThreadSanitizer-oriented stress tests for the shared-state hot paths the
// parallel simulation engine exercises: the ModelStore under concurrent
// writers and readers, ThreadPool::parallel_for driven from several
// external threads at once, and a multi-threaded simulation round. These
// tests pass in any configuration; their value is highest under
// `cmake --preset tsan` (and `--preset asan`), where the sanitizer turns
// latent races and dangling references into hard failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <iterator>
#include <thread>
#include <vector>

#include "core/eval_engine.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tangle/model_store.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl {
namespace {

// Regression stress for a real bug: ModelStore used to keep entries in a
// std::vector, so the references handed out by get()/hash_of() dangled as
// soon as a concurrent add() forced a reallocation. The deque-backed store
// must keep them valid while writers grow the store.
TEST(ConcurrencyStress, ModelStoreReadersDuringGrowth) {
  tangle::ModelStore store;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 200;

  // Seed one payload so readers always have something to chase.
  const auto seeded = store.add({0.0f, 0.0f});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> read_checksum{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t visible = store.size();
        for (std::size_t id = 0; id < visible; ++id) {
          // Hold the references across further concurrent adds and touch
          // them afterwards: stale addresses fault under ASan/TSan.
          const nn::ParamVector& params = store.get(id);
          const Sha256Digest& digest = store.hash_of(id);
          read_checksum.fetch_add(
              static_cast<std::uint64_t>(params.size()) + digest[0],
              std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        const float unique =
            static_cast<float>(w * kPerWriter + i) + 1.0f;
        const auto added = store.add({unique, unique * 0.5f});
        // The reference must be valid immediately and stay valid.
        ASSERT_EQ(store.get(added.id).front(), unique);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(store.size(), 1 + kWriters * kPerWriter);
  EXPECT_GT(read_checksum.load(), 0u);
  EXPECT_EQ(store.get(seeded.id), (nn::ParamVector{0.0f, 0.0f}));
}

TEST(ConcurrencyStress, ModelStoreConcurrentDeduplication) {
  tangle::ModelStore store;
  constexpr int kThreads = 8;
  std::atomic<int> dedup_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &dedup_hits] {
      for (int i = 0; i < 50; ++i) {
        // All threads insert the same small set of payloads; exactly one
        // insertion per distinct payload may win.
        const auto added = store.add({static_cast<float>(i % 10)});
        if (added.deduplicated) dedup_hits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(dedup_hits.load(), kThreads * 50 - 10);
}

TEST(ConcurrencyStress, ParallelForFromMultipleExternalThreads) {
  ThreadPool pool(4);
  constexpr int kDrivers = 4;
  constexpr std::size_t kIterations = 500;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&pool, &total] {
      for (int repeat = 0; repeat < 5; ++repeat) {
        pool.parallel_for(kIterations, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), kDrivers * 5 * kIterations);
}

TEST(ConcurrencyStress, SubmitStormWhileParallelForRuns) {
  ThreadPool pool(4);
  std::atomic<int> submitted_done{0};
  std::vector<std::future<void>> futures;
  std::atomic<std::size_t> loop_done{0};
  std::thread storm([&] {
    for (int i = 0; i < 200; ++i) {
      futures.push_back(
          pool.submit([&submitted_done] { submitted_done.fetch_add(1); }));
    }
  });
  pool.parallel_for(200, [&loop_done](std::size_t) {
    loop_done.fetch_add(1, std::memory_order_relaxed);
  });
  storm.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(submitted_done.load(), 200);
  EXPECT_EQ(loop_done.load(), 200u);
}

// End-to-end: a simulation round trains nodes on a real worker pool, all
// slots reading the shared TangleView and ModelStore concurrently. Under
// TSan this covers the engine's actual sharing pattern, and determinism is
// asserted on top: thread count must not change the resulting ledger.
TEST(ConcurrencyStress, ParallelSimulationRoundMatchesSerial) {
  data::FemnistSynthConfig data_config;
  data_config.num_users = 8;
  data_config.num_classes = 3;
  data_config.image_size = 8;
  data_config.mean_samples_per_user = 12.0;
  data_config.seed = 7;
  const auto dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 8;
  model_config.num_classes = 3;
  model_config.conv1_channels = 2;
  model_config.conv2_channels = 4;
  model_config.hidden = 8;
  const auto factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  core::SimulationConfig config;
  config.rounds = 3;
  config.nodes_per_round = 6;
  config.eval_every = 3;
  config.node.training.epochs = 1;
  config.seed = 11;

  config.threads = 4;
  core::TangleSimulation parallel_sim(dataset, factory, config);
  for (std::uint64_t r = 1; r <= config.rounds; ++r) {
    parallel_sim.run_round(r);
  }

  config.threads = 1;
  core::TangleSimulation serial_sim(dataset, factory, config);
  for (std::uint64_t r = 1; r <= config.rounds; ++r) {
    serial_sim.run_round(r);
  }

  ASSERT_EQ(parallel_sim.tangle().size(), serial_sim.tangle().size());
  for (tangle::TxIndex i = 0; i < parallel_sim.tangle().size(); ++i) {
    EXPECT_EQ(parallel_sim.tangle().transaction(i).id,
              serial_sim.tangle().transaction(i).id)
        << "transaction " << i << " diverged across thread counts";
  }
}

// The two LRU caches (ViewCache cone entries, EvalEngine batched splits)
// hammered from the same worker pool with a deliberate mix of hits, misses
// and evictions: capacity 2 against a rotation of six prefixes, and a split
// budget of two against a rotation of three splits. Under TSan this is the
// regression net for the lock-layer restructure — outstanding shared_ptrs
// must stay valid while other workers evict the slots they came from, and
// every result must equal its serially computed expectation.
TEST(ConcurrencyStress, ViewCacheAndEvalEngineSharedUnderOnePool) {
  // A small random DAG, grown like the ViewCache unit-test fixture.
  tangle::ModelStore ledger_store;
  const auto genesis = ledger_store.add({0.0f});
  tangle::Tangle tangle(genesis.id, genesis.hash);
  Rng grow_rng(91);
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t n = tangle.size();
    std::vector<tangle::TxIndex> parents = {
        static_cast<tangle::TxIndex>(grow_rng.uniform_index(n))};
    if (grow_rng.uniform() < 0.7) {
      parents.push_back(
          static_cast<tangle::TxIndex>(grow_rng.uniform_index(n)));
    }
    const auto added = ledger_store.add({static_cast<float>(i) + 1.0f});
    tangle.add_transaction(parents, added.id, added.hash, i + 1);
  }
  const std::size_t prefixes[] = {10, 20, 30, 40, 50, 61};
  std::vector<std::uint64_t> expected_cone_sum(std::size(prefixes), 0);
  for (std::size_t p = 0; p < std::size(prefixes); ++p) {
    for (const std::uint32_t c :
         tangle.view_prefix(prefixes[p]).past_cone_sizes()) {
      expected_cone_sum[p] += c;
    }
  }

  // Three payloads evaluated against three rotating splits.
  const auto factory = [] { return nn::make_mlp(2, 6, 2); };
  tangle::ModelStore model_store;
  std::vector<tangle::PayloadId> payloads;
  std::vector<data::DataSplit> splits;
  std::vector<double> expected_loss;
  for (std::size_t k = 0; k < 3; ++k) {
    nn::Model model = factory();
    Rng init_rng(200 + k);
    model.init(init_rng);
    payloads.push_back(model_store.add(model.get_parameters()).id);

    data::DataSplit split;
    const std::size_t samples = 48;
    split.features = nn::Tensor({samples, 2});
    split.labels.resize(samples);
    Rng data_rng(300 + k);
    for (std::size_t i = 0; i < samples; ++i) {
      split.features.at(i, 0) = static_cast<float>(data_rng.normal());
      split.features.at(i, 1) = static_cast<float>(data_rng.normal());
      split.labels[i] =
          static_cast<std::int32_t>(data_rng.uniform_index(2));
    }
    splits.push_back(std::move(split));
  }
  for (std::size_t k = 0; k < 3; ++k) {
    nn::Model model = factory();
    model.set_parameters(model_store.get(payloads[k]));
    expected_loss.push_back(data::evaluate(model, splits[k]).loss);
  }

  core::EvalEngineConfig engine_config;
  {
    core::EvalEngine probe(factory);
    engine_config.batched_budget_bytes = 2 * probe.prepare(splits[0])->bytes();
  }
  core::EvalEngine engine(factory, engine_config);
  tangle::ViewCache cache(2);

  ThreadPool pool(4);
  std::atomic<std::uint64_t> checksum{0};
  constexpr std::size_t kIterations = 240;
  pool.parallel_for(kIterations, [&](std::size_t i) {
    // Cone-cache side: rotating prefixes overflow capacity 2 constantly.
    // get() runs on the caller's thread (never pass a worker its own pool).
    const std::size_t p = i % std::size(prefixes);
    const auto entry = cache.get(tangle.view_prefix(prefixes[p]));
    ASSERT_EQ(entry->view_size(), prefixes[p]);
    std::uint64_t cone_sum = 0;
    for (const std::uint32_t c : entry->past_cone_sizes()) cone_sum += c;
    ASSERT_EQ(cone_sum, expected_cone_sum[p]);  // entry valid post-eviction

    // Eval side: splits rotate through a budget of two, so every third
    // prepare() rebuilds and evicts while other workers still hold the
    // evicted BatchedSplit.
    const std::size_t k = (i / 2) % 3;
    const auto prepared = engine.prepare(splits[k]);
    const auto outcome =
        engine.payload_eval(model_store, payloads[k], *prepared);
    ASSERT_EQ(outcome.result.loss, expected_loss[k]);
    checksum.fetch_add(cone_sum + static_cast<std::uint64_t>(k),
                       std::memory_order_relaxed);
  });
  EXPECT_GT(checksum.load(), 0u);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(engine.cached_splits(), 2u);
}

}  // namespace
}  // namespace tanglefl
