#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Counter, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ParallelForIncrementsSumExactly) {
  // The sharded counter must not lose increments under the same
  // parallel_for the simulation engine uses for per-round training.
  Counter counter;
  ThreadPool pool(4);
  constexpr std::size_t kIterations = 10000;
  pool.parallel_for(kIterations, [&](std::size_t i) {
    counter.increment();
    if (i % 10 == 0) counter.add(2);
  });
  EXPECT_EQ(counter.value(), kIterations + 2 * (kIterations / 10));
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge;
  gauge.set(1.5);
  gauge.set(-3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(BucketLayout, LinearAndExponentialAreStable) {
  const BucketLayout linear = BucketLayout::linear(1.0, 2.0, 4);
  ASSERT_EQ(linear.upper_bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(linear.upper_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(linear.upper_bounds[3], 7.0);

  const BucketLayout expo = BucketLayout::exponential(1.0, 2.0, 5);
  ASSERT_EQ(expo.upper_bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(expo.upper_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(expo.upper_bounds[4], 16.0);
}

TEST(Histogram, LeBucketSemantics) {
  Histogram histogram(BucketLayout{{1.0, 2.0, 4.0}});
  histogram.record(0.5);  // <= 1 -> bucket 0
  histogram.record(1.0);  // boundary is inclusive -> bucket 0
  histogram.record(1.5);  // bucket 1
  histogram.record(4.0);  // bucket 2
  histogram.record(9.0);  // overflow bucket
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 9.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 16.0);
}

TEST(Histogram, EmptyMinMaxAreZero) {
  Histogram histogram(BucketLayout::linear(1.0, 1.0, 2));
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram(BucketLayout{{}}), std::invalid_argument);
  EXPECT_THROW(Histogram(BucketLayout{{2.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Histogram(BucketLayout{{1.0, 1.0}}), std::invalid_argument);
}

TEST(MetricsRegistry, HandlesAreStableAcrossReset) {
  auto& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.registry.stable");
  counter.add(7);
  EXPECT_EQ(counter.value(), 7u);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  // Same name resolves to the same instance.
  registry.counter("test.registry.stable").add(3);
  EXPECT_EQ(counter.value(), 3u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  auto& registry = MetricsRegistry::global();
  registry.counter("test.registry.mismatch");
  EXPECT_THROW(registry.gauge("test.registry.mismatch"), std::logic_error);
  EXPECT_THROW(
      registry.histogram("test.registry.mismatch", BucketLayout::linear(1, 1, 2)),
      std::logic_error);
}

TEST(MetricsRegistry, HistogramLayoutMismatchThrows) {
  auto& registry = MetricsRegistry::global();
  const BucketLayout layout = BucketLayout::linear(1.0, 1.0, 3);
  registry.histogram("test.registry.layout", layout);
  // Identical layout: fine, same instance.
  EXPECT_NO_THROW(registry.histogram("test.registry.layout", layout));
  EXPECT_THROW(registry.histogram("test.registry.layout",
                                  BucketLayout::linear(1.0, 1.0, 4)),
               std::logic_error);
}

TEST(MetricsRegistry, DeterministicSnapshotExcludesTimingMetrics) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.snapshot.plain").add(5);
  registry.counter("test.snapshot.timing", /*timing=*/true).add(9);
  registry
      .histogram("test.snapshot.timing_hist", BucketLayout::linear(1, 1, 2),
                 /*timing=*/true)
      .record(1.0);

  const std::string deterministic =
      registry.snapshot(SnapshotKind::kDeterministic).to_json();
  EXPECT_NE(deterministic.find("test.snapshot.plain"), std::string::npos);
  EXPECT_EQ(deterministic.find("test.snapshot.timing"), std::string::npos);
  // Histogram sums are floating-point accumulation order: excluded too.
  EXPECT_EQ(deterministic.find("\"sum\""), std::string::npos);

  const std::string full = registry.snapshot(SnapshotKind::kFull).to_json();
  EXPECT_NE(full.find("test.snapshot.timing"), std::string::npos);
  EXPECT_NE(full.find("test.snapshot.timing_hist"), std::string::npos);
  EXPECT_NE(full.find("\"sum\""), std::string::npos);
}

TEST(MetricsRegistry, SnapshotJsonIsByteStable) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.stable.one").add(11);
  registry.gauge("test.stable.two").set(0.25);
  registry.histogram("test.stable.three", BucketLayout::exponential(1, 2, 4))
      .record(3.0);
  const std::string a =
      registry.snapshot(SnapshotKind::kDeterministic).to_json();
  const std::string b =
      registry.snapshot(SnapshotKind::kDeterministic).to_json();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(TraceScope, RecordsIntoAttachedSink) {
  const std::string path = "test_metrics_trace.json";
  {
    TraceSink sink(path);
    set_trace_sink(&sink);
    {
      TraceScope outer("test.outer");
      TraceScope inner("test.inner");
    }
    set_trace_sink(nullptr);
    EXPECT_EQ(sink.event_count(), 2u);
    EXPECT_TRUE(sink.flush());
  }
  const std::string trace = read_file(path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("test.outer"), std::string::npos);
  EXPECT_NE(trace.find("test.inner"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceScope, TimingHistogramOnlyRecordsWhenEnabled) {
  auto& registry = MetricsRegistry::global();
  Histogram& histogram = registry.histogram(
      "test.trace.timing", BucketLayout::exponential(1, 4, 6), /*timing=*/true);
  histogram.reset();

  set_timing_enabled(false);
  { TraceScope span("test.trace.disabled", &histogram); }
  EXPECT_EQ(histogram.count(), 0u);

  set_timing_enabled(true);
  { TraceScope span("test.trace.enabled", &histogram); }
  set_timing_enabled(false);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(Manifest, JsonContainsConfigPhasesAndMetrics) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.manifest.counter").add(4);

  RunManifest manifest;
  manifest.name = "unit";
  manifest.seed = 17;
  manifest.config.emplace_back("users", "60");
  manifest.phase_seconds.emplace_back("train", 1.5);
  manifest.total_seconds = 2.0;

  const std::string json =
      manifest_json(manifest, registry.snapshot(SnapshotKind::kFull));
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"users\": \"60\""), std::string::npos);
  EXPECT_NE(json.find("\"train\""), std::string::npos);
  EXPECT_NE(json.find("test.manifest.counter"), std::string::npos);
  EXPECT_NE(json.find("\"git\""), std::string::npos);
}

TEST(Manifest, WriteProducesParseableFile) {
  const std::string path = "test_metrics_manifest.json";
  RunManifest manifest;
  manifest.name = "unit-write";
  ASSERT_TRUE(write_manifest(path, manifest,
                             MetricsRegistry::global().snapshot()));
  const std::string written = read_file(path);
  EXPECT_NE(written.find("\"unit-write\""), std::string::npos);
  EXPECT_EQ(written.back(), '\n');
  std::remove(path.c_str());
}

TEST(Json, EscapeAndNumberFormat) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(2.0), "2.0");  // integral doubles keep a decimal point
  EXPECT_EQ(json_number(0.5), "0.5");
}

TEST(ScopedTimer, AccumulatesAcrossScopes) {
  double accumulator = 0.0;
  { ScopedTimer timer(accumulator); }
  const double after_first = accumulator;
  EXPECT_GE(after_first, 0.0);
  { ScopedTimer timer(accumulator); }
  EXPECT_GE(accumulator, after_first);
}

TEST(Stopwatch, NowMicrosIsMonotonic) {
  const std::uint64_t a = Stopwatch::now_micros();
  const std::uint64_t b = Stopwatch::now_micros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace tanglefl::obs
