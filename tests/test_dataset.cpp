#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace tanglefl::data {
namespace {

DataSplit make_split(std::size_t n, std::size_t features = 2) {
  DataSplit split;
  split.features = nn::Tensor({n, features});
  split.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < features; ++f) {
      split.features.at(i, f) = static_cast<float>(i * 10 + f);
    }
    split.labels[i] = static_cast<std::int32_t>(i % 3);
  }
  return split;
}

TEST(DataSplit, GatherCopiesRows) {
  const DataSplit split = make_split(5);
  const std::vector<std::size_t> indices = {3, 0};
  const DataSplit batch = split.gather(indices);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(batch.features.at(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(batch.features.at(1, 1), 1.0f);
  EXPECT_EQ(batch.labels[0], 0);
  EXPECT_EQ(batch.labels[1], 0);
}

TEST(DataSplit, GatherEmpty) {
  const DataSplit split = make_split(5);
  const std::vector<std::size_t> indices;
  EXPECT_EQ(split.gather(indices).size(), 0u);
}

TEST(DataSplit, AppendMergesRows) {
  DataSplit a = make_split(2);
  const DataSplit b = make_split(3);
  a.append(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_FLOAT_EQ(a.features.at(2, 0), 0.0f);  // first row of b
}

TEST(DataSplit, AppendToEmpty) {
  DataSplit a;
  a.append(make_split(2));
  EXPECT_EQ(a.size(), 2u);
}

TEST(DataSplit, AppendShapeMismatchThrows) {
  DataSplit a = make_split(2, 2);
  const DataSplit b = make_split(2, 3);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(DataSplit, ExampleShapeDropsLeadingDim) {
  DataSplit split;
  split.features = nn::Tensor({4, 1, 8, 8});
  split.labels.resize(4);
  EXPECT_EQ(split.example_shape(),
            (std::vector<std::size_t>{1, 8, 8}));
}

TEST(TrainTestSplit, FractionRespected) {
  Rng rng(1);
  const DataSplit all = make_split(10);
  const auto [train, test] = train_test_split(all, 0.8, rng);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
}

TEST(TrainTestSplit, PartitionsDisjointAndComplete) {
  Rng rng(2);
  const DataSplit all = make_split(10);
  const auto [train, test] = train_test_split(all, 0.7, rng);
  // Feature value at column 0 identifies the original row (i*10).
  std::vector<bool> seen(10, false);
  for (std::size_t i = 0; i < train.size(); ++i) {
    seen[static_cast<std::size_t>(train.features.at(i, 0)) / 10] = true;
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto row = static_cast<std::size_t>(test.features.at(i, 0)) / 10;
    EXPECT_FALSE(seen[row]) << "row in both splits";
    seen[row] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(SampleBatch, SmallerPoolReturnsAll) {
  Rng rng(3);
  const DataSplit split = make_split(3);
  EXPECT_EQ(sample_batch(split, 10, rng).size(), 3u);
}

TEST(SampleBatch, DrawsRequestedCount) {
  Rng rng(3);
  const DataSplit split = make_split(20);
  EXPECT_EQ(sample_batch(split, 5, rng).size(), 5u);
}

TEST(FederatedDataset, StatsAggregation) {
  std::vector<UserData> users(3);
  users[0].train = make_split(8);
  users[0].test = make_split(2);
  users[1].train = make_split(3);
  users[2].train = make_split(20);
  FederatedDataset dataset("test", "MLP", 3, 0.8, std::move(users));

  const DatasetStats stats = dataset.stats();
  EXPECT_EQ(stats.num_users, 3u);
  EXPECT_EQ(stats.total_samples, 33u);
  EXPECT_EQ(stats.min_samples_per_user, 3u);
  EXPECT_EQ(stats.max_samples_per_user, 20u);
  EXPECT_NEAR(stats.mean_samples_per_user, 11.0, 1e-9);
}

TEST(FederatedDataset, FilterMinSamples) {
  std::vector<UserData> users(3);
  users[0].train = make_split(8);
  users[1].train = make_split(3);
  users[2].train = make_split(20);
  FederatedDataset dataset("test", "MLP", 3, 0.8, std::move(users));
  dataset.filter_min_samples(5);
  EXPECT_EQ(dataset.num_users(), 2u);
}

TEST(FederatedDataset, PooledTestConcatenates) {
  std::vector<UserData> users(3);
  users[0].test = make_split(2);
  users[1].test = make_split(3);
  users[2].test = make_split(4);
  FederatedDataset dataset("test", "MLP", 3, 0.8, std::move(users));
  const std::vector<std::size_t> indices = {0, 2};
  EXPECT_EQ(dataset.pooled_test(indices).size(), 6u);
}

TEST(FederatedDataset, EmptyStats) {
  FederatedDataset dataset("empty", "MLP", 2, 0.8, {});
  const DatasetStats stats = dataset.stats();
  EXPECT_EQ(stats.num_users, 0u);
  EXPECT_EQ(stats.min_samples_per_user, 0u);
  EXPECT_EQ(stats.mean_samples_per_user, 0.0);
}

}  // namespace
}  // namespace tanglefl::data
