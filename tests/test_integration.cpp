// End-to-end integration tests: full simulations exercising every layer of
// the stack together, asserting the qualitative results the paper reports
// (at miniature scale so the suite stays fast).
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"

namespace tanglefl {
namespace {

data::FederatedDataset benchmark_dataset() {
  data::FemnistSynthConfig config;
  config.num_users = 24;
  config.num_classes = 5;
  config.image_size = 10;
  config.mean_samples_per_user = 25.0;
  config.seed = 21;
  return data::make_femnist_synth(config);
}

nn::ModelFactory benchmark_factory() {
  nn::ImageCnnConfig config;
  config.image_size = 10;
  config.num_classes = 5;
  config.conv1_channels = 4;
  config.conv2_channels = 8;
  config.hidden = 24;
  return [config] { return nn::make_image_cnn(config); };
}

data::TrainConfig benchmark_training() {
  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.06;
  return config;
}

TEST(Integration, TangleLearnsWellAboveChance) {
  const auto dataset = benchmark_dataset();
  core::SimulationConfig config;
  config.rounds = 30;
  config.nodes_per_round = 6;
  config.eval_every = 30;
  config.eval_nodes_fraction = 0.5;
  config.node.training = benchmark_training();
  config.node.num_tips = 3;
  config.node.tip_sample_size = 6;
  config.node.reference.num_reference_models = 10;
  config.seed = 5;
  const core::RunResult run =
      core::run_tangle_learning(dataset, benchmark_factory(), config);
  // 5 classes: chance is 0.2.
  EXPECT_GT(run.final_accuracy(), 0.4);
}

TEST(Integration, OptimizedTangleTracksFedAvg) {
  const auto dataset = benchmark_dataset();

  fedavg::FedAvgConfig fedavg_config;
  fedavg_config.rounds = 20;
  fedavg_config.clients_per_round = 6;
  fedavg_config.eval_every = 20;
  fedavg_config.eval_nodes_fraction = 0.5;
  fedavg_config.training = benchmark_training();
  fedavg_config.seed = 5;
  const core::RunResult baseline =
      fedavg::run_fedavg(dataset, benchmark_factory(), fedavg_config);

  core::SimulationConfig config;
  config.rounds = 20;
  config.nodes_per_round = 6;
  config.eval_every = 20;
  config.eval_nodes_fraction = 0.5;
  config.node.training = benchmark_training();
  config.node.num_tips = 3;
  config.node.tip_sample_size = 6;
  config.node.reference.num_reference_models = 10;
  config.seed = 5;
  const core::RunResult tangle =
      core::run_tangle_learning(dataset, benchmark_factory(), config);

  // The paper's headline: optimized tangle is comparable to FedAvg. Allow
  // a generous margin at this miniature scale.
  EXPECT_GT(tangle.final_accuracy(), baseline.final_accuracy() - 0.25);
}

TEST(Integration, RobustTipSelectionBeatsBasicUnderPoisoning) {
  // The Section III-E result at miniature scale: with 20% random-weight
  // poisoners, robust tip selection keeps a useful consensus while the
  // basic Algorithm 2 collapses (mirrors examples/poisoning_defense).
  data::FemnistSynthConfig data_config;
  data_config.num_users = 30;
  data_config.num_classes = 5;
  data_config.image_size = 12;
  data_config.mean_samples_per_user = 25.0;
  data_config.seed = 42;
  const auto dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 12;
  model_config.num_classes = 5;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  const auto run_variant = [&](std::size_t sample_size) {
    core::SimulationConfig config;
    config.rounds = 30;
    config.nodes_per_round = 8;
    config.eval_every = 30;
    config.eval_nodes_fraction = 0.4;
    config.node.training.sgd.learning_rate = 0.05;
    config.node.num_tips = 2;
    config.node.tip_sample_size = sample_size;
    config.node.reference.num_reference_models = 5;
    config.attack = core::AttackType::kRandomPoison;
    config.malicious_fraction = 0.2;
    config.attack_start_round = 17;
    config.seed = 42;
    return core::run_tangle_learning(dataset, factory, config);
  };

  const core::RunResult basic = run_variant(2);
  const core::RunResult robust = run_variant(8);
  EXPECT_GT(robust.final_accuracy(), 0.4);
  EXPECT_GT(robust.final_accuracy(), basic.final_accuracy());
}

TEST(Integration, HeavyPoisoningOvertakesConsensus) {
  // The flip side of Fig. 5: beyond the robustness threshold the consensus
  // collapses towards chance.
  const auto dataset = benchmark_dataset();
  core::SimulationConfig config;
  config.rounds = 34;
  config.nodes_per_round = 6;
  config.eval_every = 34;
  config.eval_nodes_fraction = 0.5;
  config.node.training = benchmark_training();
  config.node.num_tips = 2;
  config.node.tip_sample_size = 6;
  config.node.reference.num_reference_models = 10;
  config.attack = core::AttackType::kRandomPoison;
  config.malicious_fraction = 0.45;
  config.attack_start_round = 16;
  config.seed = 5;
  const core::RunResult run =
      core::run_tangle_learning(dataset, benchmark_factory(), config);
  EXPECT_LT(run.final_accuracy(), 0.45);
}

TEST(Integration, PublishRateDropsUnderAttack) {
  // Honest nodes keep publishing under the defence; the sanity check here
  // is simply that the pipeline records the statistic.
  const auto dataset = benchmark_dataset();
  core::SimulationConfig config;
  config.rounds = 10;
  config.nodes_per_round = 6;
  config.eval_every = 5;
  config.node.training = benchmark_training();
  config.seed = 5;
  core::TangleSimulation sim(dataset, benchmark_factory(), config);
  for (std::uint64_t r = 1; r <= 10; ++r) sim.run_round(r);
  const core::RoundRecord record = sim.evaluate(10);
  EXPECT_GE(record.publish_rate, 0.0);
  EXPECT_LE(record.publish_rate, 1.0);
}

TEST(Integration, LedgerDeduplicatesRepublishedModels) {
  // Model store payload count never exceeds transaction count, and is
  // lower when identical parameters are republished.
  const auto dataset = benchmark_dataset();
  core::SimulationConfig config;
  config.rounds = 8;
  config.nodes_per_round = 6;
  config.eval_every = 8;
  config.node.training = benchmark_training();
  config.seed = 5;
  core::TangleSimulation sim(dataset, benchmark_factory(), config);
  for (std::uint64_t r = 1; r <= 8; ++r) sim.run_round(r);
  EXPECT_LE(sim.store().size(), sim.tangle().size());
  EXPECT_GE(sim.store().size(), 1u);
}

}  // namespace
}  // namespace tanglefl
