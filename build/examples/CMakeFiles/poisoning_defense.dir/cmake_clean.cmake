file(REMOVE_RECURSE
  "CMakeFiles/poisoning_defense.dir/poisoning_defense.cpp.o"
  "CMakeFiles/poisoning_defense.dir/poisoning_defense.cpp.o.d"
  "poisoning_defense"
  "poisoning_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoning_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
