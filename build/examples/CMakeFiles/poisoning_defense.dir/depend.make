# Empty dependencies file for poisoning_defense.
# This may be replaced when dependencies are built.
