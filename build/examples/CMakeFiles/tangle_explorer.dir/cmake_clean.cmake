file(REMOVE_RECURSE
  "CMakeFiles/tangle_explorer.dir/tangle_explorer.cpp.o"
  "CMakeFiles/tangle_explorer.dir/tangle_explorer.cpp.o.d"
  "tangle_explorer"
  "tangle_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangle_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
