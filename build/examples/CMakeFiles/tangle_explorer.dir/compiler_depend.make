# Empty compiler generated dependencies file for tangle_explorer.
# This may be replaced when dependencies are built.
