file(REMOVE_RECURSE
  "CMakeFiles/personalized_clusters.dir/personalized_clusters.cpp.o"
  "CMakeFiles/personalized_clusters.dir/personalized_clusters.cpp.o.d"
  "personalized_clusters"
  "personalized_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
