# Empty dependencies file for personalized_clusters.
# This may be replaced when dependencies are built.
