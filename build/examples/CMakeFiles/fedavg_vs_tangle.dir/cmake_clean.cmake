file(REMOVE_RECURSE
  "CMakeFiles/fedavg_vs_tangle.dir/fedavg_vs_tangle.cpp.o"
  "CMakeFiles/fedavg_vs_tangle.dir/fedavg_vs_tangle.cpp.o.d"
  "fedavg_vs_tangle"
  "fedavg_vs_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedavg_vs_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
