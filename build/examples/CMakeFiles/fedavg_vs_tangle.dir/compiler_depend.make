# Empty compiler generated dependencies file for fedavg_vs_tangle.
# This may be replaced when dependencies are built.
