# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--rounds" "4" "--users" "8" "--nodes-per-round" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poisoning_defense "/root/repo/build/examples/poisoning_defense" "--pretrain-rounds" "4" "--attack-rounds" "4")
set_tests_properties(example_poisoning_defense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_model "/root/repo/build/examples/custom_model" "--rounds" "4")
set_tests_properties(example_custom_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tangle_explorer "/root/repo/build/examples/tangle_explorer" "--rounds" "4" "--dot" "/tmp/tanglefl_smoke.dot")
set_tests_properties(example_tangle_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fedavg_vs_tangle "/root/repo/build/examples/fedavg_vs_tangle" "--rounds" "6" "--nodes" "4")
set_tests_properties(example_fedavg_vs_tangle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_personalized_clusters "/root/repo/build/examples/personalized_clusters" "--rounds" "6" "--per-cluster" "5")
set_tests_properties(example_personalized_clusters PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
