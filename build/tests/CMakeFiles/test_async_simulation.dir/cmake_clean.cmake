file(REMOVE_RECURSE
  "CMakeFiles/test_async_simulation.dir/test_async_simulation.cpp.o"
  "CMakeFiles/test_async_simulation.dir/test_async_simulation.cpp.o.d"
  "test_async_simulation"
  "test_async_simulation.pdb"
  "test_async_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
