# Empty dependencies file for test_async_simulation.
# This may be replaced when dependencies are built.
