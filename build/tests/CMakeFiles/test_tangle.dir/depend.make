# Empty dependencies file for test_tangle.
# This may be replaced when dependencies are built.
