file(REMOVE_RECURSE
  "CMakeFiles/test_fedavg.dir/test_fedavg.cpp.o"
  "CMakeFiles/test_fedavg.dir/test_fedavg.cpp.o.d"
  "test_fedavg"
  "test_fedavg.pdb"
  "test_fedavg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fedavg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
