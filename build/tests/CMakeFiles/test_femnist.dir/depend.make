# Empty dependencies file for test_femnist.
# This may be replaced when dependencies are built.
