file(REMOVE_RECURSE
  "CMakeFiles/test_femnist.dir/test_femnist.cpp.o"
  "CMakeFiles/test_femnist.dir/test_femnist.cpp.o.d"
  "test_femnist"
  "test_femnist.pdb"
  "test_femnist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_femnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
