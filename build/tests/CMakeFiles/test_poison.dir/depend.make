# Empty dependencies file for test_poison.
# This may be replaced when dependencies are built.
