file(REMOVE_RECURSE
  "CMakeFiles/test_poison.dir/test_poison.cpp.o"
  "CMakeFiles/test_poison.dir/test_poison.cpp.o.d"
  "test_poison"
  "test_poison.pdb"
  "test_poison[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
