# Empty dependencies file for test_shakespeare.
# This may be replaced when dependencies are built.
