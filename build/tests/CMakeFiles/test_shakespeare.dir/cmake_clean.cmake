file(REMOVE_RECURSE
  "CMakeFiles/test_shakespeare.dir/test_shakespeare.cpp.o"
  "CMakeFiles/test_shakespeare.dir/test_shakespeare.cpp.o.d"
  "test_shakespeare"
  "test_shakespeare.pdb"
  "test_shakespeare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shakespeare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
