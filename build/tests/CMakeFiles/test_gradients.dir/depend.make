# Empty dependencies file for test_gradients.
# This may be replaced when dependencies are built.
