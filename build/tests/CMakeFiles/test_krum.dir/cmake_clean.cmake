file(REMOVE_RECURSE
  "CMakeFiles/test_krum.dir/test_krum.cpp.o"
  "CMakeFiles/test_krum.dir/test_krum.cpp.o.d"
  "test_krum"
  "test_krum.pdb"
  "test_krum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_krum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
