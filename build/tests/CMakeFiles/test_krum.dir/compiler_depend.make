# Empty compiler generated dependencies file for test_krum.
# This may be replaced when dependencies are built.
