file(REMOVE_RECURSE
  "CMakeFiles/test_biased_walk.dir/test_biased_walk.cpp.o"
  "CMakeFiles/test_biased_walk.dir/test_biased_walk.cpp.o.d"
  "test_biased_walk"
  "test_biased_walk.pdb"
  "test_biased_walk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biased_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
