file(REMOVE_RECURSE
  "CMakeFiles/micro_tangle.dir/micro_tangle.cpp.o"
  "CMakeFiles/micro_tangle.dir/micro_tangle.cpp.o.d"
  "micro_tangle"
  "micro_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
