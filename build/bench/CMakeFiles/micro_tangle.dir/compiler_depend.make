# Empty compiler generated dependencies file for micro_tangle.
# This may be replaced when dependencies are built.
