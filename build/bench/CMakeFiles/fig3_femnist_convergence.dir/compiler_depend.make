# Empty compiler generated dependencies file for fig3_femnist_convergence.
# This may be replaced when dependencies are built.
