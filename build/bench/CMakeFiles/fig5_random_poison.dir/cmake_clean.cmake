file(REMOVE_RECURSE
  "CMakeFiles/fig5_random_poison.dir/fig5_random_poison.cpp.o"
  "CMakeFiles/fig5_random_poison.dir/fig5_random_poison.cpp.o.d"
  "fig5_random_poison"
  "fig5_random_poison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_random_poison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
