# Empty compiler generated dependencies file for fig5_random_poison.
# This may be replaced when dependencies are built.
