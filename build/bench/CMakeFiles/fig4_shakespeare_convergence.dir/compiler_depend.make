# Empty compiler generated dependencies file for fig4_shakespeare_convergence.
# This may be replaced when dependencies are built.
