file(REMOVE_RECURSE
  "CMakeFiles/ablation_backdoor.dir/ablation_backdoor.cpp.o"
  "CMakeFiles/ablation_backdoor.dir/ablation_backdoor.cpp.o.d"
  "ablation_backdoor"
  "ablation_backdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
