# Empty dependencies file for ablation_backdoor.
# This may be replaced when dependencies are built.
