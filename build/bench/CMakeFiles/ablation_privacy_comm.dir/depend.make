# Empty dependencies file for ablation_privacy_comm.
# This may be replaced when dependencies are built.
