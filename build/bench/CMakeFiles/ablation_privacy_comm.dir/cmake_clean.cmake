file(REMOVE_RECURSE
  "CMakeFiles/ablation_privacy_comm.dir/ablation_privacy_comm.cpp.o"
  "CMakeFiles/ablation_privacy_comm.dir/ablation_privacy_comm.cpp.o.d"
  "ablation_privacy_comm"
  "ablation_privacy_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_privacy_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
