# Empty dependencies file for fig6_label_flip.
# This may be replaced when dependencies are built.
