file(REMOVE_RECURSE
  "CMakeFiles/fig6_label_flip.dir/fig6_label_flip.cpp.o"
  "CMakeFiles/fig6_label_flip.dir/fig6_label_flip.cpp.o.d"
  "fig6_label_flip"
  "fig6_label_flip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_label_flip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
