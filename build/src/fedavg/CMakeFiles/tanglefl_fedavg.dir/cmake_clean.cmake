file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_fedavg.dir/fedavg.cpp.o"
  "CMakeFiles/tanglefl_fedavg.dir/fedavg.cpp.o.d"
  "CMakeFiles/tanglefl_fedavg.dir/krum.cpp.o"
  "CMakeFiles/tanglefl_fedavg.dir/krum.cpp.o.d"
  "libtanglefl_fedavg.a"
  "libtanglefl_fedavg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_fedavg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
