# Empty dependencies file for tanglefl_fedavg.
# This may be replaced when dependencies are built.
