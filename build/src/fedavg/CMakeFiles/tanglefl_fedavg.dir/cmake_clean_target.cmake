file(REMOVE_RECURSE
  "libtanglefl_fedavg.a"
)
