
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers_basic.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_basic.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_basic.cpp.o.d"
  "/root/repo/src/nn/layers_conv.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_conv.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_conv.cpp.o.d"
  "/root/repo/src/nn/layers_recurrent.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_recurrent.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/layers_recurrent.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/ops.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/ops.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/params.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/params.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/params.cpp.o.d"
  "/root/repo/src/nn/privacy.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/privacy.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/privacy.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/tanglefl_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/tanglefl_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tanglefl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
