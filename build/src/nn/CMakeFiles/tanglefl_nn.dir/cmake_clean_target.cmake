file(REMOVE_RECURSE
  "libtanglefl_nn.a"
)
