# Empty compiler generated dependencies file for tanglefl_nn.
# This may be replaced when dependencies are built.
