file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_nn.dir/layers_basic.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/layers_basic.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/layers_conv.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/layers_conv.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/layers_recurrent.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/layers_recurrent.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/loss.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/model.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/model.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/ops.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/ops.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/params.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/params.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/privacy.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/privacy.cpp.o.d"
  "CMakeFiles/tanglefl_nn.dir/tensor.cpp.o"
  "CMakeFiles/tanglefl_nn.dir/tensor.cpp.o.d"
  "libtanglefl_nn.a"
  "libtanglefl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
