file(REMOVE_RECURSE
  "libtanglefl_support.a"
)
