# Empty compiler generated dependencies file for tanglefl_support.
# This may be replaced when dependencies are built.
