file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_support.dir/cli.cpp.o"
  "CMakeFiles/tanglefl_support.dir/cli.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/log.cpp.o"
  "CMakeFiles/tanglefl_support.dir/log.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/rng.cpp.o"
  "CMakeFiles/tanglefl_support.dir/rng.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/serialize.cpp.o"
  "CMakeFiles/tanglefl_support.dir/serialize.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/sha256.cpp.o"
  "CMakeFiles/tanglefl_support.dir/sha256.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/table.cpp.o"
  "CMakeFiles/tanglefl_support.dir/table.cpp.o.d"
  "CMakeFiles/tanglefl_support.dir/thread_pool.cpp.o"
  "CMakeFiles/tanglefl_support.dir/thread_pool.cpp.o.d"
  "libtanglefl_support.a"
  "libtanglefl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
