# Empty dependencies file for tanglefl_tangle.
# This may be replaced when dependencies are built.
