
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tangle/checkpoint.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/checkpoint.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/checkpoint.cpp.o.d"
  "/root/repo/src/tangle/confidence.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/confidence.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/confidence.cpp.o.d"
  "/root/repo/src/tangle/dot_export.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/dot_export.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/dot_export.cpp.o.d"
  "/root/repo/src/tangle/model_store.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/model_store.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/model_store.cpp.o.d"
  "/root/repo/src/tangle/pow.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/pow.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/pow.cpp.o.d"
  "/root/repo/src/tangle/tangle.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/tangle.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/tangle.cpp.o.d"
  "/root/repo/src/tangle/tip_selection.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/tip_selection.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/tip_selection.cpp.o.d"
  "/root/repo/src/tangle/transaction.cpp" "src/tangle/CMakeFiles/tanglefl_tangle.dir/transaction.cpp.o" "gcc" "src/tangle/CMakeFiles/tanglefl_tangle.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tanglefl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tanglefl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
