file(REMOVE_RECURSE
  "libtanglefl_tangle.a"
)
