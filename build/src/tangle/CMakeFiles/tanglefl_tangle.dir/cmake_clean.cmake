file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_tangle.dir/checkpoint.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/checkpoint.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/confidence.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/confidence.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/dot_export.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/dot_export.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/model_store.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/model_store.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/pow.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/pow.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/tangle.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/tangle.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/tip_selection.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/tip_selection.cpp.o.d"
  "CMakeFiles/tanglefl_tangle.dir/transaction.cpp.o"
  "CMakeFiles/tanglefl_tangle.dir/transaction.cpp.o.d"
  "libtanglefl_tangle.a"
  "libtanglefl_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
