# Empty compiler generated dependencies file for tanglefl_core.
# This may be replaced when dependencies are built.
