
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_simulation.cpp" "src/core/CMakeFiles/tanglefl_core.dir/async_simulation.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/async_simulation.cpp.o.d"
  "/root/repo/src/core/biased_walk.cpp" "src/core/CMakeFiles/tanglefl_core.dir/biased_walk.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/biased_walk.cpp.o.d"
  "/root/repo/src/core/gossip_simulation.cpp" "src/core/CMakeFiles/tanglefl_core.dir/gossip_simulation.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/gossip_simulation.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/tanglefl_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/node.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/core/CMakeFiles/tanglefl_core.dir/reference.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/reference.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/tanglefl_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/tanglefl_core.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tangle/CMakeFiles/tanglefl_tangle.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tanglefl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tanglefl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tanglefl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
