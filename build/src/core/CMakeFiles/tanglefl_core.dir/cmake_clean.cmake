file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_core.dir/async_simulation.cpp.o"
  "CMakeFiles/tanglefl_core.dir/async_simulation.cpp.o.d"
  "CMakeFiles/tanglefl_core.dir/biased_walk.cpp.o"
  "CMakeFiles/tanglefl_core.dir/biased_walk.cpp.o.d"
  "CMakeFiles/tanglefl_core.dir/gossip_simulation.cpp.o"
  "CMakeFiles/tanglefl_core.dir/gossip_simulation.cpp.o.d"
  "CMakeFiles/tanglefl_core.dir/node.cpp.o"
  "CMakeFiles/tanglefl_core.dir/node.cpp.o.d"
  "CMakeFiles/tanglefl_core.dir/reference.cpp.o"
  "CMakeFiles/tanglefl_core.dir/reference.cpp.o.d"
  "CMakeFiles/tanglefl_core.dir/simulation.cpp.o"
  "CMakeFiles/tanglefl_core.dir/simulation.cpp.o.d"
  "libtanglefl_core.a"
  "libtanglefl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
