file(REMOVE_RECURSE
  "libtanglefl_core.a"
)
