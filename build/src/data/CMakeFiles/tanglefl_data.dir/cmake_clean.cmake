file(REMOVE_RECURSE
  "CMakeFiles/tanglefl_data.dir/dataset.cpp.o"
  "CMakeFiles/tanglefl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/tanglefl_data.dir/femnist_synth.cpp.o"
  "CMakeFiles/tanglefl_data.dir/femnist_synth.cpp.o.d"
  "CMakeFiles/tanglefl_data.dir/partition.cpp.o"
  "CMakeFiles/tanglefl_data.dir/partition.cpp.o.d"
  "CMakeFiles/tanglefl_data.dir/poison.cpp.o"
  "CMakeFiles/tanglefl_data.dir/poison.cpp.o.d"
  "CMakeFiles/tanglefl_data.dir/shakespeare_synth.cpp.o"
  "CMakeFiles/tanglefl_data.dir/shakespeare_synth.cpp.o.d"
  "CMakeFiles/tanglefl_data.dir/training.cpp.o"
  "CMakeFiles/tanglefl_data.dir/training.cpp.o.d"
  "libtanglefl_data.a"
  "libtanglefl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tanglefl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
