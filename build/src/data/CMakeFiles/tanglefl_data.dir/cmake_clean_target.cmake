file(REMOVE_RECURSE
  "libtanglefl_data.a"
)
