
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/tanglefl_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/femnist_synth.cpp" "src/data/CMakeFiles/tanglefl_data.dir/femnist_synth.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/femnist_synth.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/tanglefl_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/poison.cpp" "src/data/CMakeFiles/tanglefl_data.dir/poison.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/poison.cpp.o.d"
  "/root/repo/src/data/shakespeare_synth.cpp" "src/data/CMakeFiles/tanglefl_data.dir/shakespeare_synth.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/shakespeare_synth.cpp.o.d"
  "/root/repo/src/data/training.cpp" "src/data/CMakeFiles/tanglefl_data.dir/training.cpp.o" "gcc" "src/data/CMakeFiles/tanglefl_data.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tanglefl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tanglefl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
