# Empty dependencies file for tanglefl_data.
# This may be replaced when dependencies are built.
