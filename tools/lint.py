#!/usr/bin/env python3
"""Project-specific determinism and concurrency lint for tanglefl.

The simulation engine promises bit-identical results for a given master
seed regardless of thread count or scheduling (see the determinism
contract in src/support/thread_pool.hpp and src/support/rng.hpp: every
random decision derives from (seed, node id, round), never from wall
clock, address layout, or scheduling order). This script enforces the
source-level rules that keep that promise true. It is intentionally
line-oriented and dependency-free so it runs anywhere Python 3.8+ does.

Rules (scoped to src/core and src/tangle unless noted):

  banned-random          rand()/srand(), std::random_device,
                         std::mt19937 / default_random_engine, and
                         time-based seeding are forbidden; all randomness
                         must flow through tanglefl::Rng streams.
  unordered-iteration    Range-for iteration over a std::unordered_* — the
                         iteration order depends on hash seeding and
                         allocation history, so any fold over it is
                         nondeterministic. Lookups are fine; iterate a
                         sorted or insertion-ordered structure instead.
  banned-clock           (every linted file outside src/support) Direct
                         std::chrono clock reads (*_clock::now()) are
                         forbidden; go through Stopwatch /
                         Stopwatch::now_micros() so all wall-clock access is
                         confined to src/support and can never leak into
                         deterministic simulation state.
  ops-allocation         (src/nn/ops.cpp only) raw `new`, `malloc`, and
                         Tensor construction are forbidden in the kernel
                         translation unit: kernels run per minibatch, so
                         scratch must come from an ops::Workspace (reused
                         arena), never a fresh heap allocation.
  raw-mutex              (all of src/) std::mutex, std::shared_mutex,
                         std::condition_variable, and the std lock guards
                         (lock_guard/unique_lock/scoped_lock/shared_lock)
                         may appear only in src/support/sync.hpp. Everything
                         else locks through the TSA-annotated wrappers
                         (Mutex/SharedMutex/CondVar/MutexLock/ReaderLock/
                         WriterLock) so Clang's Thread Safety Analysis sees
                         every acquisition.
  unannotated-guard      (all of src/) Inside a class that owns a Mutex or
                         SharedMutex wrapper, every other data member must
                         be TANGLEFL_GUARDED_BY / TANGLEFL_PT_GUARDED_BY
                         annotated, a std::atomic, static/constexpr, or
                         carry a lint:allow(unannotated-guard) comment
                         stating why it needs no lock (immutable after
                         construction, single-thread confined, ...).
  include-order          (all of src/) Each contiguous block of #include
                         directives must be lexicographically sorted, the
                         convention clang-format's include sorter would
                         enforce; keeps diffs clean and makes accidental
                         duplicate includes visible.
  metric-name            (all of src/) Every registry.counter()/gauge()/
                         histogram() registration must pass a string literal
                         matching the lowercase dotted `component.metric`
                         convention ([a-z0-9_] segments joined by '.', at
                         least two segments). Runtime-concatenated names
                         fragment the timeline/report schema and defeat
                         grep; a sanctioned dynamic-name helper carries
                         lint:allow(metric-name) stating why.

The pre-TSA "unlocked-mutation" heuristic (mutating a mutex-sibling field
in a lock-free function body) is retired: with every lock flowing through
the annotated wrappers and every guarded field carrying GUARDED_BY, Clang's
-Wthread-safety proves that property exactly instead of approximately, and
raw-mutex + unannotated-guard keep the annotations load-bearing.

Suppress a finding with a trailing comment naming the rule:
    foo();  // lint:allow(unordered-iteration) reason...
For unannotated-guard the comment may also sit on its own line directly
above the member declaration.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Set

DETERMINISM_DIRS = (
    os.path.join("src", "core"),
    os.path.join("src", "tangle"),
)
CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

BANNED_RANDOM = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:])(?:rand\s*\(\s*\)|srand\s*\()"), "rand()/srand() break seeded reproducibility"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "use tanglefl::Rng streams, not std::mt19937"),
    (re.compile(r"\bstd::default_random_engine\b"), "use tanglefl::Rng streams"),
    (re.compile(r"\bstd::chrono::[a-z_]+_clock::now\b.*seed|seed.*\bstd::chrono::[a-z_]+_clock::now\b"),
     "wall-clock seeding is nondeterministic"),
]

SUPPORT_DIR = os.path.join("src", "support")
SRC_DIR = "src"

# The one file allowed to name the std synchronization primitives.
SYNC_FILE = os.path.join("src", "support", "sync.hpp")

# The kernel translation unit: all scratch must come through ops::Workspace.
OPS_FILE = os.path.join("src", "nn", "ops.cpp")

OPS_ALLOCATION = [
    (re.compile(r"(?<![\w:])new\b"), "raw new in kernel code"),
    (re.compile(r"(?<![\w:])(?:malloc|calloc|realloc)\s*\("),
     "malloc-family allocation in kernel code"),
    # Tensor construction: `Tensor t(...)`, `Tensor t{...}`, `Tensor(...)`.
    # Deliberately does not match `const Tensor&` / `Tensor&` / `Tensor*`
    # parameter declarations.
    (re.compile(r"\bTensor\s+\w+\s*[({]|\bTensor\s*[({]"),
     "Tensor construction in kernel code; take scratch from an "
     "ops::Workspace instead"),
]

BANNED_CLOCK_RE = re.compile(
    r"\b(?:std::chrono::\w+_clock|(?:steady|system|high_resolution)_clock)"
    r"\s*::\s*now\s*\("
)

RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|recursive_timed_mutex|condition_variable|"
    r"condition_variable_any|scoped_lock|lock_guard|unique_lock|"
    r"shared_lock)\b"
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?[\s&*]([\w.\->]+)\s*\)\s*\{?")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')

# A metric registration: `<expr>.counter(` / `.gauge(` / `.histogram(`.
# Matched against stripped code so comments can mention the methods freely;
# the name literal itself is then read back from the raw line because
# strip_comments_and_strings empties string contents.
METRIC_CALL_RE = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")
METRIC_LITERAL_RE = re.compile(r'^"([^"]*)"')

# A member declaration of one of the annotated lock wrappers — the signal
# that a class's fields fall under the unannotated-guard rule. CondVar is a
# sync primitive, not shared state, so it is exempt alongside the locks.
LOCK_MEMBER_RE = re.compile(
    r"^(?:mutable\s+)?(?:tanglefl::)?(?:Mutex|SharedMutex)\s+\w+$"
)
SYNC_PRIMITIVE_MEMBER_RE = re.compile(
    r"^(?:mutable\s+)?(?:tanglefl::)?(?:Mutex|SharedMutex|CondVar)\s+\w+$"
)
GUARD_ANNOTATION_RE = re.compile(r"\bTANGLEFL_(?:PT_)?GUARDED_BY\s*\([^)]*\)")
ACCESS_SPECIFIER_RE = re.compile(r"\b(?:public|private|protected)\s*:(?!:)")
FIELD_NAME_RE = re.compile(
    r"[\w>\]&*]\s+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^{}]*\})?$"
)
CLASS_HEAD_RE = re.compile(r"\b(class|struct)\b[^;={}]*$")
ENUM_HEAD_RE = re.compile(r"\benum\b[^;{}]*$")


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def is_suppressed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def in_determinism_scope(path: str) -> bool:
    norm = os.path.normpath(path)
    return any(d in norm for d in DETERMINISM_DIRS)


def in_src_scope(path: str) -> bool:
    norm = os.path.normpath(path)
    return (SRC_DIR + os.sep) in norm or norm.startswith(SRC_DIR + os.sep)


def is_file(path: str, target: str) -> bool:
    norm = os.path.normpath(path)
    return norm == target or norm.endswith(os.sep + target)


def check_banned_random(path: str, lines: List[str]) -> List[Finding]:
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for pattern, why in BANNED_RANDOM:
            if pattern.search(code) and not is_suppressed(raw, "banned-random"):
                findings.append(Finding(path, lineno, "banned-random", why))
    return findings


def check_banned_clock(path: str, lines: List[str]) -> List[Finding]:
    if SUPPORT_DIR in os.path.normpath(path):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if BANNED_CLOCK_RE.search(code) and not is_suppressed(
            raw, "banned-clock"
        ):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "banned-clock",
                    "direct std::chrono clock read outside src/support; use "
                    "Stopwatch / Stopwatch::now_micros() instead",
                )
            )
    return findings


def check_ops_allocation(path: str, lines: List[str]) -> List[Finding]:
    if not is_file(path, OPS_FILE):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for pattern, why in OPS_ALLOCATION:
            if pattern.search(code) and not is_suppressed(
                raw, "ops-allocation"
            ):
                findings.append(Finding(path, lineno, "ops-allocation", why))
    return findings


def check_raw_mutex(path: str, lines: List[str]) -> List[Finding]:
    """std sync primitives are confined to src/support/sync.hpp."""
    if not in_src_scope(path) or is_file(path, SYNC_FILE):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if RAW_MUTEX_RE.search(code) and not is_suppressed(raw, "raw-mutex"):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "raw-mutex",
                    "std synchronization primitive outside "
                    "src/support/sync.hpp; use the TSA-annotated wrappers "
                    "(Mutex/SharedMutex/CondVar/MutexLock/ReaderLock/"
                    "WriterLock) so Clang's thread-safety analysis sees the "
                    "acquisition",
                )
            )
    return findings


def check_metric_name(path: str, lines: List[str]) -> List[Finding]:
    """Metric registrations use literal lowercase dotted names."""
    if not in_src_scope(path):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = METRIC_CALL_RE.search(code)
        if m is None or is_suppressed(raw, "metric-name"):
            continue
        kind = m.group(1)
        # Read the first argument from the raw text (the stripped line has
        # empty string contents). Wrapped argument lists continue on the
        # following lines.
        raw_m = METRIC_CALL_RE.search(raw)
        tail = raw[raw_m.end():] if raw_m else ""
        join = lineno  # 0-based index of the next line to pull in
        suppressed = False
        while True:
            stripped_tail = tail.lstrip()
            if stripped_tail and not stripped_tail.startswith("//"):
                break
            if join >= len(lines):
                stripped_tail = ""
                break
            tail = lines[join]
            if is_suppressed(tail, "metric-name"):
                suppressed = True
            join += 1
        if suppressed:
            continue
        literal = METRIC_LITERAL_RE.match(stripped_tail)
        if literal is None:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "metric-name",
                    f"{kind}() name is not a string literal; metric names "
                    "must be greppable registered literals (a sanctioned "
                    "dynamic-name helper carries lint:allow(metric-name))",
                )
            )
            continue
        name = literal.group(1)
        if not METRIC_NAME_RE.match(name):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "metric-name",
                    f'metric name "{name}" violates the lowercase dotted '
                    "component.metric convention ([a-z0-9_] segments joined "
                    "by '.', at least two segments)",
                )
            )
    return findings


def check_unordered_iteration(
    path: str, lines: List[str], extra_names: Set[str]
) -> List[Finding]:
    names = collect_unordered_names(lines) | extra_names
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        target = m.group(1).split("->")[-1].split(".")[-1]
        if target in names and not is_suppressed(raw, "unordered-iteration"):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "unordered-iteration",
                    f"range-for over std::unordered_* '{target}' has "
                    "nondeterministic order; iterate a sorted copy or an "
                    "insertion-ordered structure",
                )
            )
    return findings


def collect_unordered_names(lines: List[str]) -> Set[str]:
    names = set()
    for raw in lines:
        for m in UNORDERED_DECL_RE.finditer(strip_comments_and_strings(raw)):
            names.add(m.group(1))
    return names


def check_include_order(path: str, lines: List[str]) -> List[Finding]:
    """Each contiguous #include block must be lexicographically sorted."""
    if not in_src_scope(path):
        return []
    findings = []
    prev: Optional[str] = None
    prev_line = 0
    for lineno, raw in enumerate(lines, 1):
        m = INCLUDE_RE.match(strip_comments_and_strings(raw))
        if not m:
            prev = None  # any non-include line ends the block
            continue
        current = m.group(1)
        if prev is not None and current < prev and not is_suppressed(
            raw, "include-order"
        ):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "include-order",
                    f"include {current} sorts before {prev} (line "
                    f"{prev_line}); keep each include block "
                    "lexicographically sorted",
                )
            )
        prev = current
        prev_line = lineno
    return findings


class _ClassScope:
    """One class/struct body while scanning for unannotated-guard."""

    def __init__(self) -> None:
        self.owns_lock = False
        # (lineno, member name) for members that lack annotation/exemption.
        self.unannotated: List[tuple] = []


def _classify_member(statement: str) -> Optional[str]:
    """Returns the member name if `statement` (annotation-stripped, no
    trailing ';') declares a plain data member, else None."""
    text = statement.strip()
    if not text or "(" in text:
        return None  # function/constructor declaration (or empty)
    first = text.split(None, 1)[0]
    if first in ("using", "typedef", "friend", "static", "constexpr",
                 "enum", "template", "operator", "return"):
        return None
    m = FIELD_NAME_RE.search(text)
    return m.group(1) if m else None


def check_unannotated_guard(path: str, lines: List[str]) -> List[Finding]:
    """Every field of a class owning a Mutex/SharedMutex must be annotated,
    atomic, static, or carry lint:allow(unannotated-guard)."""
    if not in_src_scope(path):
        return []
    findings: List[Finding] = []
    # Scope stack: each entry is a _ClassScope for class bodies or None for
    # any other brace scope (function body, namespace, enum, initializer).
    stack: List[Optional[_ClassScope]] = []
    buffer = ""            # statement text accumulated at the current scope
    buffer_start = 0       # line the current statement began on
    pending_allow = False  # lint:allow on a comment line above the member
    pending_guarded = False
    pending_atomic = False

    def innermost_class() -> Optional[_ClassScope]:
        return stack[-1] if stack and isinstance(stack[-1], _ClassScope) else None

    def finish_statement(end_line: int) -> None:
        nonlocal buffer, pending_allow, pending_guarded, pending_atomic
        scope = innermost_class()
        text = buffer.strip()
        buffer = ""
        allow = pending_allow
        guarded = pending_guarded or bool(GUARD_ANNOTATION_RE.search(text))
        atomic = pending_atomic or "std::atomic" in text
        pending_allow = pending_guarded = pending_atomic = False
        if scope is None or not text:
            return
        stripped = GUARD_ANNOTATION_RE.sub("", text).strip().rstrip(";").strip()
        if SYNC_PRIMITIVE_MEMBER_RE.match(stripped):
            if LOCK_MEMBER_RE.match(stripped):
                scope.owns_lock = True
            return
        name = _classify_member(stripped)
        if name is None:
            return
        if guarded or atomic or allow:
            return
        scope.unannotated.append((end_line, name))

    for lineno, raw in enumerate(lines, 1):
        if is_suppressed(raw, "unannotated-guard"):
            pending_allow = True
        code = strip_comments_and_strings(raw)
        code = ACCESS_SPECIFIER_RE.sub("", code)
        if buffer == "":
            buffer_start = lineno
        for ch in code:
            if ch == "{":
                head = buffer.strip()
                if CLASS_HEAD_RE.search(head) and not ENUM_HEAD_RE.search(head):
                    stack.append(_ClassScope())
                else:
                    stack.append(None)
                buffer = ""
                # annotations seen in a method signature die with the buffer
                pending_guarded = pending_atomic = False
            elif ch == "}":
                buffer = ""
                if stack:
                    closed = stack.pop()
                    if isinstance(closed, _ClassScope) and closed.owns_lock:
                        for member_line, name in closed.unannotated:
                            findings.append(
                                Finding(
                                    path,
                                    member_line,
                                    "unannotated-guard",
                                    f"member '{name}' in a class owning a "
                                    "Mutex/SharedMutex is neither "
                                    "TANGLEFL_GUARDED_BY-annotated, atomic, "
                                    "nor lint:allow(unannotated-guard) "
                                    "justified",
                                )
                            )
            elif ch == ";":
                finish_statement(lineno)
            else:
                buffer += ch
        buffer += " "  # line break separates tokens
    return findings


def lint_file(path: str, header_cache: Dict[str, List[str]]) -> List[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        return [Finding(path, 0, "io-error", str(err))]

    findings: List[Finding] = []

    findings += check_banned_clock(path, lines)
    findings += check_ops_allocation(path, lines)
    findings += check_raw_mutex(path, lines)
    findings += check_unannotated_guard(path, lines)
    findings += check_include_order(path, lines)
    findings += check_metric_name(path, lines)

    if in_determinism_scope(path):
        findings += check_banned_random(path, lines)
        # Names declared in the companion header count too (members used
        # from the .cpp).
        extra: Set[str] = set()
        root, ext = os.path.splitext(path)
        if ext in (".cpp", ".cc", ".cxx"):
            header = root + ".hpp"
            if os.path.exists(header):
                if header not in header_cache:
                    with open(header, encoding="utf-8", errors="replace") as fh:
                        header_cache[header] = fh.read().splitlines()
                extra = collect_unordered_names(header_cache[header])
        findings += check_unordered_iteration(path, lines, extra)

    return findings


def gather_files(paths: List[str]) -> List[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(CXX_EXTENSIONS):
                files.append(p)
        elif os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = [
                    d for d in dirnames
                    if not d.startswith((".", "build")) and d != "CMakeFiles"
                ]
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the success message"
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="also write the findings (or the all-clean line) to this file, "
        "e.g. for upload as a CI artifact",
    )
    args = parser.parse_args()

    header_cache: Dict[str, List[str]] = {}
    findings: List[Finding] = []
    files = gather_files(args.paths)
    for path in files:
        findings += lint_file(path, header_cache)

    report_lines = [
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in sorted(findings)
    ]
    for line in report_lines:
        print(line)
    summary = (
        f"lint.py: {len(findings)} finding(s) in {len(files)} file(s)"
        if findings
        else f"lint.py: OK ({len(files)} files clean)"
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            for line in report_lines:
                fh.write(line + "\n")
            fh.write(summary + "\n")
    if findings:
        print(summary, file=sys.stderr)
        return 1
    if not args.quiet:
        print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
