#!/usr/bin/env python3
"""Project-specific determinism and concurrency lint for tanglefl.

The simulation engine promises bit-identical results for a given master
seed regardless of thread count or scheduling (see the determinism
contract in src/support/thread_pool.hpp and src/support/rng.hpp: every
random decision derives from (seed, node id, round), never from wall
clock, address layout, or scheduling order). This script enforces the
source-level rules that keep that promise true. It is intentionally
line-oriented and dependency-free so it runs anywhere Python 3.8+ does.

Rules (scoped to src/core and src/tangle unless noted):

  banned-random          rand()/srand(), std::random_device,
                         std::mt19937 / default_random_engine, and
                         time-based seeding are forbidden; all randomness
                         must flow through tanglefl::Rng streams.
  unordered-iteration    Range-for iteration over a std::unordered_* — the
                         iteration order depends on hash seeding and
                         allocation history, so any fold over it is
                         nondeterministic. Lookups are fine; iterate a
                         sorted or insertion-ordered structure instead.
  unlocked-mutation      (any file that #includes <thread>) A member field
                         that is a sibling of a std::mutex/shared_mutex in
                         its class is mutated in a function body that never
                         acquires a lock. Heuristic, but catches the "wrote
                         to the queue outside the lock" class of race.
  banned-clock           (every linted file outside src/support) Direct
                         std::chrono clock reads (*_clock::now()) are
                         forbidden; go through Stopwatch /
                         Stopwatch::now_micros() so all wall-clock access is
                         confined to src/support and can never leak into
                         deterministic simulation state.
  ops-allocation         (src/nn/ops.cpp only) raw `new`, `malloc`, and
                         Tensor construction are forbidden in the kernel
                         translation unit: kernels run per minibatch, so
                         scratch must come from an ops::Workspace (reused
                         arena), never a fresh heap allocation.

Suppress a finding with a trailing comment naming the rule:
    foo();  // lint:allow(unordered-iteration) reason...

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Set

DETERMINISM_DIRS = (
    os.path.join("src", "core"),
    os.path.join("src", "tangle"),
)
CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

BANNED_RANDOM = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:])(?:rand\s*\(\s*\)|srand\s*\()"), "rand()/srand() break seeded reproducibility"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "use tanglefl::Rng streams, not std::mt19937"),
    (re.compile(r"\bstd::default_random_engine\b"), "use tanglefl::Rng streams"),
    (re.compile(r"\bstd::chrono::[a-z_]+_clock::now\b.*seed|seed.*\bstd::chrono::[a-z_]+_clock::now\b"),
     "wall-clock seeding is nondeterministic"),
]

SUPPORT_DIR = os.path.join("src", "support")

# The kernel translation unit: all scratch must come through ops::Workspace.
OPS_FILE = os.path.join("src", "nn", "ops.cpp")

OPS_ALLOCATION = [
    (re.compile(r"(?<![\w:])new\b"), "raw new in kernel code"),
    (re.compile(r"(?<![\w:])(?:malloc|calloc|realloc)\s*\("),
     "malloc-family allocation in kernel code"),
    # Tensor construction: `Tensor t(...)`, `Tensor t{...}`, `Tensor(...)`.
    # Deliberately does not match `const Tensor&` / `Tensor&` / `Tensor*`
    # parameter declarations.
    (re.compile(r"\bTensor\s+\w+\s*[({]|\bTensor\s*[({]"),
     "Tensor construction in kernel code; take scratch from an "
     "ops::Workspace instead"),
]

BANNED_CLOCK_RE = re.compile(
    r"\b(?:std::chrono::\w+_clock|(?:steady|system|high_resolution)_clock)"
    r"\s*::\s*now\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?[\s&*]([\w.\->]+)\s*\)\s*\{?")

MUTEX_MEMBER_RE = re.compile(
    r"(?:mutable\s+)?std::(?:shared_|recursive_)?mutex\s+(\w+)\s*;"
)
MEMBER_DECL_RE = re.compile(r"^\s*(?:mutable\s+)?[\w:<>,\s*&]+?\s(\w+_)\s*(?:=[^;]*)?;\s*(?://.*)?$")
LOCK_RE = re.compile(
    r"\bstd::(?:scoped_lock|unique_lock|lock_guard|shared_lock)\b"
)


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def is_suppressed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def in_determinism_scope(path: str) -> bool:
    norm = os.path.normpath(path)
    return any(d in norm for d in DETERMINISM_DIRS)


def check_banned_random(path: str, lines: List[str]) -> List[Finding]:
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for pattern, why in BANNED_RANDOM:
            if pattern.search(code) and not is_suppressed(raw, "banned-random"):
                findings.append(Finding(path, lineno, "banned-random", why))
    return findings


def check_banned_clock(path: str, lines: List[str]) -> List[Finding]:
    if SUPPORT_DIR in os.path.normpath(path):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if BANNED_CLOCK_RE.search(code) and not is_suppressed(
            raw, "banned-clock"
        ):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "banned-clock",
                    "direct std::chrono clock read outside src/support; use "
                    "Stopwatch / Stopwatch::now_micros() instead",
                )
            )
    return findings


def check_ops_allocation(path: str, lines: List[str]) -> List[Finding]:
    if os.path.normpath(path) != OPS_FILE and not os.path.normpath(
        path
    ).endswith(os.sep + OPS_FILE):
        return []
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for pattern, why in OPS_ALLOCATION:
            if pattern.search(code) and not is_suppressed(
                raw, "ops-allocation"
            ):
                findings.append(Finding(path, lineno, "ops-allocation", why))
    return findings


def collect_unordered_names(lines: List[str]) -> Set[str]:
    names = set()
    for raw in lines:
        for m in UNORDERED_DECL_RE.finditer(strip_comments_and_strings(raw)):
            names.add(m.group(1))
    return names


def check_unordered_iteration(
    path: str, lines: List[str], extra_names: Set[str]
) -> List[Finding]:
    names = collect_unordered_names(lines) | extra_names
    findings = []
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        target = m.group(1).split("->")[-1].split(".")[-1]
        if target in names and not is_suppressed(raw, "unordered-iteration"):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "unordered-iteration",
                    f"range-for over std::unordered_* '{target}' has "
                    "nondeterministic order; iterate a sorted copy or an "
                    "insertion-ordered structure",
                )
            )
    return findings


def guarded_members(header_lines: List[str]) -> Set[str]:
    """Member fields declared in any class that also declares a mutex.

    Heuristic: within a class body that contains a std::*mutex member, every
    other `name_;` member is considered guarded by it unless its declaration
    carries a lint:allow(unlocked-mutation) comment (for members that are
    atomic, immutable after construction, or confined to one thread).
    """
    guarded: Set[str] = set()
    text = "\n".join(header_lines)
    # Split on class/struct boundaries; good enough for this codebase's
    # one-class-per-header style.
    for chunk in re.split(r"\b(?:class|struct)\s+\w+", text)[1:]:
        mutexes = MUTEX_MEMBER_RE.findall(chunk)
        if not mutexes:
            continue
        for line in chunk.splitlines():
            if "lint:allow(unlocked-mutation)" in line:
                continue
            if "std::atomic" in line or "static " in line.lstrip():
                continue
            dm = MEMBER_DECL_RE.match(line)
            if dm and dm.group(1) not in mutexes:
                guarded.add(dm.group(1))
    return guarded


MUTATION_RE_TEMPLATE = (
    r"(?:\b{name}\s*(?:=[^=]|\+=|-=|\*=|/=)"  # assignment
    r"|\b{name}\s*\.\s*(?:push|pop|emplace|insert|erase|clear|resize|assign|swap)\w*\s*\("
    r"|\+\+\s*{name}\b|--\s*{name}\b|\b{name}\s*\+\+|\b{name}\s*--)"
)


def function_bodies(lines: List[str]):
    """Yields (start_line, body_lines) for each top-level brace block that
    looks like a function definition. Heuristic brace matching."""
    i = 0
    n = len(lines)
    while i < n:
        code = strip_comments_and_strings(lines[i])
        if re.search(r"\)\s*(const)?\s*(noexcept)?\s*\{", code) and not re.match(
            r"\s*(if|for|while|switch|catch)\b", code
        ):
            depth = code.count("{") - code.count("}")
            start = i
            body = [lines[i]]
            i += 1
            while i < n and depth > 0:
                c = strip_comments_and_strings(lines[i])
                depth += c.count("{") - c.count("}")
                body.append(lines[i])
                i += 1
            yield start + 1, body
        else:
            i += 1


def check_unlocked_mutation(
    path: str, lines: List[str], guarded: Set[str]
) -> List[Finding]:
    if not guarded:
        return []
    findings = []
    mutation_res = {
        name: re.compile(MUTATION_RE_TEMPLATE.format(name=re.escape(name)))
        for name in guarded
    }
    for start, body in function_bodies(lines):
        body_code = [strip_comments_and_strings(l) for l in body]
        holds_lock = any(LOCK_RE.search(c) for c in body_code)
        if holds_lock:
            continue
        for offset, (raw, code) in enumerate(zip(body, body_code)):
            for name, pattern in mutation_res.items():
                if pattern.search(code) and not is_suppressed(
                    raw, "unlocked-mutation"
                ):
                    findings.append(
                        Finding(
                            path,
                            start + offset,
                            "unlocked-mutation",
                            f"'{name}' is guarded by a mutex in its class "
                            "but this function mutates it without acquiring "
                            "a lock",
                        )
                    )
    return findings


def lint_file(path: str, header_cache: Dict[str, List[str]]) -> List[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        return [Finding(path, 0, "io-error", str(err))]

    findings: List[Finding] = []

    findings += check_banned_clock(path, lines)
    findings += check_ops_allocation(path, lines)

    if in_determinism_scope(path):
        findings += check_banned_random(path, lines)
        # Names declared in the companion header count too (members used
        # from the .cpp).
        extra: Set[str] = set()
        root, ext = os.path.splitext(path)
        if ext in (".cpp", ".cc", ".cxx"):
            header = root + ".hpp"
            if os.path.exists(header):
                if header not in header_cache:
                    with open(header, encoding="utf-8", errors="replace") as fh:
                        header_cache[header] = fh.read().splitlines()
                extra = collect_unordered_names(header_cache[header])
        findings += check_unordered_iteration(path, lines, extra)

    joined = "\n".join(strip_comments_and_strings(l) for l in lines)
    if re.search(r'#\s*include\s*<thread>', joined):
        root, ext = os.path.splitext(path)
        guard_sources = [lines]
        if ext in (".cpp", ".cc", ".cxx") and os.path.exists(root + ".hpp"):
            header = root + ".hpp"
            if header not in header_cache:
                with open(header, encoding="utf-8", errors="replace") as fh:
                    header_cache[header] = fh.read().splitlines()
            guard_sources.append(header_cache[header])
        guarded: Set[str] = set()
        for src in guard_sources:
            guarded |= guarded_members(src)
        findings += check_unlocked_mutation(path, lines, guarded)
    elif ext_includes_thread_via_header(path, header_cache):
        root, _ = os.path.splitext(path)
        header = root + ".hpp"
        guarded = guarded_members(header_cache[header])
        findings += check_unlocked_mutation(path, lines, guarded)

    return findings


def ext_includes_thread_via_header(
    path: str, header_cache: Dict[str, List[str]]
) -> bool:
    root, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return False
    header = root + ".hpp"
    if not os.path.exists(header):
        return False
    if header not in header_cache:
        with open(header, encoding="utf-8", errors="replace") as fh:
            header_cache[header] = fh.read().splitlines()
    return any(
        re.search(r'#\s*include\s*<thread>', strip_comments_and_strings(l))
        for l in header_cache[header]
    )


def gather_files(paths: List[str]) -> List[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(CXX_EXTENSIONS):
                files.append(p)
        elif os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = [
                    d for d in dirnames
                    if not d.startswith((".", "build")) and d != "CMakeFiles"
                ]
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the success message"
    )
    args = parser.parse_args()

    header_cache: Dict[str, List[str]] = {}
    findings: List[Finding] = []
    files = gather_files(args.paths)
    for path in files:
        findings += lint_file(path, header_cache)

    for f in sorted(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
