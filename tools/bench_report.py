#!/usr/bin/env python3
"""Perf-regression reporting for the tanglefl bench harnesses.

Distills run manifests (the ``--metrics-json`` output of every harness,
or ``TANGLEFL_METRICS_JSON`` for the google-benchmark micro benches) and
per-round timelines (``--timeline`` JSONL) into one compact report, and
compares reports against a committed baseline with per-metric tolerance
bands. Standard library only, so it runs in CI and on any checkout.

Subcommands:

  build     --out BENCH_7.json --run MANIFEST[:TIMELINE] [--run ...]
            One report entry per harness run: headline wall time, named
            phase times, the deterministic key counters (eval/cache/gemm/
            train/tip-walk), and — when a timeline rides along — the round
            count and final tangle-health row per labelled engine run.

  compare   --report BENCH_7.json --baseline bench/baselines/...json
            [--wall-tolerance 0.25] [--counter-tolerance 0.25]
            Exit 1 when a run's wall time regresses past the tolerance,
            a baseline counter drifts past its band, or a baseline
            timeline value (deterministic, so compared exactly) changed.
            Improvements are reported but never fail. Baseline entries
            list only the metrics they want gated: micro-bench counters
            scale with the benchmark iteration count, so their baselines
            carry wall time only, while single-thread fig runs can pin
            deterministic counters and final health stats exactly.

  validate  PATH [PATH ...]
            Schema-check emitted artifacts: ``.json`` files must parse to
            an object; ``.jsonl`` timeline files must hold one object per
            line with "round" then "run" first and the remaining series
            keys sorted (the determinism contract for timeline output).

Exit status: 0 clean, 1 regression/validation failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA = "tanglefl-bench-report-v1"

# Deterministic work counters worth tracking release-over-release. Only
# those present in a manifest are copied into the report.
KEY_COUNTERS = (
    "eval.cache.hit",
    "eval.cache.miss",
    "eval.forwards",
    "eval.examples",
    "eval.batched.groups",
    "eval.batched.models",
    "eval.batched.pack_reuses",
    "nn.gemm.flops",
    "nn.conv.flops",
    "train.batches",
    "tangle.tip_walk.count",
    "tangle.cone_recompute.count",
    "tangle.cones.incremental.builds",
    "tangle.cones.incremental.appended",
    "tangle.prune.milestones",
    "tangle.prune.payloads_released",
    "tangle.transactions.added",
    "ledger.codec.payloads",
    "ledger.codec.raw_bytes",
    "ledger.codec.encoded_bytes",
    "ledger.codec.chunks",
    "ledger.codec.chunk_dedup_hits",
)

# Final-row timeline series summarizing DAG health at the end of a run.
HEALTH_SERIES = (
    "tangle.health.tip_count",
    "tangle.health.orphan_count",
    "tangle.health.orphan_rate",
    "tangle.health.confirmed_count",
    "tangle.health.depth_mean",
    "sim.ledger_bytes",
)


def fail(message: str) -> None:
    print(f"bench_report.py: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {path}: {err}")


def read_timeline(path: str) -> Dict[str, dict]:
    """JSONL -> {run label: {"rounds": N, "final": {series: value}}}."""
    per_run: Dict[str, dict] = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as err:
                    fail(f"{path}:{lineno}: bad JSONL row: {err}")
                label = str(row.get("run", ""))
                entry = per_run.setdefault(label, {"rounds": 0, "final": {}})
                entry["rounds"] += 1
                entry["final"] = {
                    key: row[key] for key in HEALTH_SERIES if key in row
                }
    except OSError as err:
        fail(f"cannot read timeline {path}: {err}")
    return per_run


def build_entry(manifest_path: str, timeline_path: Optional[str]) -> dict:
    manifest = load_json(manifest_path)
    for key in ("name", "total_seconds"):
        if key not in manifest:
            fail(f"{manifest_path}: manifest missing '{key}'")
    counters = manifest.get("metrics", {}).get("counters", {})
    entry = {
        "manifest": manifest_path,
        "seed": manifest.get("seed", 0),
        "git": manifest.get("git", "unknown"),
        "total_seconds": manifest["total_seconds"],
        "phases_seconds": manifest.get("phases_seconds", {}),
        "counters": {k: counters[k] for k in KEY_COUNTERS if k in counters},
    }
    if timeline_path:
        entry["timeline"] = read_timeline(timeline_path)
    return entry


def cmd_build(args: argparse.Namespace) -> int:
    runs: Dict[str, dict] = {}
    for spec in args.run:
        manifest_path, _, timeline_path = spec.partition(":")
        entry = build_entry(manifest_path, timeline_path or None)
        name = load_json(manifest_path)["name"]
        if name in runs:
            fail(f"duplicate run name '{name}' (from {manifest_path})")
        runs[name] = entry
    report = {"schema": SCHEMA, "runs": runs}
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"bench_report.py: wrote {args.out} ({len(runs)} run(s))")
    return 0


def relative_delta(current: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - reference) / reference


class Comparison:
    def __init__(self) -> None:
        self.failures: List[str] = []
        self.notes: List[str] = []

    def check_band(self, what: str, current: float, reference: float,
                   tolerance: float) -> None:
        delta = relative_delta(current, reference)
        line = (f"{what}: {current:g} vs baseline {reference:g} "
                f"({delta:+.1%}, tolerance ±{tolerance:.0%})")
        if abs(delta) > tolerance:
            # Faster/smaller than baseline is worth a look but not a gate.
            if delta < 0:
                self.notes.append("IMPROVED " + line)
            else:
                self.failures.append("REGRESSED " + line)
        else:
            self.notes.append("ok " + line)

    def check_exact(self, what: str, current, reference) -> None:
        if current != reference:
            self.failures.append(
                f"DRIFTED {what}: {current!r} vs baseline {reference!r} "
                "(deterministic value; expected exact match)"
            )
        else:
            self.notes.append(f"ok {what}: {current!r} (exact)")


def cmd_compare(args: argparse.Namespace) -> int:
    report = load_json(args.report)
    baseline = load_json(args.baseline)
    for doc, path in ((report, args.report), (baseline, args.baseline)):
        if doc.get("schema") != SCHEMA:
            fail(f"{path}: expected schema '{SCHEMA}', "
                 f"got {doc.get('schema')!r}")

    result = Comparison()
    for name, base in sorted(baseline["runs"].items()):
        current = report["runs"].get(name)
        if current is None:
            result.failures.append(f"MISSING run '{name}' absent from report")
            continue
        tolerance = base.get("wall_tolerance", args.wall_tolerance)
        result.check_band(f"{name}.total_seconds",
                          current["total_seconds"], base["total_seconds"],
                          tolerance)
        for counter, reference in sorted(base.get("counters", {}).items()):
            value = current.get("counters", {}).get(counter)
            if value is None:
                result.failures.append(
                    f"MISSING {name}.counters.{counter} absent from report")
                continue
            result.check_band(f"{name}.counters.{counter}", value, reference,
                              args.counter_tolerance)
        for label, base_run in sorted(base.get("timeline", {}).items()):
            cur_run = current.get("timeline", {}).get(label)
            if cur_run is None:
                result.failures.append(
                    f"MISSING {name}.timeline['{label}'] absent from report")
                continue
            result.check_exact(f"{name}.timeline['{label}'].rounds",
                               cur_run.get("rounds"), base_run.get("rounds"))
            for series, reference in sorted(
                    base_run.get("final", {}).items()):
                result.check_exact(
                    f"{name}.timeline['{label}'].final.{series}",
                    cur_run.get("final", {}).get(series), reference)

    for line in result.notes:
        print(line)
    for line in result.failures:
        print(line)
    verdict = (f"bench_report.py: {len(result.failures)} failure(s), "
               f"{len(result.notes)} check(s) passed")
    print(verdict, file=sys.stderr if result.failures else sys.stdout)
    return 1 if result.failures else 0


def validate_jsonl(path: str) -> List[str]:
    problems = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                problems.append(f"{path}:{lineno}: blank line")
                continue
            try:
                pairs: List[Tuple[str, object]] = json.loads(
                    line, object_pairs_hook=lambda kv: kv)
            except json.JSONDecodeError as err:
                problems.append(f"{path}:{lineno}: {err}")
                continue
            keys = [k for k, _ in pairs]
            if keys[:2] != ["round", "run"]:
                problems.append(
                    f"{path}:{lineno}: row must start with 'round','run' "
                    f"(got {keys[:2]})")
            series = keys[2:]
            if series != sorted(series):
                problems.append(
                    f"{path}:{lineno}: series keys not sorted")
    return problems


def cmd_validate(args: argparse.Namespace) -> int:
    problems: List[str] = []
    for path in args.paths:
        try:
            if path.endswith(".jsonl"):
                problems += validate_jsonl(path)
            else:
                doc = load_json(path)
                if not isinstance(doc, dict):
                    problems.append(f"{path}: top level is not an object")
        except OSError as err:
            problems.append(f"{path}: {err}")
    for line in problems:
        print(line)
    if problems:
        print(f"bench_report.py: {len(problems)} validation problem(s)",
              file=sys.stderr)
        return 1
    print(f"bench_report.py: {len(args.paths)} artifact(s) valid")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="distill manifests into a report")
    build.add_argument("--out", required=True,
                       help="report output path ('-' for stdout)")
    build.add_argument("--run", action="append", required=True,
                       metavar="MANIFEST[:TIMELINE]",
                       help="manifest JSON, optionally with its timeline "
                       "JSONL after a colon (repeatable)")
    build.set_defaults(func=cmd_build)

    compare = sub.add_parser("compare", help="gate a report on a baseline")
    compare.add_argument("--report", required=True)
    compare.add_argument("--baseline", required=True)
    compare.add_argument("--wall-tolerance", type=float, default=0.25,
                         help="relative wall-time band (default 0.25); a "
                         "baseline entry may override via wall_tolerance")
    compare.add_argument("--counter-tolerance", type=float, default=0.25,
                         help="relative band for baseline counters "
                         "(default 0.25)")
    compare.set_defaults(func=cmd_compare)

    validate = sub.add_parser("validate", help="schema-check artifacts")
    validate.add_argument("paths", nargs="+")
    validate.set_defaults(func=cmd_validate)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
