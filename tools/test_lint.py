#!/usr/bin/env python3
"""Self-test for tools/lint.py: per-rule fixtures that must fire on bad
code, stay quiet on good code, and honor lint:allow suppressions.

Runs with the standard library only (unittest + tempfile); registered with
CTest as `lint_selftest` so a lint rule can never rot silently — if a regex
or the unannotated-guard scanner stops matching, this test fails before the
real lint quietly passes everything.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import tempfile
import unittest

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "tanglefl_lint", os.path.join(_TOOLS_DIR, "lint.py")
)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


class LintFixtureTest(unittest.TestCase):
    """Base: writes fixture files into a fake source tree and lints them."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_selftest_")
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath: str, content: str) -> str:
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        return path

    def findings(self, relpath: str, content: str, rule: str = None):
        path = self.write(relpath, content)
        found = lint.lint_file(path, {})
        if rule is not None:
            found = [f for f in found if f.rule == rule]
        return found

    def assert_fires(self, relpath, content, rule, count=1):
        found = self.findings(relpath, content, rule)
        self.assertEqual(
            len(found), count,
            f"expected {count} {rule} finding(s), got {found}",
        )

    def assert_quiet(self, relpath, content, rule):
        found = self.findings(relpath, content, rule)
        self.assertEqual(len(found), 0, f"expected no {rule} findings, got {found}")


class RawMutexTest(LintFixtureTest):
    def test_fires_on_std_mutex_member(self):
        self.assert_fires(
            "src/tangle/store.hpp",
            "class Store {\n  std::mutex mutex_;\n};\n",
            "raw-mutex",
        )

    def test_fires_on_lock_guard_and_condition_variable(self):
        self.assert_fires(
            "src/core/engine.cpp",
            "void f() {\n"
            "  std::lock_guard<std::mutex> lock(m_);\n"
            "  std::condition_variable cv;\n"
            "}\n",
            "raw-mutex",
            count=2,
        )

    def test_fires_on_unique_and_shared_lock(self):
        self.assert_fires(
            "src/core/engine.cpp",
            "std::unique_lock<std::shared_mutex> lock(m_);\n"
            "std::shared_lock<std::shared_mutex> rlock(m_);\n",
            "raw-mutex",
            count=2,
        )

    def test_quiet_in_sync_hpp(self):
        self.assert_quiet(
            "src/support/sync.hpp",
            "class Mutex {\n  std::mutex raw_;\n};\n",
            "raw-mutex",
        )

    def test_quiet_outside_src(self):
        self.assert_quiet(
            "tests/test_foo.cpp",
            "std::mutex m;\n",
            "raw-mutex",
        )

    def test_quiet_on_wrappers(self):
        self.assert_quiet(
            "src/tangle/store.hpp",
            "class Store {\n  mutable Mutex mutex_;\n  MutexLock g(mutex_);\n};\n",
            "raw-mutex",
        )

    def test_respects_allow(self):
        self.assert_quiet(
            "src/core/engine.cpp",
            "std::mutex m;  // lint:allow(raw-mutex) interop with legacy API\n",
            "raw-mutex",
        )

    def test_comment_mention_does_not_fire(self):
        self.assert_quiet(
            "src/core/engine.cpp",
            "// wraps std::mutex under the hood\n",
            "raw-mutex",
        )


class UnannotatedGuardTest(LintFixtureTest):
    def test_fires_on_bare_member_next_to_mutex(self):
        self.assert_fires(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            " private:\n"
            "  mutable Mutex mutex_;\n"
            "  std::vector<int> slots_;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_quiet_when_annotated(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            "  mutable Mutex mutex_;\n"
            "  std::vector<int> slots_ TANGLEFL_GUARDED_BY(mutex_);\n"
            "  const Tangle* tangle_ TANGLEFL_PT_GUARDED_BY(mutex_) = nullptr;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_quiet_on_atomic_static_and_sync_members(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            "  static constexpr std::size_t kShards = 4;\n"
            "  mutable SharedMutex mutex_;\n"
            "  CondVar cv_;\n"
            "  std::atomic<bool> done_{false};\n"
            "  std::uint64_t tick_ TANGLEFL_GUARDED_BY(mutex_) = 0;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_respects_trailing_allow(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            "  Mutex mutex_;\n"
            "  const std::size_t capacity_;"
            "  // lint:allow(unannotated-guard) immutable\n"
            "};\n",
            "unannotated-guard",
        )

    def test_respects_allow_on_preceding_line(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            "  Mutex mutex_;\n"
            "  // lint:allow(unannotated-guard) set once in ctor, joined in\n"
            "  // shutdown, never mutated in between.\n"
            "  std::vector<std::thread> workers_;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_quiet_when_no_lock_owned(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Plain {\n"
            "  std::vector<int> values_;\n"
            "  std::size_t count_ = 0;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_nested_struct_fields_scored_separately(self):
        # The nested lock-free struct's fields must not fire, while the
        # outer class's bare member after the nested scope closes must.
        self.assert_fires(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            "  struct Slot {\n"
            "    std::shared_ptr<const Entry> entry;\n"
            "    std::uint64_t last_used = 0;\n"
            "  };\n"
            "  mutable Mutex mutex_;\n"
            "  std::vector<Slot> slots_;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_nested_struct_with_own_lock(self):
        self.assert_fires(
            "src/core/engine.hpp",
            "class Engine {\n"
            "  struct Shard {\n"
            "    mutable SharedMutex mutex;\n"
            "    std::map<int, int> results;\n"
            "  };\n"
            "  std::array<Shard, 4> shards_{};"
            "  // lint:allow(unannotated-guard) elements self-guarded\n"
            "};\n",
            "unannotated-guard",
        )

    def test_methods_and_inline_bodies_ignored(self):
        self.assert_quiet(
            "src/tangle/cache.hpp",
            "class Cache {\n"
            " public:\n"
            "  std::size_t size() const;\n"
            "  void clear() { int dropped = 0; (void)dropped; }\n"
            "  Cache& operator=(const Cache&) = delete;\n"
            " private:\n"
            "  mutable Mutex mutex_;\n"
            "  std::size_t count_ TANGLEFL_GUARDED_BY(mutex_) = 0;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_enum_class_is_not_a_class_scope(self):
        self.assert_quiet(
            "src/support/level.hpp",
            "enum class Level { kInfo, kWarn };\n"
            "class Holder {\n"
            "  Mutex mutex_;\n"
            "  Level level_ TANGLEFL_GUARDED_BY(mutex_) = Level::kInfo;\n"
            "};\n",
            "unannotated-guard",
        )

    def test_multiline_annotated_declaration(self):
        self.assert_quiet(
            "src/tangle/store.hpp",
            "class Store {\n"
            "  mutable SharedMutex mutex_;\n"
            "  std::unordered_map<std::string, int> by_hash_\n"
            "      TANGLEFL_GUARDED_BY(mutex_);\n"
            "};\n",
            "unannotated-guard",
        )


class IncludeOrderTest(LintFixtureTest):
    def test_fires_on_unsorted_block(self):
        self.assert_fires(
            "src/core/engine.cpp",
            '#include <vector>\n#include <memory>\n',
            "include-order",
        )

    def test_quiet_on_sorted_blocks(self):
        self.assert_quiet(
            "src/core/engine.cpp",
            '#include "core/engine.hpp"\n'
            "\n"
            "#include <memory>\n"
            "#include <vector>\n"
            "\n"
            '#include "support/log.hpp"\n'
            '#include "support/sync.hpp"\n',
            "include-order",
        )

    def test_blank_line_resets_block(self):
        # The own-header-first convention relies on blank lines splitting
        # blocks: "core/engine.hpp" before <vector> is fine across a break.
        self.assert_quiet(
            "src/core/engine.cpp",
            '#include "core/engine.hpp"\n\n#include <vector>\n',
            "include-order",
        )

    def test_respects_allow(self):
        self.assert_quiet(
            "src/core/engine.cpp",
            "#include <vector>\n"
            "#include <memory>  // lint:allow(include-order) must follow\n",
            "include-order",
        )

    def test_quiet_outside_src(self):
        self.assert_quiet(
            "bench/bench_foo.cpp",
            "#include <vector>\n#include <memory>\n",
            "include-order",
        )


class DeterminismRulesTest(LintFixtureTest):
    def test_banned_random_fires_in_core(self):
        self.assert_fires(
            "src/core/sim.cpp", "std::mt19937 gen(42);\n", "banned-random"
        )

    def test_banned_random_quiet_in_support(self):
        self.assert_quiet(
            "src/support/rng.cpp", "std::mt19937 gen(42);\n", "banned-random"
        )

    def test_banned_clock_fires_outside_support(self):
        self.assert_fires(
            "src/tangle/node.cpp",
            "auto t = std::chrono::steady_clock::now();\n",
            "banned-clock",
        )

    def test_banned_clock_quiet_in_support(self):
        self.assert_quiet(
            "src/support/stopwatch.cpp",
            "auto t = std::chrono::steady_clock::now();\n",
            "banned-clock",
        )

    def test_unordered_iteration_fires(self):
        self.assert_fires(
            "src/core/sim.cpp",
            "std::unordered_map<int, int> scores_;\n"
            "void f() {\n"
            "  for (const auto& kv : scores_) { (void)kv; }\n"
            "}\n",
            "unordered-iteration",
        )

    def test_unordered_iteration_respects_allow(self):
        self.assert_quiet(
            "src/core/sim.cpp",
            "std::unordered_map<int, int> scores_;\n"
            "void f() {\n"
            "  for (const auto& kv : scores_) { }"
            "  // lint:allow(unordered-iteration) order-independent fold\n"
            "}\n",
            "unordered-iteration",
        )

    def test_ops_allocation_fires_only_in_ops_cpp(self):
        bad = "void f() { float* p = new float[8]; (void)p; }\n"
        self.assert_fires("src/nn/ops.cpp", bad, "ops-allocation")
        self.assert_quiet("src/nn/layers.cpp", bad, "ops-allocation")


class MetricNameTest(LintFixtureTest):
    def test_quiet_on_conventional_names(self):
        self.assert_quiet(
            "src/core/sim.cpp",
            'auto& c = obs::MetricsRegistry::global().counter("sim.rounds");\n'
            'auto& g = registry.gauge("tangle.health.tip_count");\n'
            'auto& h = registry.histogram("nn.gemm.dims", layout);\n',
            "metric-name",
        )

    def test_fires_on_bad_casing_and_shape(self):
        self.assert_fires(
            "src/core/sim.cpp",
            'auto& c = registry.counter("SimRounds");\n'
            'auto& g = registry.gauge("single_segment");\n'
            'auto& h = registry.histogram("sim..rounds");\n',
            "metric-name",
            count=3,
        )

    def test_fires_on_runtime_concatenated_name(self):
        self.assert_fires(
            "src/core/sim.cpp",
            'auto& c = registry.counter("sim." + phase);\n',
            "metric-name",
        )

    def test_literal_on_continuation_line(self):
        # The prevailing style wraps the argument list, so the literal sits
        # on the line after `.histogram(`.
        self.assert_quiet(
            "src/nn/ops.cpp",
            "static obs::Histogram& hist = "
            "obs::MetricsRegistry::global().histogram(\n"
            '    "nn.gemm.dims", layout);\n',
            "metric-name",
        )
        self.assert_fires(
            "src/nn/ops.cpp",
            "static obs::Histogram& hist = "
            "obs::MetricsRegistry::global().histogram(\n"
            '    "BadName", layout);\n',
            "metric-name",
        )

    def test_respects_allow_on_call_and_continuation_line(self):
        self.assert_quiet(
            "src/core/sim.cpp",
            "auto& c = registry.counter(name);"
            "  // lint:allow(metric-name) per-shard helper\n",
            "metric-name",
        )
        self.assert_quiet(
            "src/core/sim.cpp",
            "auto& c = registry.counter(\n"
            "    name);  // lint:allow(metric-name) per-shard helper\n",
            "metric-name",
        )

    def test_comment_mention_does_not_fire(self):
        self.assert_quiet(
            "src/core/sim.cpp",
            '// see registry.counter("whatever") for the pattern\n',
            "metric-name",
        )

    def test_quiet_outside_src(self):
        self.assert_quiet(
            "tests/test_metrics.cpp",
            'auto& c = registry.counter("BadName");\n',
            "metric-name",
        )


class CliTest(LintFixtureTest):
    """End-to-end: exit codes and --report, via the real CLI."""

    def run_cli(self, *argv):
        import subprocess

        return subprocess.run(
            [sys.executable, os.path.join(_TOOLS_DIR, "lint.py"), *argv],
            capture_output=True,
            text=True,
        )

    def test_exit_zero_and_report_on_clean_tree(self):
        self.write("src/core/ok.cpp", "int answer() { return 42; }\n")
        report = os.path.join(self.root, "report.txt")
        proc = self.run_cli(os.path.join(self.root, "src"), "--report", report)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        with open(report, encoding="utf-8") as fh:
            self.assertIn("OK", fh.read())

    def test_exit_one_and_report_on_findings(self):
        self.write("src/core/bad.cpp", "std::mutex m;\n")
        report = os.path.join(self.root, "report.txt")
        proc = self.run_cli(os.path.join(self.root, "src"), "--report", report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        with open(report, encoding="utf-8") as fh:
            content = fh.read()
        self.assertIn("raw-mutex", content)
        self.assertIn("1 finding(s)", content)

    def test_exit_two_on_missing_path(self):
        proc = self.run_cli(os.path.join(self.root, "does-not-exist"))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
