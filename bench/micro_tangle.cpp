// Micro-benchmarks for the ledger substrate: tip selection walks, cone
// computations, confidence sampling, SHA-256 hashing, and proof-of-work.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/sha256.hpp"
#include "support/stopwatch.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/pow.hpp"
#include "tangle/tip_selection.hpp"
#include "tangle/view_cache.hpp"

namespace {

using namespace tanglefl;
using namespace tanglefl::tangle;

/// Builds a tangle of `n` transactions grown with 2-parent random-walk
/// attachment, the structure the simulation produces.
struct GrownTangle {
  ModelStore store;
  Tangle tangle;

  explicit GrownTangle(std::size_t n) : tangle(make_genesis(store)) {
    Rng rng(1);
    for (std::size_t i = 1; i < n; ++i) {
      const TangleView view = tangle.view();
      const auto tips = select_tips(view, 2, rng, {});
      const auto added =
          store.add({static_cast<float>(i), static_cast<float>(i % 7)});
      tangle.add_transaction(tips, added.id, added.hash,
                             /*round=*/1 + i / 8);
    }
  }

  static Tangle make_genesis(ModelStore& store) {
    const auto added = store.add({0.0f, 0.0f});
    return Tangle(added.id, added.hash);
  }
};

void BM_TangleGrowth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    GrownTangle grown(n);
    benchmark::DoNotOptimize(grown.tangle.size());
  }
}
BENCHMARK(BM_TangleGrowth)->Arg(100)->Arg(400);

void BM_FutureConeSizes(benchmark::State& state) {
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  for (auto _ : state) {
    auto cones = view.future_cone_sizes();
    benchmark::DoNotOptimize(cones.data());
  }
}
BENCHMARK(BM_FutureConeSizes)->Arg(200)->Arg(1000)->Arg(4000);

void BM_PastConeSizes(benchmark::State& state) {
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  for (auto _ : state) {
    auto cones = view.past_cone_sizes();
    benchmark::DoNotOptimize(cones.data());
  }
}
BENCHMARK(BM_PastConeSizes)->Arg(200)->Arg(1000)->Arg(4000);

void BM_RandomWalkTip(benchmark::State& state) {
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  const auto cones = view.future_cone_sizes();
  Rng rng(2);
  TipSelectionConfig config;
  config.alpha = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_walk_tip(view, cones, rng, config));
  }
}
BENCHMARK(BM_RandomWalkTip)->Arg(200)->Arg(1000);

void BM_ViewCacheBuild(benchmark::State& state) {
  // Cold fill: both cone passes plus the tip set and CSR approver snapshot.
  // This is what one cache miss costs per view.
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  for (auto _ : state) {
    auto entry = ViewCacheEntry::build(view);
    benchmark::DoNotOptimize(entry.get());
  }
}
BENCHMARK(BM_ViewCacheBuild)->Arg(200)->Arg(1000)->Arg(4000);

void BM_ViewCacheHit(benchmark::State& state) {
  // Warm hit: key comparison plus a shared_ptr copy. The cold/warm ratio is
  // the per-participant saving inside a round.
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  ViewCache cache(4);
  (void)cache.get(view);  // prime
  for (auto _ : state) {
    auto entry = cache.get(view);
    benchmark::DoNotOptimize(entry.get());
  }
}
BENCHMARK(BM_ViewCacheHit)->Arg(200)->Arg(1000)->Arg(4000);

void BM_ConfidenceSampling(benchmark::State& state) {
  GrownTangle grown(static_cast<std::size_t>(state.range(0)));
  const TangleView view = grown.tangle.view();
  Rng rng(3);
  ConfidenceConfig config;
  config.sample_rounds = 35;  // the paper's setting
  for (auto _ : state) {
    auto confidence = compute_confidences(view, rng, config);
    benchmark::DoNotOptimize(confidence.data());
  }
}
BENCHMARK(BM_ConfidenceSampling)->Arg(200)->Arg(1000);

void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_PayloadHash(benchmark::State& state) {
  // Hashing a CNN-sized parameter vector (content addressing cost per
  // published transaction).
  const nn::ParamVector params(static_cast<std::size_t>(state.range(0)), 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModelStore::hash_params(params));
  }
}
BENCHMARK(BM_PayloadHash)->Arg(10000)->Arg(100000);

void BM_ProofOfWork(benchmark::State& state) {
  const std::vector<TransactionId> parents = {Sha256::hash("p1"),
                                              Sha256::hash("p2")};
  const Sha256Digest payload = Sha256::hash("payload");
  const int difficulty = static_cast<int>(state.range(0));
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_pow(parents, payload, round++, difficulty));
  }
}
BENCHMARK(BM_ProofOfWork)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

// google-benchmark rejects unrecognized flags, so the run manifest is
// requested through the environment instead: set TANGLEFL_METRICS_JSON to a
// path to enable domain-metric timing and write the manifest there.
int main(int argc, char** argv) {
  const char* manifest_path = std::getenv("TANGLEFL_METRICS_JSON");
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::MetricsRegistry::global().reset();
    tanglefl::obs::set_timing_enabled(true);
  }
  tanglefl::Stopwatch total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::RunManifest manifest;
    manifest.name = "micro_tangle";
    manifest.total_seconds = total.seconds();
    const auto snapshot = tanglefl::obs::MetricsRegistry::global().snapshot(
        tanglefl::obs::SnapshotKind::kFull);
    if (!tanglefl::obs::write_manifest(manifest_path, manifest, snapshot)) {
      std::fprintf(stderr, "failed to write run manifest %s\n",
                   manifest_path);
      return 1;
    }
  }
  return 0;
}
