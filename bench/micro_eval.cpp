// Micro-benchmarks for the evaluation path: the per-probe cost Algorithm 2
// and the Section III-E defence pay for every loss lookup. Cold = the
// pre-engine path (factory() + set_parameters + data::evaluate per probe);
// Pooled = model lease + pre-batched split; CacheHit = repeated probe of a
// payload already in the (params, split) result cache.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/eval_engine.hpp"
#include "data/training.hpp"
#include "nn/model_zoo.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace tanglefl;

struct EvalFixture {
  nn::ModelFactory factory;
  nn::ParamVector params;
  data::DataSplit split;
};

core::EvalEngineConfig no_cache_config() {
  core::EvalEngineConfig config;
  config.use_cache = false;
  return config;
}

// FEMNIST shape: 28x28 grayscale, 62 classes (Table I).
EvalFixture make_cnn_fixture(std::size_t samples) {
  EvalFixture fixture;
  fixture.factory = [] {
    nn::ImageCnnConfig config;
    config.image_size = 28;
    config.num_classes = 62;
    return nn::make_image_cnn(config);
  };
  nn::Model model = fixture.factory();
  Rng rng(1);
  model.init(rng);
  fixture.params = model.get_parameters();
  fixture.split.features = nn::Tensor({samples, 1, 28, 28});
  for (auto& v : fixture.split.features.values()) {
    v = static_cast<float>(rng.normal());
  }
  fixture.split.labels.resize(samples);
  for (auto& l : fixture.split.labels) {
    l = static_cast<std::int32_t>(rng.uniform_index(62));
  }
  return fixture;
}

// Shakespeare shape: sequence 80, vocab 80, hidden 256 (Table I).
EvalFixture make_lstm_fixture(std::size_t samples) {
  EvalFixture fixture;
  fixture.factory = [] {
    nn::CharLstmConfig config;
    config.vocab_size = 80;
    config.seq_length = 80;
    config.embedding_dim = 8;
    config.hidden_dim = 256;
    return nn::make_char_lstm(config);
  };
  nn::Model model = fixture.factory();
  Rng rng(1);
  model.init(rng);
  fixture.params = model.get_parameters();
  fixture.split.features = nn::Tensor({samples, 80});
  for (auto& v : fixture.split.features.values()) {
    v = static_cast<float>(rng.uniform_index(80));
  }
  fixture.split.labels.resize(samples);
  for (auto& l : fixture.split.labels) {
    l = static_cast<std::int32_t>(rng.uniform_index(80));
  }
  return fixture;
}

EvalFixture make_fixture(bool lstm, std::size_t samples) {
  return lstm ? make_lstm_fixture(samples) : make_cnn_fixture(samples);
}

// The pre-engine probe: a fresh model instance and per-batch gathers each
// iteration, exactly what params_loss used to do per candidate.
void params_loss_cold_loop(benchmark::State& state, bool lstm) {
  const EvalFixture fixture = make_fixture(lstm, 64);
  for (auto _ : state) {
    nn::Model model = fixture.factory();
    model.set_parameters(fixture.params);
    const data::EvalResult result = data::evaluate(model, fixture.split);
    benchmark::DoNotOptimize(result.loss);
  }
}

void BM_ParamsLossColdCNN(benchmark::State& state) {
  params_loss_cold_loop(state, /*lstm=*/false);
}
BENCHMARK(BM_ParamsLossColdCNN)->Unit(benchmark::kMillisecond);

void BM_ParamsLossColdLSTM(benchmark::State& state) {
  params_loss_cold_loop(state, /*lstm=*/true);
}
BENCHMARK(BM_ParamsLossColdLSTM)->Unit(benchmark::kMillisecond);

// Engine probe without cache reuse: pooled model instance + pre-batched
// split, but a full forward sweep per iteration (cache disabled so every
// probe pays its forwards, isolating the pool + batching win).
void params_loss_pooled_loop(benchmark::State& state, bool lstm) {
  const EvalFixture fixture = make_fixture(lstm, 64);
  core::EvalEngine engine(fixture.factory, no_cache_config());
  const auto prepared = engine.prepare(fixture.split);
  for (auto _ : state) {
    core::EvalEngine::ModelLease lease = engine.acquire();
    lease.model().set_parameters(fixture.params);
    const data::EvalResult result = engine.evaluate(lease.model(), *prepared);
    benchmark::DoNotOptimize(result.loss);
  }
}

void BM_ParamsLossPooledCNN(benchmark::State& state) {
  params_loss_pooled_loop(state, /*lstm=*/false);
}
BENCHMARK(BM_ParamsLossPooledCNN)->Unit(benchmark::kMillisecond);

void BM_ParamsLossPooledLSTM(benchmark::State& state) {
  params_loss_pooled_loop(state, /*lstm=*/true);
}
BENCHMARK(BM_ParamsLossPooledLSTM)->Unit(benchmark::kMillisecond);

// Warm probe: the (params, split) result is already cached, so the probe
// costs one sharded map lookup — the robust-mode steady state where most
// candidate tips were already scored in earlier rounds.
void eval_cache_hit_loop(benchmark::State& state, bool lstm) {
  const EvalFixture fixture = make_fixture(lstm, 64);
  core::EvalEngine engine(fixture.factory, core::EvalEngineConfig{});
  const auto prepared = engine.prepare(fixture.split);
  const core::ParamsKey key{{42}};
  engine.params_eval(key, fixture.params, *prepared);  // warm the cache
  for (auto _ : state) {
    const core::EvalOutcome outcome =
        engine.params_eval(key, fixture.params, *prepared);
    benchmark::DoNotOptimize(outcome.result.loss);
  }
}

void BM_EvalCacheHitCNN(benchmark::State& state) {
  eval_cache_hit_loop(state, /*lstm=*/false);
}
BENCHMARK(BM_EvalCacheHitCNN);

void BM_EvalCacheHitLSTM(benchmark::State& state) {
  eval_cache_hit_loop(state, /*lstm=*/true);
}
BENCHMARK(BM_EvalCacheHitLSTM);

// ------------------------------------------------------- multi-model probes
//
// Robust tip selection's per-step workload: k same-architecture candidate
// models scored on the paper CNN shape. Cold is the pre-engine path per
// candidate; SerialMiss is the pre-batching engine path (one standalone
// pooled forward per candidate, cache disabled so every probe pays its
// forwards); Fused is one evaluate_many group, which shares each batch's
// conv im2col + panel pack across the k models and drives the k×batches
// grid through a kernel ThreadPool. All three produce bit-identical losses.

std::vector<nn::ParamVector> make_candidates(const EvalFixture& fixture,
                                             std::size_t k) {
  std::vector<nn::ParamVector> candidates(k, fixture.params);
  Rng rng(7);
  for (auto& params : candidates) {
    for (auto& v : params) v += 0.01f * static_cast<float>(rng.normal());
  }
  return candidates;
}

void BM_MultiEvalCold(benchmark::State& state) {
  const EvalFixture fixture = make_cnn_fixture(64);
  const auto candidates =
      make_candidates(fixture, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& params : candidates) {
      nn::Model model = fixture.factory();
      model.set_parameters(params);
      sum += data::evaluate(model, fixture.split).loss;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_MultiEvalCold)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_MultiEvalSerialMiss(benchmark::State& state) {
  const EvalFixture fixture = make_cnn_fixture(64);
  const auto candidates =
      make_candidates(fixture, static_cast<std::size_t>(state.range(0)));
  core::EvalEngine engine(fixture.factory, no_cache_config());
  const auto prepared = engine.prepare(fixture.split);
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      sum += engine
                 .params_eval(core::ParamsKey::single(1000 + i),
                              candidates[i], *prepared)
                 .result.loss;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_MultiEvalSerialMiss)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_MultiEvalFused(benchmark::State& state) {
  const EvalFixture fixture = make_cnn_fixture(64);
  const auto candidates =
      make_candidates(fixture, static_cast<std::size_t>(state.range(0)));
  core::EvalEngine engine(fixture.factory, no_cache_config());
  const auto prepared = engine.prepare(fixture.split);
  ThreadPool pool;  // hardware concurrency, as the sim harness kernel pool
  std::vector<core::EvalRequest> requests(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    requests[i].params = candidates[i];
    requests[i].key = core::ParamsKey::single(1000 + i);
  }
  for (auto _ : state) {
    double sum = 0.0;
    const std::vector<core::EvalOutcome> outcomes =
        engine.evaluate_many(requests, *prepared, &pool);
    for (const core::EvalOutcome& outcome : outcomes) {
      sum += outcome.result.loss;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_MultiEvalFused)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// google-benchmark rejects unrecognized flags, so the run manifest is
// requested through the environment instead: set TANGLEFL_METRICS_JSON to a
// path to enable domain-metric timing and write the manifest there.
int main(int argc, char** argv) {
  const char* manifest_path = std::getenv("TANGLEFL_METRICS_JSON");
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::MetricsRegistry::global().reset();
    tanglefl::obs::set_timing_enabled(true);
  }
  tanglefl::Stopwatch total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::RunManifest manifest;
    manifest.name = "micro_eval";
    manifest.total_seconds = total.seconds();
    const auto snapshot = tanglefl::obs::MetricsRegistry::global().snapshot(
        tanglefl::obs::SnapshotKind::kFull);
    if (!tanglefl::obs::write_manifest(manifest_path, manifest, snapshot)) {
      std::fprintf(stderr, "failed to write run manifest %s\n",
                   manifest_path);
      return 1;
    }
  }
  return 0;
}
