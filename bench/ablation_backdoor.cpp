// Ablation: boosted trigger-patch backdoor attack on the tangle — the
// "different classes of poisoning attacks" Section VI calls for, after
// Bagdasaryan et al. [29]. Unlike the Fig. 5/6 adversaries, the backdoor
// attacker keeps its clean accuracy (stealth), so the Algorithm 2
// validation gate of honest nodes does not obviously reject its models.
// Sweeps the malicious fraction and the model-replacement boost factor,
// reporting consensus accuracy and backdoor success.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto pretrain = static_cast<std::size_t>(
      args.get_int("pretrain-rounds", 24, "benign rounds before the attack"));
  const auto attack_rounds = static_cast<std::size_t>(
      args.get_int("attack-rounds", 16, "attacked rounds to observe"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string csv =
      args.get_string("csv", "ablation_backdoor.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_backdoor", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("pretrain_rounds", pretrain);
  bench_run.config("attack_rounds", attack_rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("threads", threads);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);

  std::cout << "Backdoor (model replacement) attack on the FEMNIST-synth "
               "tangle\ntrigger: 2x2 corner patch -> class 1; attack after "
               "round " << pretrain << "\n\n";

  struct Cell {
    double fraction;
    double boost;
  };
  const std::vector<Cell> cells = {
      {0.1, 1.0}, {0.1, 5.0}, {0.2, 1.0}, {0.2, 5.0}, {0.3, 5.0}};

  TablePrinter table({"malicious p", "boost", "clean accuracy",
                      "backdoor success"});
  CsvWriter csv_out(csv, {"fraction", "boost", "accuracy",
                          "backdoor_success"});

  for (const Cell& cell : cells) {
    core::SimulationConfig config;
    config.rounds = pretrain + attack_rounds;
    config.nodes_per_round = nodes;
    config.eval_every = 4;
    config.eval_nodes_fraction = 0.3;
    config.node.training = bench::femnist_training();
    config.node.num_tips = 2;
    config.node.tip_sample_size = nodes;  // the III-E defence
    config.node.reference.num_reference_models = 10;
    config.attack = core::AttackType::kBackdoor;
    config.malicious_fraction = cell.fraction;
    config.attack_start_round = pretrain + 1;
    config.trigger = {.target_class = 1, .patch_size = 2,
                      .trigger_value = 1.0f};
    config.backdoor_boost = cell.boost;
    config.seed = seed;
    config.threads = threads;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();

    const std::string label = "p=" + format_fixed(cell.fraction, 1) +
                              " boost=" + format_fixed(cell.boost, 0);
    const core::RunResult run = [&] {
      auto timer = bench_run.phase(label);
      return core::run_tangle_learning(dataset, factory, config, label);
    }();
    const auto& last = run.history.back();
    table.add_row({format_fixed(cell.fraction, 2),
                   format_fixed(cell.boost, 0),
                   format_fixed(last.accuracy, 3),
                   format_fixed(last.backdoor_success, 3)});
    csv_out.add_row({format_fixed(cell.fraction, 2),
                     format_fixed(cell.boost, 1),
                     format_fixed(last.accuracy, 4),
                     format_fixed(last.backdoor_success, 4)});
    std::cout << "... p=" << cell.fraction << " boost=" << cell.boost
              << " done (" << format_fixed(bench_run.seconds(), 0)
              << "s elapsed)\n";
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nReading: high backdoor success with intact clean accuracy\n"
               "means the attack slipped past the validation gate — the\n"
               "stealthy-poisoning weakness the paper flags as open.\n"
            << "\n(series written to " << csv << ")\n";
  bench_run.finish(std::cout);
  return 0;
}
