// Large-N structural smoke run: grows a 100k-transaction tangle through
// the incremental cone path with milestone pruning enabled, and validates
// the stationary tip count against Kuśmierz's analytic prediction
// L0 ≈ 2·λ·h (λ publishers per round, h = 1 round of visibility delay).
// No neural network is involved — transactions carry 2-float payloads —
// so the run isolates exactly the ledger layer this smoke is guarding:
//
//   * cone state must stay O(n) words (tangle.cones.incremental.bytes),
//     nowhere near the O(n^2/64)-bit BitMatrix a full rebuild would need;
//   * the prune frontier must keep advancing (tangle.prune.*) and frozen
//     payloads must actually be released;
//   * the mean tip count over the stationary second half must land inside
//     a generous [λ, 4λ] band around 2λ.
//
// Exits nonzero when any of those fail, so CI can gate on it directly.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "tangle/health.hpp"
#include "tangle/milestones.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tip_selection.hpp"
#include "tangle/view_cache.hpp"

using namespace tanglefl;
using namespace tanglefl::tangle;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  bench::BenchRun run("tangle_scale_smoke", args);
  const auto transactions = static_cast<std::size_t>(args.get_int(
      "transactions", 100000, "target ledger size (growth stops here)"));
  const auto lambda = static_cast<std::size_t>(
      args.get_int("lambda", 8, "publishers per round (arrival rate)"));
  const auto interval = static_cast<std::size_t>(args.get_int(
      "prune-interval", 16, "rounds between milestone checks"));
  const auto keep_recent = static_cast<std::size_t>(args.get_int(
      "keep-recent", 512, "live-window floor (never-frozen suffix)"));
  const auto health_every = static_cast<std::size_t>(args.get_int(
      "health-every", 250, "rounds between health/timeline probes"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "master RNG seed"));
  if (args.should_exit()) return 0;
  run.start(seed);
  run.config("transactions", transactions);
  run.config("lambda", lambda);
  run.config("prune_interval", interval);
  run.config("keep_recent", keep_recent);
  run.config("seed", seed);
  if (run.timeline() != nullptr) run.timeline()->begin_run("scale-smoke");

  ModelStore store;
  Tangle tangle = [&] {
    const auto added = store.add({0.0f, 0.0f});
    return Tangle(added.id, added.hash);
  }();
  ViewCache cache(4);
  MilestoneConfig prune_config;
  prune_config.enabled = true;
  prune_config.interval = interval;
  prune_config.keep_recent = keep_recent;
  MilestoneTracker pruner(prune_config);

  HealthConfig health_config;
  health_config.orphan_age = 16;
  health_config.track_confirmation = false;  // keep probes O(N + E)
  HealthTracker health(health_config);
  obs::RegistrySampler sampler;

  Rng master(seed);
  TipSelectionConfig tip_config;
  tip_config.alpha = 0.0;  // unbiased walk: the regime of the 2λh analysis

  // Tip-count series over the stationary second half of the run.
  double tip_sum = 0.0;
  double tip_sq_sum = 0.0;
  std::size_t tip_samples = 0;
  std::size_t max_cone_bytes = 0;

  std::uint64_t round = 0;
  {
    auto timer = run.phase("growth");
    while (tangle.size() < transactions) {
      ++round;
      // h = 1 round of delay: publishers of round r attach to what was
      // published strictly before r (the sync engine's visibility rule).
      const TangleView view =
          tangle.view_prefix(tangle.visible_count_for_round(round));
      const std::shared_ptr<const ViewCacheEntry> cones = cache.get(view);
      Rng round_rng = master.split(round);

      std::vector<std::vector<TxIndex>> parents(lambda);
      for (std::size_t p = 0; p < lambda; ++p) {
        parents[p] = select_tips(*cones, 2, round_rng, tip_config);
      }
      for (std::size_t p = 0; p < lambda; ++p) {
        const auto added = store.add(
            {static_cast<float>(round), static_cast<float>(p)});
        tangle.add_transaction(parents[p], added.id, added.hash, round);
      }

      if (pruner.tick()) {
        pruner.advance(tangle, store, *cache.get(tangle.view()));
      }

      // Tip statistics over the stationary regime only.
      const std::size_t n_rounds = transactions / lambda;
      if (round > n_rounds / 2) {
        const std::shared_ptr<const ViewCacheEntry> full =
            cache.get(tangle.view());
        tip_sum += static_cast<double>(full->tips().size());
        tip_sq_sum += static_cast<double>(full->tips().size()) *
                      static_cast<double>(full->tips().size());
        ++tip_samples;
      }
      if (run.timeline() != nullptr && round % health_every == 0) {
        const TangleView full_view = tangle.view();
        const std::shared_ptr<const ViewCacheEntry> full_cones =
            cache.get(full_view);
        Rng health_rng = master.split(1u << 20).split(round);
        health.sample(full_view, full_cones.get(), round, health_rng);
        sampler.sample(*run.timeline(), round);
      }
    }
  }

  // --- report + gate ----------------------------------------------------
  const double tip_mean =
      tip_samples > 0 ? tip_sum / static_cast<double>(tip_samples) : 0.0;
  const double tip_var =
      tip_samples > 0
          ? tip_sq_sum / static_cast<double>(tip_samples) - tip_mean * tip_mean
          : 0.0;
  const double tip_std = std::sqrt(std::max(0.0, tip_var));
  const double predicted = 2.0 * static_cast<double>(lambda);  // 2λh, h = 1

  const double cone_bytes =
      obs::MetricsRegistry::global()
          .gauge("tangle.cones.incremental.bytes")
          .value();
  max_cone_bytes = static_cast<std::size_t>(cone_bytes);
  const double n = static_cast<double>(tangle.size());
  const double bitmatrix_bytes = n * n / 8.0;  // one n x n bit matrix
  const double floor_value =
      obs::MetricsRegistry::global().gauge("tangle.prune.floor").value();
  std::size_t released = 0;
  for (PayloadId id = 0; id < store.size(); ++id) {
    released += store.is_released(id) ? 1 : 0;
  }

  std::cout << "transactions: " << tangle.size() << " over " << round
            << " rounds (lambda=" << lambda << ")\n"
            << "tip count (2nd half): mean=" << format_fixed(tip_mean, 2)
            << " std=" << format_fixed(tip_std, 2)
            << " predicted 2*lambda*h=" << format_fixed(predicted, 1) << "\n"
            << "prune floor: " << static_cast<std::size_t>(floor_value)
            << " (live window "
            << tangle.size() - static_cast<std::size_t>(floor_value)
            << "), payloads released: " << released << "/" << store.size()
            << "\n"
            << "cone state: " << max_cone_bytes << " bytes vs "
            << format_fixed(bitmatrix_bytes / (1024.0 * 1024.0), 1)
            << " MiB for one BitMatrix rebuild\n";

  bool ok = true;
  const double band_low = static_cast<double>(lambda);
  const double band_high = 4.0 * static_cast<double>(lambda);
  if (tip_mean < band_low || tip_mean > band_high) {
    std::cout << "FAIL: mean tip count " << format_fixed(tip_mean, 2)
              << " outside Kusmierz band [" << format_fixed(band_low, 1)
              << ", " << format_fixed(band_high, 1) << "]\n";
    ok = false;
  }
  if (floor_value <= 0.0) {
    std::cout << "FAIL: prune frontier never advanced\n";
    ok = false;
  }
  if (released == 0) {
    std::cout << "FAIL: no payload was garbage-collected\n";
    ok = false;
  }
  // Sublinear vs the quadratic rebuild: the maintained state must be a
  // vanishing fraction of one BitMatrix pass at this scale.
  if (cone_bytes <= 0.0 || cone_bytes > bitmatrix_bytes / 16.0) {
    std::cout << "FAIL: cone state " << max_cone_bytes
              << " bytes is not sublinear vs the BitMatrix rebuild\n";
    ok = false;
  }

  run.finish(std::cout);
  return ok ? 0 : 1;
}
