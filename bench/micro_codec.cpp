// Micro-benchmarks for the payload codec pipeline and the chunked
// ModelStore: per-stage encode/decode throughput on realistic model-delta
// shapes, content-defined chunking, and chunk-dedup insertion cost.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nn/params.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "tangle/model_store.hpp"
#include "tangle/payload_codec.hpp"

namespace {

using namespace tanglefl;
using namespace tanglefl::tangle;

/// Base model plus a trained-looking update: small Gaussian deltas on a
/// fraction of coordinates, mirroring one node round of SGD on a shared
/// parent average.
struct PayloadFixture {
  nn::ParamVector base;
  nn::ParamVector params;

  explicit PayloadFixture(std::size_t n) : base(n), params(n) {
    Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = static_cast<float>(rng.normal(0.0, 0.3));
      const bool touched = rng.bernoulli(0.3);
      params[i] =
          base[i] +
          (touched ? static_cast<float>(rng.normal(0.0, 0.01)) : 0.0f);
    }
  }
};

const std::vector<std::string>& codec_specs() {
  static const std::vector<std::string> specs = {
      "delta",
      "delta,entropy",
      "delta,quantize,entropy",
      "topk:0.05,quantize,entropy",
  };
  return specs;
}

void BM_PayloadCodec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string& spec = codec_specs()[
      static_cast<std::size_t>(state.range(1))];
  const PayloadFixture fixture(n);
  const PayloadCodec codec(parse_codec_spec(spec));
  std::size_t encoded_bytes = 0;
  for (auto _ : state) {
    const EncodedPayload encoded = codec.encode(fixture.params, fixture.base);
    nn::ParamVector decoded = codec.decode(encoded, fixture.base);
    encoded_bytes = encoded.bytes.size();
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetLabel(spec);
  state.counters["encoded_bytes"] =
      benchmark::Counter(static_cast<double>(encoded_bytes));
  state.counters["ratio"] = benchmark::Counter(
      static_cast<double>(encoded_bytes) /
      static_cast<double>(n * sizeof(float)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_PayloadCodec)
    ->ArgsProduct({{4096, 33000}, {0, 1, 2, 3}});

void BM_ChunkBoundaries(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PayloadFixture fixture(n);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(fixture.params.data()),
      fixture.params.size() * sizeof(float));
  for (auto _ : state) {
    auto ends = chunk_boundaries(bytes, ChunkParams{});
    benchmark::DoNotOptimize(ends.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_ChunkBoundaries)->Arg(4096)->Arg(33000);

/// Insert a stream of near-identical payloads (shared prefix, distinct
/// tail) into a chunking store — the ledger-growth pattern chunk dedup is
/// built for.
void BM_ChunkStore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PayloadFixture fixture(n);
  for (auto _ : state) {
    ModelStore store;
    store.configure_chunking(ChunkParams{});
    for (std::size_t k = 0; k < 8; ++k) {
      nn::ParamVector params = fixture.params;
      params[n - 1] = static_cast<float>(k + 1);
      store.add(std::move(params));
    }
    benchmark::DoNotOptimize(store.chunk_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_ChunkStore)->Arg(4096)->Arg(33000);

/// Flat-store baseline for the same insertion stream (whole-payload
/// hashing only), isolating the chunking overhead.
void BM_FlatStore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PayloadFixture fixture(n);
  for (auto _ : state) {
    ModelStore store;
    for (std::size_t k = 0; k < 8; ++k) {
      nn::ParamVector params = fixture.params;
      params[n - 1] = static_cast<float>(k + 1);
      store.add(std::move(params));
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_FlatStore)->Arg(4096)->Arg(33000);

}  // namespace

// google-benchmark rejects unrecognized flags, so the run manifest is
// requested through the environment instead: set TANGLEFL_METRICS_JSON to a
// path to enable domain-metric timing and write the manifest there.
int main(int argc, char** argv) {
  const char* manifest_path = std::getenv("TANGLEFL_METRICS_JSON");
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::MetricsRegistry::global().reset();
    tanglefl::obs::set_timing_enabled(true);
  }
  tanglefl::Stopwatch total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::RunManifest manifest;
    manifest.name = "micro_codec";
    manifest.total_seconds = total.seconds();
    const auto snapshot = tanglefl::obs::MetricsRegistry::global().snapshot(
        tanglefl::obs::SnapshotKind::kFull);
    if (!tanglefl::obs::write_manifest(manifest_path, manifest, snapshot)) {
      std::fprintf(stderr, "failed to write run manifest %s\n",
                   manifest_path);
      return 1;
    }
  }
  return 0;
}
