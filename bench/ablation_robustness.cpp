// Ablation: the structured robustness analysis the paper calls for in
// Section V-B ("a structured analysis of the effects of the tangle
// parameters on the robustness should be conducted in the future").
//
// Sweeps the two knobs Section V-B names — the randomness factor alpha of
// the tip-selection walk and the number of candidate-tip sampling rounds —
// under a fixed random-poisoning attack, and reports the post-attack
// consensus accuracy for each combination.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto pretrain = static_cast<std::size_t>(
      args.get_int("pretrain-rounds", 24, "benign rounds before the attack"));
  const auto attack_rounds = static_cast<std::size_t>(
      args.get_int("attack-rounds", 16, "attacked rounds to observe"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round"));
  const double fraction = args.get_double(
      "fraction", 0.25, "malicious fraction (past the defence threshold)");
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const bool eval_cache =
      args.get_int("eval-cache", 1,
                   "cache loss probes across rounds (0 = off; outputs are "
                   "byte-identical either way)") != 0;
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string csv =
      args.get_string("csv", "ablation_robustness.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_robustness", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("pretrain_rounds", pretrain);
  bench_run.config("attack_rounds", attack_rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("fraction", fraction);
  bench_run.config("threads", threads);
  bench_run.config("eval_cache", eval_cache);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);

  std::cout << "Robustness ablation: random poisoning at p=" << fraction
            << ", attack after round " << pretrain << "\n"
            << "cells: consensus accuracy " << attack_rounds
            << " rounds into the attack\n\n";

  const double alphas[] = {0.001, 0.01, 0.1, 1.0};
  const std::size_t samples[] = {2, nodes, 2 * nodes};

  TablePrinter table({"tip sample size", "alpha=0.001", "alpha=0.01",
                      "alpha=0.1", "alpha=1.0"});
  CsvWriter csv_out(csv, {"alpha", "tip_sample_size", "final_accuracy",
                          "pre_attack_accuracy"});

  for (const std::size_t sample : samples) {
    std::vector<std::string> row = {std::to_string(sample)};
    for (const double alpha : alphas) {
      core::SimulationConfig config;
      config.rounds = pretrain + attack_rounds;
      config.nodes_per_round = nodes;
      config.eval_every = 4;
      config.eval_nodes_fraction = 0.3;
      config.node.training = bench::femnist_training();
      config.node.num_tips = 2;
      config.node.tip_sample_size = sample;
      config.node.tip_selection.alpha = alpha;
      config.node.reference.confidence.tip_selection.alpha = alpha;
      config.node.reference.num_reference_models = 10;
      config.attack = core::AttackType::kRandomPoison;
      config.malicious_fraction = fraction;
      config.attack_start_round = pretrain + 1;
      config.seed = seed;
      config.threads = threads;
      config.use_eval_cache = eval_cache;
      config.use_eval_batch = eval_batch;
      config.codec = codec;
      config.timeline = bench_run.timeline();

      const core::RunResult run = [&] {
        auto timer = bench_run.phase("alpha-sweep");
        return core::run_tangle_learning(dataset, factory, config);
      }();
      double pre_attack = 0.0;
      for (const auto& record : run.history) {
        if (record.round <= pretrain) pre_attack = record.accuracy;
      }
      row.push_back(format_fixed(run.final_accuracy(), 3));
      csv_out.add_row({format_fixed(alpha, 3), std::to_string(sample),
                       format_fixed(run.final_accuracy(), 4),
                       format_fixed(pre_attack, 4)});
    }
    table.add_row(std::move(row));
    std::cout << "... sample size " << sample << " done ("
              << format_fixed(bench_run.seconds(), 0) << "s elapsed)\n";
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: larger candidate samples (the III-E\n"
               "defence) survive the attack; tiny alpha keeps walks too\n"
               "random (poison tips get sampled), huge alpha makes walks\n"
               "deterministic (one poisoned heavy branch captures all).\n"
            << "\n(series written to " << csv << ")\n";
  bench_run.finish(std::cout);
  return 0;
}
