// Table I: characteristics of the benchmarking datasets and training
// parameters. Prints the paper's original values next to the scaled
// synthetic datasets this reproduction generates.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "dataset generation seed"));
  bench::BenchRun run("table1_datasets", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  run.start(seed);

  bench::FemnistScale femnist_scale;
  femnist_scale.seed = seed;
  bench::ShakespeareScale shakespeare_scale;
  shakespeare_scale.seed = seed;

  const data::FederatedDataset femnist = [&] {
    auto timer = run.phase("femnist-gen");
    return bench::make_femnist(femnist_scale);
  }();
  const data::FederatedDataset shakespeare = [&] {
    auto timer = run.phase("shakespeare-gen");
    return bench::make_shakespeare(shakespeare_scale);
  }();
  const data::DatasetStats fs = femnist.stats();
  const data::DatasetStats ss = shakespeare.stats();

  std::cout << "TABLE I: Characteristics of the benchmarking datasets and "
               "training parameters\n"
            << "(paper value -> this reproduction's synthetic substitute)\n\n";

  TablePrinter table({"", "FEMNIST (paper)", "femnist-synth", "Shakespeare (paper)",
                      "shakespeare-synth"});
  table.add_row({"Train/Test Split", "0.8", format_fixed(fs.train_fraction, 1),
                 "0.9", format_fixed(ss.train_fraction, 1)});
  table.add_row({"Labels", "62", std::to_string(fs.num_classes), "80",
                 std::to_string(ss.num_classes)});
  table.add_row({"Users", "3500", std::to_string(fs.num_users), "1058",
                 std::to_string(ss.num_users)});
  table.add_row({"Min Samples Per User", "0",
                 std::to_string(fs.min_samples_per_user), "64",
                 std::to_string(ss.min_samples_per_user)});
  table.add_row({"Model Type", "CNN", fs.model_type, "Stacked LSTM",
                 ss.model_type});
  table.add_row({"Learning Rate", "0.06",
                 format_fixed(bench::femnist_training().sgd.learning_rate, 2),
                 "0.8",
                 format_fixed(bench::shakespeare_training().sgd.learning_rate, 1)});
  table.add_row({"Local Epochs", "1",
                 std::to_string(bench::femnist_training().epochs), "1",
                 std::to_string(bench::shakespeare_training().epochs)});
  table.print(std::cout);

  std::cout << "\nsynthetic dataset detail:\n";
  TablePrinter detail({"dataset", "total samples", "mean/user", "min/user",
                       "max/user"});
  detail.add_row({fs.name, std::to_string(fs.total_samples),
                  format_fixed(fs.mean_samples_per_user, 1),
                  std::to_string(fs.min_samples_per_user),
                  std::to_string(fs.max_samples_per_user)});
  detail.add_row({ss.name, std::to_string(ss.total_samples),
                  format_fixed(ss.mean_samples_per_user, 1),
                  std::to_string(ss.min_samples_per_user),
                  std::to_string(ss.max_samples_per_user)});
  detail.print(std::cout);
  run.finish(std::cout);
  return 0;
}
