// Ablation: privacy and communication-cost transforms on the publishing
// path (Sections III-C and III-D). Compares tangle convergence with
//   * plain full-precision payloads (the paper's prototype),
//   * 8-bit quantized payloads (4x smaller on the wire),
//   * DP-sanitized updates at two noise levels (Gaussian mechanism),
// and reports per-transaction payload bytes next to final accuracy.
//
// --frontier 1 additionally sweeps payload-codec stage combinations
// (tangle/payload_codec.hpp) and writes an accuracy-vs-bytes frontier CSV:
// one row per codec spec with the measured encoded/raw ledger bytes and the
// run's final accuracy (see EXPERIMENTS.md).
#include "bench_common.hpp"

#include "nn/privacy.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 40, "training rounds per run"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const bool frontier =
      args.get_int("frontier", 0,
                   "1 = also sweep codec stage combinations and write the "
                   "accuracy-vs-bytes frontier CSV") != 0;
  const std::string frontier_csv = args.get_string(
      "frontier-csv", "ablation_privacy_comm_frontier.csv",
      "frontier sweep output CSV path (--frontier 1 only)");
  const std::string csv =
      args.get_string("csv", "ablation_privacy_comm.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_privacy_comm", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("rounds", rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("threads", threads);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("frontier", frontier);
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);
  const std::size_t param_count = factory().parameter_count();

  std::cout << "Privacy/communication ablation on the FEMNIST-synth tangle ("
            << param_count << " parameters per payload)\n\n";

  struct Variant {
    std::string name;
    bool quantize = false;
    bool dp = false;
    double noise = 0.0;
    std::size_t payload_bytes = 0;
  };
  std::vector<Variant> variants = {
      {"full precision", false, false, 0.0, param_count * sizeof(float)},
      {"8-bit quantized", true, false, 0.0,
       param_count * sizeof(std::int8_t) + sizeof(float)},
      {"dp clip=1 sigma=0.01", false, true, 0.01,
       param_count * sizeof(float)},
      {"dp clip=1 sigma=0.05", false, true, 0.05,
       param_count * sizeof(float)},
  };

  std::vector<core::RunResult> runs;
  TablePrinter table({"variant", "payload bytes", "final accuracy",
                      "rounds to 0.5"});
  for (const Variant& variant : variants) {
    core::SimulationConfig config;
    config.rounds = rounds;
    config.nodes_per_round = nodes;
    config.eval_every = 4;
    config.eval_nodes_fraction = 0.3;
    config.node.training = bench::femnist_training();
    config.node.num_tips = 3;
    config.node.tip_sample_size = 6;
    config.node.reference.num_reference_models = 10;
    config.node.quantize_payloads = variant.quantize;
    config.node.use_dp = variant.dp;
    config.node.dp.clip_norm = 1.0;
    config.node.dp.noise_multiplier = variant.noise;
    config.seed = seed;
    config.threads = threads;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();

    const core::RunResult run = [&] {
      auto timer = bench_run.phase(variant.name);
      return core::run_tangle_learning(dataset, factory, config,
                                       variant.name);
    }();
    const std::int64_t reach = run.rounds_to_accuracy(0.5);
    std::string cell;
    if (reach < 0) cell += '>';
    cell += std::to_string(reach < 0 ? static_cast<std::int64_t>(rounds)
                                     : reach);
    table.add_row({variant.name, std::to_string(variant.payload_bytes),
                   format_fixed(run.final_accuracy(), 3), std::move(cell)});
    std::cout << "... " << variant.name << " done ("
              << format_fixed(bench_run.seconds(), 0) << "s elapsed)\n";
    runs.push_back(run);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";
  bench::print_series(std::cout, runs);
  bench::write_series_csv(csv, runs);

  if (frontier) {
    // Accuracy-vs-bytes frontier: the same full-precision run under one
    // codec spec per row, from lossless to aggressively lossy. Ledger
    // byte counts come from per-run deltas of the global codec counters.
    const std::vector<std::string> specs = {
        "off",
        "delta,entropy,chunk",
        "delta,quantize,entropy",
        "topk:0.1,entropy",
        "topk:0.05,quantize,entropy",
        "topk:0.01,quantize,entropy",
    };
    obs::Counter& raw_counter =
        obs::MetricsRegistry::global().counter("ledger.codec.raw_bytes");
    obs::Counter& encoded_counter =
        obs::MetricsRegistry::global().counter("ledger.codec.encoded_bytes");
    CsvWriter frontier_out(frontier_csv,
                           {"codec", "raw_bytes", "encoded_bytes", "ratio",
                            "final_accuracy", "rounds_to_half"});
    std::cout << "\nfrontier sweep (" << specs.size() << " codec specs)\n";
    for (const std::string& spec : specs) {
      core::SimulationConfig config;
      config.rounds = rounds;
      config.nodes_per_round = nodes;
      config.eval_every = 4;
      config.eval_nodes_fraction = 0.3;
      config.node.training = bench::femnist_training();
      config.node.num_tips = 3;
      config.node.tip_sample_size = 6;
      config.node.reference.num_reference_models = 10;
      config.seed = seed;
      config.threads = threads;
      config.use_eval_batch = eval_batch;
      config.codec = tangle::parse_codec_spec(spec);

      const std::uint64_t raw_before = raw_counter.value();
      const std::uint64_t encoded_before = encoded_counter.value();
      const core::RunResult run = [&] {
        auto timer = bench_run.phase("frontier " + spec);
        return core::run_tangle_learning(dataset, factory, config, spec);
      }();
      const std::uint64_t raw = raw_counter.value() - raw_before;
      const std::uint64_t encoded = encoded_counter.value() - encoded_before;
      const double ratio =
          raw > 0 ? static_cast<double>(encoded) / static_cast<double>(raw)
                  : 1.0;
      const std::int64_t reach = run.rounds_to_accuracy(0.5);
      frontier_out.add_row(
          {spec, std::to_string(raw), std::to_string(encoded),
           format_fixed(ratio, 4), format_fixed(run.final_accuracy(), 5),
           std::to_string(reach)});
      std::cout << "... " << spec << ": ratio=" << format_fixed(ratio, 3)
                << " accuracy=" << format_fixed(run.final_accuracy(), 3)
                << " (" << format_fixed(bench_run.seconds(), 0)
                << "s elapsed)\n";
    }
    std::cout << "(frontier written to " << frontier_csv << ")\n";
  }

  bench_run.finish(std::cout);
  return 0;
}
