// Ablation: privacy and communication-cost transforms on the publishing
// path (Sections III-C and III-D). Compares tangle convergence with
//   * plain full-precision payloads (the paper's prototype),
//   * 8-bit quantized payloads (4x smaller on the wire),
//   * DP-sanitized updates at two noise levels (Gaussian mechanism),
// and reports per-transaction payload bytes next to final accuracy.
#include "bench_common.hpp"

#include "nn/privacy.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 40, "training rounds per run"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const std::string csv =
      args.get_string("csv", "ablation_privacy_comm.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_privacy_comm", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("rounds", rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("threads", threads);
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);
  const std::size_t param_count = factory().parameter_count();

  std::cout << "Privacy/communication ablation on the FEMNIST-synth tangle ("
            << param_count << " parameters per payload)\n\n";

  struct Variant {
    std::string name;
    bool quantize = false;
    bool dp = false;
    double noise = 0.0;
    std::size_t payload_bytes = 0;
  };
  std::vector<Variant> variants = {
      {"full precision", false, false, 0.0, param_count * sizeof(float)},
      {"8-bit quantized", true, false, 0.0,
       param_count * sizeof(std::int8_t) + sizeof(float)},
      {"dp clip=1 sigma=0.01", false, true, 0.01,
       param_count * sizeof(float)},
      {"dp clip=1 sigma=0.05", false, true, 0.05,
       param_count * sizeof(float)},
  };

  std::vector<core::RunResult> runs;
  TablePrinter table({"variant", "payload bytes", "final accuracy",
                      "rounds to 0.5"});
  for (const Variant& variant : variants) {
    core::SimulationConfig config;
    config.rounds = rounds;
    config.nodes_per_round = nodes;
    config.eval_every = 4;
    config.eval_nodes_fraction = 0.3;
    config.node.training = bench::femnist_training();
    config.node.num_tips = 3;
    config.node.tip_sample_size = 6;
    config.node.reference.num_reference_models = 10;
    config.node.quantize_payloads = variant.quantize;
    config.node.use_dp = variant.dp;
    config.node.dp.clip_norm = 1.0;
    config.node.dp.noise_multiplier = variant.noise;
    config.seed = seed;
    config.threads = threads;
    config.timeline = bench_run.timeline();

    const core::RunResult run = [&] {
      auto timer = bench_run.phase(variant.name);
      return core::run_tangle_learning(dataset, factory, config,
                                       variant.name);
    }();
    const std::int64_t reach = run.rounds_to_accuracy(0.5);
    std::string cell;
    if (reach < 0) cell += '>';
    cell += std::to_string(reach < 0 ? static_cast<std::int64_t>(rounds)
                                     : reach);
    table.add_row({variant.name, std::to_string(variant.payload_bytes),
                   format_fixed(run.final_accuracy(), 3), std::move(cell)});
    std::cout << "... " << variant.name << " done ("
              << format_fixed(bench_run.seconds(), 0) << "s elapsed)\n";
    runs.push_back(run);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";
  bench::print_series(std::cout, runs);
  bench::write_series_csv(csv, runs);
  bench_run.finish(std::cout);
  return 0;
}
