// Fig. 5: development of consensus model accuracy when adversarial nodes
// inject transactions with random N(0,1) model weights, starting after a
// benign pre-training phase. One run per malicious fraction
// p in {0.1, 0.2, 0.25, 0.3}. Nodes use the Section III-E robust tip
// selection with the paper's parameterization (tip sampling rounds and
// consensus sampling rounds = active nodes per round).
// Expected shape (paper): accuracy unaffected up to p = 0.2; the consensus
// is overtaken within a few dozen rounds for p = 0.25 and 0.3.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto pretrain = static_cast<std::size_t>(args.get_int(
      "pretrain-rounds", 30, "benign rounds before the attack (paper: 200)"));
  const auto attack_rounds = static_cast<std::size_t>(args.get_int(
      "attack-rounds", 20, "attacked rounds to observe (paper: 50)"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers (paper: 3500)"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round (paper: 35)"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const bool eval_cache =
      args.get_int("eval-cache", 1,
                   "cache loss probes across rounds (0 = off; outputs are "
                   "byte-identical either way)") != 0;
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const bool biased_walk =
      args.get_int("biased-walk", 0,
                   "walk-loss-biased tip selection (the Section III "
                   "personalisation variant; evaluates interior payloads "
                   "at every branch step)") != 0;
  const std::string fractions_list = args.get_string(
      "fractions", "0.1,0.2,0.25,0.3", "malicious fractions to test");
  const std::string csv =
      args.get_string("csv", "fig5_random_poison.csv", "output CSV path");
  bench::BenchRun bench_run("fig5_random_poison", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("pretrain_rounds", pretrain);
  bench_run.config("attack_rounds", attack_rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("threads", threads);
  bench_run.config("eval_cache", eval_cache);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("biased_walk", biased_walk);
  bench_run.config("fractions", fractions_list);
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);
  std::cout << "Fig. 5 reproduction: random-weight poisoning attack on the "
               "FEMNIST-synth tangle\nattack starts after round " << pretrain
            << "; accuracy tracked through round " << pretrain + attack_rounds
            << "\n\n";

  std::vector<double> fractions;
  for (std::size_t pos = 0; pos < fractions_list.size();) {
    const auto comma = fractions_list.find(',', pos);
    fractions.push_back(std::stod(fractions_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<core::RunResult> runs;
  for (const double p : fractions) {
    core::SimulationConfig config;
    config.rounds = pretrain + attack_rounds;
    config.nodes_per_round = nodes;
    config.eval_every = 2;
    config.eval_nodes_fraction = 0.3;
    config.node.training = bench::femnist_training();
    // Section III-E defence with the paper's parameterization: candidate
    // tip walks = active nodes per round.
    config.node.num_tips = 2;
    config.node.tip_sample_size = nodes;
    config.node.use_biased_walk = biased_walk;
    config.node.reference.num_reference_models = 10;
    config.attack = core::AttackType::kRandomPoison;
    config.malicious_fraction = p;
    config.attack_start_round = pretrain + 1;
    config.seed = seed;
    config.threads = threads;
    config.use_eval_cache = eval_cache;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();

    core::RunResult run = [&] {
      auto timer = bench_run.phase("p=" + format_fixed(p, 2));
      return core::run_tangle_learning(dataset, factory, config,
                                       "p=" + format_fixed(p, 2));
    }();
    // Keep only the attack window (the figure's x-axis starts at the
    // attack round).
    std::erase_if(run.history, [&](const core::RoundRecord& record) {
      return record.round + 4 < pretrain;
    });
    std::cout << "p=" << format_fixed(p, 2)
              << ": final accuracy=" << format_fixed(run.final_accuracy(), 3)
              << " (" << format_fixed(bench_run.seconds(), 0)
              << "s elapsed)\n";
    runs.push_back(std::move(run));
  }

  std::cout << "\n";
  bench::print_series(std::cout, runs);
  bench::write_series_csv(csv, runs);
  bench_run.finish(std::cout);
  return 0;
}
