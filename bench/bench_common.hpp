// Shared scaffolding for the experiment harnesses: paper-shaped (but
// laptop-scale) dataset and model builders, plus result rendering. Every
// harness accepts --users/--rounds/... flags so the experiments can be
// re-run at paper scale; the defaults complete unattended on one core.
#pragma once

#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "data/shakespeare_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "tangle/payload_codec.hpp"

namespace tanglefl::bench {

/// Registers the shared --payload-codec flag and parses it. Spec grammar
/// (tangle/payload_codec.hpp): "off" (the default — byte-identical to
/// pre-codec harness output), "default" (the lossless
/// delta+entropy+chunk preset), or a comma list of
/// delta,topk[:fraction],quantize,entropy,chunk. A malformed spec is
/// reported through args.should_exit() with the offending token named.
inline tangle::PayloadCodecConfig parse_payload_codec_flag(ArgParser& args) {
  const std::string spec = args.get_string(
      "payload-codec", "off",
      "payload codec stages: off | default | comma list of "
      "delta,topk[:fraction],quantize,entropy,chunk");
  try {
    return tangle::parse_codec_spec(spec);
  } catch (const std::invalid_argument& error) {
    args.set_error(std::string("--payload-codec: ") + error.what());
    return {};
  }
}

/// Default FEMNIST-like scale: the paper's 3500 writers / 62 classes /
/// 28x28 images shrink to 60 / 10 / 12 so a full convergence sweep runs in
/// seconds. Structure (non-IID by writer, unbalanced, 0.8 split) is kept.
struct FemnistScale {
  std::size_t users = 60;
  std::size_t classes = 10;
  std::size_t image_size = 12;
  double mean_samples = 25.0;
  std::uint64_t seed = 42;
};

inline data::FederatedDataset make_femnist(const FemnistScale& scale) {
  data::FemnistSynthConfig config;
  config.num_users = scale.users;
  config.num_classes = scale.classes;
  config.image_size = scale.image_size;
  config.mean_samples_per_user = scale.mean_samples;
  config.train_fraction = 0.8;  // Table I
  config.seed = scale.seed;
  return data::make_femnist_synth(config);
}

inline nn::ModelFactory femnist_factory(const FemnistScale& scale) {
  nn::ImageCnnConfig config;
  config.image_size = scale.image_size;
  config.num_classes = scale.classes;
  return [config] { return nn::make_image_cnn(config); };
}

/// Default Shakespeare-like scale: 1058 roles / 80-char vocab / 80-char
/// windows shrink to 20 / 24 / 12; min 64 samples per role and the 0.9
/// split are kept from Table I.
struct ShakespeareScale {
  std::size_t users = 20;
  std::size_t vocab = 24;
  std::size_t seq_length = 12;
  double mean_chars = 400.0;
  std::uint64_t seed = 42;
};

inline data::FederatedDataset make_shakespeare(const ShakespeareScale& scale) {
  data::ShakespeareSynthConfig config;
  config.num_users = scale.users;
  config.vocab_size = scale.vocab;
  config.seq_length = scale.seq_length;
  config.mean_chars_per_user = scale.mean_chars;
  config.train_fraction = 0.9;  // Table I
  config.min_samples_per_user = 64;
  config.seed = scale.seed;
  return data::make_shakespeare_synth(config);
}

inline nn::ModelFactory shakespeare_factory(const ShakespeareScale& scale) {
  nn::CharLstmConfig config;
  config.vocab_size = scale.vocab;
  config.seq_length = scale.seq_length;
  config.embedding_dim = 12;
  config.hidden_dim = 32;
  config.lstm_layers = 2;  // "stacked LSTM", Table I
  return [config] { return nn::make_char_lstm(config); };
}

/// Training configuration mirroring Table I (lr scaled to our model sizes;
/// 1 local epoch as in the paper).
inline data::TrainConfig femnist_training() {
  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.06;  // Table I
  return config;
}

inline data::TrainConfig shakespeare_training() {
  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.8;  // Table I
  config.sgd.grad_clip = 5.0;
  return config;
}

/// One observability context per harness run: registers the shared
/// --metrics-json/--trace flags, arms the metrics registry and (optionally)
/// a Chrome trace sink, accumulates named phase timings, and writes the
/// run manifest next to the CSV output. Replaces the per-harness
/// `Stopwatch watch; ... watch.seconds()` pattern.
///
/// Usage:
///   ArgParser args(argc, argv);
///   BenchRun run("fig3_femnist_convergence", args);
///   ... register more flags ...
///   if (args.should_exit()) return 0;
///   run.start(seed);
///   { auto timer = run.phase("tangle"); ... }
///   run.finish(std::cout);
class BenchRun {
 public:
  BenchRun(std::string name, ArgParser& args)
      : manifest_path_(args.get_string(
            "metrics-json", name + "_metrics.json",
            "run-manifest JSON output path (empty to skip)")),
        trace_path_(args.get_string(
            "trace", "",
            "Chrome trace_event JSON output path (empty = tracing off)")),
        timeline_path_(args.get_string(
            "timeline", "",
            "per-round time-series JSONL output path (empty = off; a .csv "
            "sibling is written next to it)")) {
    manifest_.name = std::move(name);
  }

  ~BenchRun() {
    // A harness that returns early still detaches cleanly; the sink
    // flushes whatever was recorded.
    if (trace_sink_) obs::set_trace_sink(nullptr);
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  /// Arms metrics + tracing and starts the total-time clock. Call once,
  /// after the ArgParser early-exit check so --help runs stay side-effect
  /// free.
  void start(std::uint64_t seed) {
    manifest_.seed = seed;
    obs::MetricsRegistry::global().reset();
    obs::set_timing_enabled(true);
    if (!trace_path_.empty()) {
      trace_sink_ = std::make_unique<obs::TraceSink>(trace_path_);
      obs::set_trace_sink(trace_sink_.get());
    }
    total_.restart();
  }

  /// Records one configuration entry into the manifest.
  void config(const std::string& key, const std::string& value) {
    manifest_.config.emplace_back(key, value);
  }
  void config(const std::string& key, const char* value) {
    config(key, std::string(value));
  }
  void config(const std::string& key, std::int64_t value) {
    config(key, std::to_string(value));
  }
  void config(const std::string& key, std::size_t value) {
    config(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config(key, format_fixed(value, 6));
  }
  void config(const std::string& key, bool value) {
    config(key, std::string(value ? "true" : "false"));
  }

  /// Returns a timer adding the enclosing scope's wall time to the named
  /// phase accumulator (phases repeat and sum).
  ScopedTimer phase(const std::string& name) {
    return ScopedTimer(phase_seconds_[name]);
  }

  double seconds() const { return total_.seconds(); }

  /// Timeline sink for engine configs (SimulationConfig::timeline etc.);
  /// null when --timeline was not given, which keeps all health probing
  /// disabled.
  obs::Timeline* timeline() noexcept {
    return timeline_path_.empty() ? nullptr : &timeline_;
  }

  /// Flushes the trace, writes the manifest (full metric snapshot included)
  /// and prints the wall-time summary line.
  void finish(std::ostream& out) {
    manifest_.total_seconds = total_.seconds();
    manifest_.phase_seconds.assign(phase_seconds_.begin(),
                                   phase_seconds_.end());
    if (trace_sink_) {
      obs::set_trace_sink(nullptr);
      trace_sink_->flush();
      out << "(trace written to " << trace_sink_->path() << ")\n";
      trace_sink_.reset();
    }
    if (!manifest_path_.empty()) {
      const auto snapshot =
          obs::MetricsRegistry::global().snapshot(obs::SnapshotKind::kFull);
      if (obs::write_manifest(manifest_path_, manifest_, snapshot)) {
        out << "(run manifest written to " << manifest_path_ << ")\n";
      } else {
        out << "(failed to write run manifest " << manifest_path_ << ")\n";
      }
    }
    if (!timeline_path_.empty() && !timeline_.empty()) {
      const std::string csv_path = timeline_csv_path(timeline_path_);
      if (timeline_.write_jsonl(timeline_path_) &&
          timeline_.write_csv(csv_path)) {
        out << "(timeline written to " << timeline_path_ << " and "
            << csv_path << ")\n";
      } else {
        out << "(failed to write timeline " << timeline_path_ << ")\n";
      }
    }
    out << "total wall time: " << format_fixed(manifest_.total_seconds, 1)
        << "s\n";
  }

 private:
  /// `foo.jsonl` -> `foo.csv`; anything else gets `.csv` appended.
  static std::string timeline_csv_path(const std::string& jsonl_path) {
    const std::string suffix = ".jsonl";
    if (jsonl_path.size() > suffix.size() &&
        jsonl_path.compare(jsonl_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
      return jsonl_path.substr(0, jsonl_path.size() - suffix.size()) + ".csv";
    }
    return jsonl_path + ".csv";
  }

  obs::RunManifest manifest_;
  std::string manifest_path_;
  std::string trace_path_;
  std::string timeline_path_;
  obs::Timeline timeline_;
  // std::map: node-based, so the double& held by a live ScopedTimer stays
  // valid as more phases are added.
  std::map<std::string, double> phase_seconds_;
  std::unique_ptr<obs::TraceSink> trace_sink_;
  Stopwatch total_;
};

/// Prints aligned accuracy-vs-round series (one column per run), the text
/// equivalent of the paper's figures.
inline void print_series(std::ostream& out,
                         const std::vector<core::RunResult>& runs) {
  std::vector<std::string> header = {"round"};
  for (const auto& run : runs) header.push_back(run.label);
  TablePrinter table(std::move(header));
  if (runs.empty()) return;
  for (std::size_t i = 0; i < runs.front().history.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(runs.front().history[i].round)};
    for (const auto& run : runs) {
      row.push_back(i < run.history.size()
                        ? format_fixed(run.history[i].accuracy, 3)
                        : "");
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Writes the same series as CSV for external plotting. Columns:
/// label,round,accuracy,loss,target_misclassification.
inline void write_series_csv(const std::string& path,
                             const std::vector<core::RunResult>& runs) {
  CsvWriter csv(path, {"label", "round", "accuracy", "loss",
                       "target_misclassification"});
  for (const auto& run : runs) {
    for (const auto& record : run.history) {
      csv.add_row({run.label, std::to_string(record.round),
                   format_fixed(record.accuracy, 5),
                   format_fixed(record.loss, 5),
                   format_fixed(record.target_misclassification, 5)});
    }
  }
  std::cout << "\n(series written to " << path << ")\n";
}

}  // namespace tanglefl::bench
