// Shared scaffolding for the experiment harnesses: paper-shaped (but
// laptop-scale) dataset and model builders, plus result rendering. Every
// harness accepts --users/--rounds/... flags so the experiments can be
// re-run at paper scale; the defaults complete unattended on one core.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "data/shakespeare_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace tanglefl::bench {

/// Default FEMNIST-like scale: the paper's 3500 writers / 62 classes /
/// 28x28 images shrink to 60 / 10 / 12 so a full convergence sweep runs in
/// seconds. Structure (non-IID by writer, unbalanced, 0.8 split) is kept.
struct FemnistScale {
  std::size_t users = 60;
  std::size_t classes = 10;
  std::size_t image_size = 12;
  double mean_samples = 25.0;
  std::uint64_t seed = 42;
};

inline data::FederatedDataset make_femnist(const FemnistScale& scale) {
  data::FemnistSynthConfig config;
  config.num_users = scale.users;
  config.num_classes = scale.classes;
  config.image_size = scale.image_size;
  config.mean_samples_per_user = scale.mean_samples;
  config.train_fraction = 0.8;  // Table I
  config.seed = scale.seed;
  return data::make_femnist_synth(config);
}

inline nn::ModelFactory femnist_factory(const FemnistScale& scale) {
  nn::ImageCnnConfig config;
  config.image_size = scale.image_size;
  config.num_classes = scale.classes;
  return [config] { return nn::make_image_cnn(config); };
}

/// Default Shakespeare-like scale: 1058 roles / 80-char vocab / 80-char
/// windows shrink to 20 / 24 / 12; min 64 samples per role and the 0.9
/// split are kept from Table I.
struct ShakespeareScale {
  std::size_t users = 20;
  std::size_t vocab = 24;
  std::size_t seq_length = 12;
  double mean_chars = 400.0;
  std::uint64_t seed = 42;
};

inline data::FederatedDataset make_shakespeare(const ShakespeareScale& scale) {
  data::ShakespeareSynthConfig config;
  config.num_users = scale.users;
  config.vocab_size = scale.vocab;
  config.seq_length = scale.seq_length;
  config.mean_chars_per_user = scale.mean_chars;
  config.train_fraction = 0.9;  // Table I
  config.min_samples_per_user = 64;
  config.seed = scale.seed;
  return data::make_shakespeare_synth(config);
}

inline nn::ModelFactory shakespeare_factory(const ShakespeareScale& scale) {
  nn::CharLstmConfig config;
  config.vocab_size = scale.vocab;
  config.seq_length = scale.seq_length;
  config.embedding_dim = 12;
  config.hidden_dim = 32;
  config.lstm_layers = 2;  // "stacked LSTM", Table I
  return [config] { return nn::make_char_lstm(config); };
}

/// Training configuration mirroring Table I (lr scaled to our model sizes;
/// 1 local epoch as in the paper).
inline data::TrainConfig femnist_training() {
  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.06;  // Table I
  return config;
}

inline data::TrainConfig shakespeare_training() {
  data::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.8;  // Table I
  config.sgd.grad_clip = 5.0;
  return config;
}

/// Prints aligned accuracy-vs-round series (one column per run), the text
/// equivalent of the paper's figures.
inline void print_series(std::ostream& out,
                         const std::vector<core::RunResult>& runs) {
  std::vector<std::string> header = {"round"};
  for (const auto& run : runs) header.push_back(run.label);
  TablePrinter table(std::move(header));
  if (runs.empty()) return;
  for (std::size_t i = 0; i < runs.front().history.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(runs.front().history[i].round)};
    for (const auto& run : runs) {
      row.push_back(i < run.history.size()
                        ? format_fixed(run.history[i].accuracy, 3)
                        : "");
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Writes the same series as CSV for external plotting. Columns:
/// label,round,accuracy,loss,target_misclassification.
inline void write_series_csv(const std::string& path,
                             const std::vector<core::RunResult>& runs) {
  CsvWriter csv(path, {"label", "round", "accuracy", "loss",
                       "target_misclassification"});
  for (const auto& run : runs) {
    for (const auto& record : run.history) {
      csv.add_row({run.label, std::to_string(record.round),
                   format_fixed(record.accuracy, 5),
                   format_fixed(record.loss, 5),
                   format_fixed(record.target_misclassification, 5)});
    }
  }
  std::cout << "\n(series written to " << path << ")\n";
}

}  // namespace tanglefl::bench
