// Fig. 4: mean accuracy per round of federated averaging (baseline) and
// unoptimized tangle learning on the Shakespeare-like next-character task,
// 10 active nodes per round. Expected shape (paper): the tangle trails the
// baseline through an initial bootstrapping phase, then closes to a final
// gap of a few percentage points.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 50, "training rounds per run (paper: 200)"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 20, "number of roles (paper: 1058)"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round (paper: 10)"));
  const auto eval_every = static_cast<std::size_t>(
      args.get_int("eval-every", 4, "evaluation cadence in rounds"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads for per-round training"));
  const auto kernel_threads = static_cast<std::size_t>(args.get_int(
      "kernel-threads", 0,
      "GEMM kernel pool size for the tangle run (0 = serial; results are "
      "bit-identical for any value)"));
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string csv = args.get_string(
      "csv", "fig4_shakespeare_convergence.csv", "output CSV path");
  bench::BenchRun run("fig4_shakespeare_convergence", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  run.start(seed);
  run.config("rounds", rounds);
  run.config("users", users);
  run.config("nodes", nodes);
  run.config("eval_every", eval_every);
  run.config("threads", threads);
  run.config("kernel_threads", kernel_threads);
  run.config("eval_batch", eval_batch);
  run.config("payload_codec", tangle::codec_spec_string(codec));
  run.config("csv", csv);

  bench::ShakespeareScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_shakespeare(scale);
  const nn::ModelFactory factory = bench::shakespeare_factory(scale);
  std::cout << "Fig. 4 reproduction: Shakespeare-synth convergence, "
            << dataset.num_users() << " roles, "
            << dataset.stats().total_samples << " samples, model "
            << factory().summary() << "\n\n";

  fedavg::FedAvgConfig fedavg_config;
  fedavg_config.rounds = rounds;
  fedavg_config.clients_per_round = nodes;
  fedavg_config.eval_every = eval_every;
  fedavg_config.eval_nodes_fraction = 0.3;
  fedavg_config.training = bench::shakespeare_training();
  fedavg_config.seed = seed;
  fedavg_config.threads = threads;
  const core::RunResult fedavg_run = [&] {
    auto timer = run.phase("fedavg");
    return fedavg::run_fedavg(dataset, factory, fedavg_config, "fedavg");
  }();

  // Fig. 4 runs the tangle *without* hyperparameter optimization.
  core::SimulationConfig tangle_config;
  tangle_config.rounds = rounds;
  tangle_config.nodes_per_round = nodes;
  tangle_config.eval_every = eval_every;
  tangle_config.eval_nodes_fraction = 0.3;
  tangle_config.node.training = bench::shakespeare_training();
  tangle_config.node.num_tips = 2;
  tangle_config.node.tip_sample_size = 2;
  tangle_config.node.reference.num_reference_models = 1;
  tangle_config.seed = seed;
  tangle_config.threads = threads;
  tangle_config.kernel_threads = kernel_threads;
  tangle_config.use_eval_batch = eval_batch;
  tangle_config.codec = codec;
  tangle_config.timeline = run.timeline();
  const core::RunResult tangle_run = [&] {
    auto timer = run.phase("tangle");
    return core::run_tangle_learning(dataset, factory, tangle_config,
                                     "tangle");
  }();

  bench::print_series(std::cout, {fedavg_run, tangle_run});
  std::cout << "final: fedavg=" << format_fixed(fedavg_run.final_accuracy(), 3)
            << " tangle=" << format_fixed(tangle_run.final_accuracy(), 3)
            << " gap=" << format_fixed(fedavg_run.final_accuracy() -
                                           tangle_run.final_accuracy(), 3)
            << " (paper: 0.55 vs 0.50 after 200 rounds)\n";

  bench::write_series_csv(csv, {fedavg_run, tangle_run});
  run.finish(std::cout);
  return 0;
}
