// Micro-benchmarks for the NN substrate: the inner loops every simulated
// training round spends its time in.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "nn/loss.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/stopwatch.hpp"
#include "nn/model_zoo.hpp"
#include "nn/ops.hpp"
#include "nn/params.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace tanglefl;

nn::Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  nn::Tensor t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.values()) v = static_cast<float>(rng.normal());
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Tensor a = random_tensor({n, n}, 1);
  const nn::Tensor b = random_tensor({n, n}, 2);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Tensor a = random_tensor({n, n}, 1);
  const nn::Tensor b = random_tensor({n, n}, 2);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::ops::reference::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulReference)->Arg(128)->Arg(256);

// Kernel-pool scaling of one square GEMM; arg = worker count (results are
// bit-identical to the serial kernel by the row-partitioning contract).
void BM_MatmulPool(benchmark::State& state) {
  const std::size_t n = 256;
  const auto workers = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(workers);
  const nn::Tensor a = random_tensor({n, n}, 1);
  const nn::Tensor b = random_tensor({n, n}, 2);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::ops::matmul(a, b, c, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulPool)->Arg(2)->Arg(4);

void BM_Conv2DForward(benchmark::State& state) {
  const auto image = static_cast<std::size_t>(state.range(0));
  const nn::Tensor x = random_tensor({8, 1, image, image}, 1);
  const nn::Tensor w = random_tensor({8, 1, 3, 3}, 2);
  const nn::Tensor bias = random_tensor({8}, 3);
  const nn::ops::Conv2DShape shape{1, 8, 3, 1, 1};
  nn::Tensor y({8, 8, image, image});
  for (auto _ : state) {
    nn::ops::conv2d_forward(x, w, bias, shape, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(12)->Arg(28);

void BM_CnnTrainStep(benchmark::State& state) {
  nn::ImageCnnConfig config;
  config.image_size = 12;
  config.num_classes = 10;
  nn::Model model = nn::make_image_cnn(config);
  Rng rng(1);
  model.init(rng);
  const nn::Tensor x = random_tensor({10, 1, 12, 12}, 2);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStep);

void BM_LstmTrainStep(benchmark::State& state) {
  nn::CharLstmConfig config;
  config.vocab_size = 24;
  config.seq_length = 12;
  config.embedding_dim = 12;
  config.hidden_dim = 32;
  nn::Model model = nn::make_char_lstm(config);
  Rng rng(1);
  model.init(rng);
  nn::Tensor x({10, 12});
  for (auto& v : x.values()) v = static_cast<float>(rng.uniform_index(24));
  std::vector<std::int32_t> labels(10);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(24));
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_LstmTrainStep);

// -------- paper-shape train steps (FEMNIST CNN, Shakespeare LSTM) --------
// arg = kernel-pool workers (0 = serial); the *Reference variants run the
// pre-optimization ops::reference loops for the speedup baseline.

void cnn_train_step_loop(benchmark::State& state, std::size_t workers) {
  nn::ImageCnnConfig config;
  config.image_size = 28;  // FEMNIST shape, Table I batch size 10
  config.num_classes = 62;
  nn::Model model = nn::make_image_cnn(config);
  Rng rng(1);
  model.init(rng);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers);
    model.set_kernel_pool(pool.get());
  }
  const nn::Tensor x = random_tensor({10, 1, 28, 28}, 2);
  std::vector<std::int32_t> labels(10);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(62));
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
  model.set_kernel_pool(nullptr);
}

void BM_TrainStepCNN(benchmark::State& state) {
  cnn_train_step_loop(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_TrainStepCNN)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TrainStepCNNReference(benchmark::State& state) {
  nn::ops::set_reference_kernels(true);
  cnn_train_step_loop(state, 0);
  nn::ops::set_reference_kernels(false);
}
BENCHMARK(BM_TrainStepCNNReference)->Unit(benchmark::kMillisecond);

void lstm_train_step_loop(benchmark::State& state, std::size_t workers) {
  nn::CharLstmConfig config;
  config.vocab_size = 80;  // Shakespeare shape: seq 80, hidden 256
  config.seq_length = 80;
  config.embedding_dim = 8;
  config.hidden_dim = 256;
  nn::Model model = nn::make_char_lstm(config);
  Rng rng(1);
  model.init(rng);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers);
    model.set_kernel_pool(pool.get());
  }
  nn::Tensor x({10, 80});
  for (auto& v : x.values()) v = static_cast<float>(rng.uniform_index(80));
  std::vector<std::int32_t> labels(10);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(80));
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
  model.set_kernel_pool(nullptr);
}

void BM_TrainStepLSTM(benchmark::State& state) {
  lstm_train_step_loop(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_TrainStepLSTM)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TrainStepLSTMReference(benchmark::State& state) {
  nn::ops::set_reference_kernels(true);
  lstm_train_step_loop(state, 0);
  nn::ops::set_reference_kernels(false);
}
BENCHMARK(BM_TrainStepLSTMReference)->Unit(benchmark::kMillisecond);

void BM_ParamAverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<nn::ParamVector> params(4, nn::ParamVector(n, 1.0f));
  for (auto _ : state) {
    auto avg = nn::average_params(params);
    benchmark::DoNotOptimize(avg.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n * sizeof(float)));
}
BENCHMARK(BM_ParamAverage)->Arg(10000)->Arg(100000);

// The two-parent case is the simulation hot path (num_tips = 2) and takes
// a heap-free fast path inside average_params.
void BM_AverageParams2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::ParamVector a(n, 1.0f);
  const nn::ParamVector b(n, 2.0f);
  const nn::ParamVector* parents[] = {&a, &b};
  for (auto _ : state) {
    auto avg = nn::average_params(
        std::span<const nn::ParamVector* const>(parents));
    benchmark::DoNotOptimize(avg.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(float)));
}
BENCHMARK(BM_AverageParams2)->Arg(10000)->Arg(100000);

}  // namespace

// google-benchmark rejects unrecognized flags, so the run manifest is
// requested through the environment instead: set TANGLEFL_METRICS_JSON to a
// path to enable domain-metric timing and write the manifest there.
int main(int argc, char** argv) {
  const char* manifest_path = std::getenv("TANGLEFL_METRICS_JSON");
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::MetricsRegistry::global().reset();
    tanglefl::obs::set_timing_enabled(true);
  }
  tanglefl::Stopwatch total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::RunManifest manifest;
    manifest.name = "micro_nn";
    manifest.total_seconds = total.seconds();
    const auto snapshot = tanglefl::obs::MetricsRegistry::global().snapshot(
        tanglefl::obs::SnapshotKind::kFull);
    if (!tanglefl::obs::write_manifest(manifest_path, manifest, snapshot)) {
      std::fprintf(stderr, "failed to write run manifest %s\n",
                   manifest_path);
      return 1;
    }
  }
  return 0;
}
