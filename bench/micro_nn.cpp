// Micro-benchmarks for the NN substrate: the inner loops every simulated
// training round spends its time in.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "nn/loss.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/stopwatch.hpp"
#include "nn/model_zoo.hpp"
#include "nn/ops.hpp"
#include "nn/params.hpp"
#include "support/rng.hpp"

namespace {

using namespace tanglefl;

nn::Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  nn::Tensor t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.values()) v = static_cast<float>(rng.normal());
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Tensor a = random_tensor({n, n}, 1);
  const nn::Tensor b = random_tensor({n, n}, 2);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2DForward(benchmark::State& state) {
  const auto image = static_cast<std::size_t>(state.range(0));
  const nn::Tensor x = random_tensor({8, 1, image, image}, 1);
  const nn::Tensor w = random_tensor({8, 1, 3, 3}, 2);
  const nn::Tensor bias = random_tensor({8}, 3);
  const nn::ops::Conv2DShape shape{1, 8, 3, 1, 1};
  nn::Tensor y({8, 8, image, image});
  for (auto _ : state) {
    nn::ops::conv2d_forward(x, w, bias, shape, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(12)->Arg(28);

void BM_CnnTrainStep(benchmark::State& state) {
  nn::ImageCnnConfig config;
  config.image_size = 12;
  config.num_classes = 10;
  nn::Model model = nn::make_image_cnn(config);
  Rng rng(1);
  model.init(rng);
  const nn::Tensor x = random_tensor({10, 1, 12, 12}, 2);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStep);

void BM_LstmTrainStep(benchmark::State& state) {
  nn::CharLstmConfig config;
  config.vocab_size = 24;
  config.seq_length = 12;
  config.embedding_dim = 12;
  config.hidden_dim = 32;
  nn::Model model = nn::make_char_lstm(config);
  Rng rng(1);
  model.init(rng);
  nn::Tensor x({10, 12});
  for (auto& v : x.values()) v = static_cast<float>(rng.uniform_index(24));
  std::vector<std::int32_t> labels(10);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(24));
  for (auto _ : state) {
    model.zero_gradients();
    const nn::Tensor logits = model.forward(x, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_LstmTrainStep);

void BM_ParamAverage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<nn::ParamVector> params(4, nn::ParamVector(n, 1.0f));
  for (auto _ : state) {
    auto avg = nn::average_params(params);
    benchmark::DoNotOptimize(avg.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n * sizeof(float)));
}
BENCHMARK(BM_ParamAverage)->Arg(10000)->Arg(100000);

}  // namespace

// google-benchmark rejects unrecognized flags, so the run manifest is
// requested through the environment instead: set TANGLEFL_METRICS_JSON to a
// path to enable domain-metric timing and write the manifest there.
int main(int argc, char** argv) {
  const char* manifest_path = std::getenv("TANGLEFL_METRICS_JSON");
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::MetricsRegistry::global().reset();
    tanglefl::obs::set_timing_enabled(true);
  }
  tanglefl::Stopwatch total;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (manifest_path != nullptr && *manifest_path != '\0') {
    tanglefl::obs::RunManifest manifest;
    manifest.name = "micro_nn";
    manifest.total_seconds = total.seconds();
    const auto snapshot = tanglefl::obs::MetricsRegistry::global().snapshot(
        tanglefl::obs::SnapshotKind::kFull);
    if (!tanglefl::obs::write_manifest(manifest_path, manifest, snapshot)) {
      std::fprintf(stderr, "failed to write run manifest %s\n",
                   manifest_path);
      return 1;
    }
  }
  return 0;
}
