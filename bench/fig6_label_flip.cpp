// Fig. 6: effects of a targeted label-flipping attack (source class 3
// relabeled as 8) on a pre-trained tangle, for malicious fractions
// p in {0.1, 0.2, 0.3}. Reports both series of the figure:
//   (a) consensus model accuracy per round, and
//   (b) average target misclassification percentage (true-3 samples
//       predicted as 8).
// Expected shape (paper): the p = 0.1 attack fails; p >= 0.2 initially
// succeeds, then the tangle recovers to a more accurate state within a
// few dozen rounds.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto pretrain = static_cast<std::size_t>(args.get_int(
      "pretrain-rounds", 30, "benign rounds before the attack (paper: 200)"));
  const auto attack_rounds = static_cast<std::size_t>(args.get_int(
      "attack-rounds", 24, "attacked rounds to observe (paper: 50)"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers (paper: 3500)"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round (paper: 35)"));
  const auto source = static_cast<std::int32_t>(
      args.get_int("source-class", 3, "attacked source class (paper: 3)"));
  const auto target = static_cast<std::int32_t>(
      args.get_int("target-class", 8, "targeted label (paper: 8)"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const bool eval_cache =
      args.get_int("eval-cache", 1,
                   "cache loss probes across rounds (0 = off; outputs are "
                   "byte-identical either way)") != 0;
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string fractions_list =
      args.get_string("fractions", "0.1,0.2,0.3", "malicious fractions");
  const std::string csv =
      args.get_string("csv", "fig6_label_flip.csv", "output CSV path");
  bench::BenchRun bench_run("fig6_label_flip", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("pretrain_rounds", pretrain);
  bench_run.config("attack_rounds", attack_rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("source_class", static_cast<std::int64_t>(source));
  bench_run.config("target_class", static_cast<std::int64_t>(target));
  bench_run.config("threads", threads);
  bench_run.config("eval_cache", eval_cache);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("fractions", fractions_list);
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);
  std::cout << "Fig. 6 reproduction: label-flipping attack " << source
            << " -> " << target << " on the FEMNIST-synth tangle\n"
            << "attack starts after round " << pretrain << "\n\n";

  std::vector<double> fractions;
  for (std::size_t pos = 0; pos < fractions_list.size();) {
    const auto comma = fractions_list.find(',', pos);
    fractions.push_back(std::stod(fractions_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<core::RunResult> runs;
  for (const double p : fractions) {
    core::SimulationConfig config;
    config.rounds = pretrain + attack_rounds;
    config.nodes_per_round = nodes;
    config.eval_every = 2;
    config.eval_nodes_fraction = 0.3;
    config.node.training = bench::femnist_training();
    config.node.num_tips = 2;
    config.node.tip_sample_size = nodes;
    config.node.reference.num_reference_models = 10;
    config.attack = core::AttackType::kLabelFlip;
    config.flip = {source, target};
    config.malicious_fraction = p;
    config.attack_start_round = pretrain + 1;
    config.seed = seed;
    config.threads = threads;
    config.use_eval_cache = eval_cache;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();

    core::RunResult run = [&] {
      auto timer = bench_run.phase("p=" + format_fixed(p, 2));
      return core::run_tangle_learning(dataset, factory, config,
                                       "p=" + format_fixed(p, 2));
    }();
    std::erase_if(run.history, [&](const core::RoundRecord& record) {
      return record.round + 4 < pretrain;
    });
    std::cout << "p=" << format_fixed(p, 2)
              << ": final accuracy=" << format_fixed(run.final_accuracy(), 3)
              << " final target misclassification="
              << format_fixed(
                     run.history.empty()
                         ? 0.0
                         : run.history.back().target_misclassification,
                     3)
              << " (" << format_fixed(bench_run.seconds(), 0)
              << "s elapsed)\n";
    runs.push_back(std::move(run));
  }

  std::cout << "\n(a) consensus model accuracy per round:\n";
  bench::print_series(std::cout, runs);

  std::cout << "\n(b) average target misclassification percentage:\n";
  std::vector<std::string> header = {"round"};
  for (const auto& run : runs) header.push_back(run.label);
  TablePrinter misclass(std::move(header));
  if (!runs.empty()) {
    for (std::size_t i = 0; i < runs.front().history.size(); ++i) {
      std::vector<std::string> row = {
          std::to_string(runs.front().history[i].round)};
      for (const auto& run : runs) {
        row.push_back(
            i < run.history.size()
                ? format_fixed(
                      100.0 * run.history[i].target_misclassification, 1)
                : "");
      }
      misclass.add_row(std::move(row));
    }
  }
  misclass.print(std::cout);

  bench::write_series_csv(csv, runs);
  bench_run.finish(std::cout);
  return 0;
}
