// Table II: effects of hyperparameters on the convergence speed of tangle
// learning, measured on the FEMNIST-like dataset. For every combination of
//   # tips (n)        in {2, 3}
//   sample size       in {n, 2n, 5n}
//   # reference models in {1, 2, 10, 50}
// the harness reports the number of rounds needed to reach 70% of the
// FedAvg reference model's accuracy. Expected shape (paper): 3 tips beat
// 2; 10 reference models beat 1; sample size 5n hurts.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(args.get_int(
      "rounds", 60, "max rounds per configuration (paper: unbounded)"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers (paper: 3500)"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round (paper: 35)"));
  const auto eval_every = static_cast<std::size_t>(
      args.get_int("eval-every", 2, "evaluation cadence in rounds"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads"));
  const std::string csv =
      args.get_string("csv", "table2_hyperparams.csv", "output CSV path");
  bench::BenchRun bench_run("table2_hyperparams", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("rounds", rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("eval_every", eval_every);
  bench_run.config("threads", threads);
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);

  // The reference model: FedAvg trained to the same round budget; the
  // target is 70% of its final accuracy.
  fedavg::FedAvgConfig fedavg_config;
  fedavg_config.rounds = rounds;
  fedavg_config.clients_per_round = nodes;
  fedavg_config.eval_every = eval_every;
  fedavg_config.eval_nodes_fraction = 0.3;
  fedavg_config.training = bench::femnist_training();
  fedavg_config.seed = seed;
  fedavg_config.threads = threads;
  const core::RunResult reference = [&] {
    auto timer = bench_run.phase("fedavg-reference");
    return fedavg::run_fedavg(dataset, factory, fedavg_config);
  }();
  const double target = 0.7 * reference.final_accuracy();
  std::cout << "Table II reproduction: rounds to reach 70% of the reference"
               " model accuracy\nreference (FedAvg) accuracy = "
            << format_fixed(reference.final_accuracy(), 3)
            << ", target = " << format_fixed(target, 3) << "\n\n";

  const std::size_t tip_options[] = {2, 3};
  const std::size_t sample_multipliers[] = {1, 2, 5};
  const std::size_t reference_options[] = {1, 2, 10, 50};

  TablePrinter table({"# tips (n)", "sample size", "ref models = 1", "2",
                      "10", "50"});
  CsvWriter csv_out(csv, {"num_tips", "sample_size", "reference_models",
                          "rounds_to_target", "final_accuracy"});

  for (const std::size_t tips : tip_options) {
    for (const std::size_t multiplier : sample_multipliers) {
      std::vector<std::string> row = {
          std::to_string(tips),
          multiplier == 1 ? "n" : [&] {
            std::string s = std::to_string(multiplier);
            s += 'n';
            return s;
          }()};
      for (const std::size_t references : reference_options) {
        core::SimulationConfig config;
        config.rounds = rounds;
        config.nodes_per_round = nodes;
        config.eval_every = eval_every;
        config.eval_nodes_fraction = 0.3;
        config.node.training = bench::femnist_training();
        config.node.num_tips = tips;
        config.node.tip_sample_size = tips * multiplier;
        config.node.reference.num_reference_models = references;
        config.seed = seed;
        config.threads = threads;
        config.timeline = bench_run.timeline();

        const core::RunResult run = [&] {
          auto timer = bench_run.phase("tangle-sweep");
          return core::run_tangle_learning(dataset, factory, config);
        }();
        const std::int64_t reached = run.rounds_to_accuracy(target);
        std::string cell;
        if (reached < 0) cell += '>';
        cell += std::to_string(reached < 0 ? static_cast<std::int64_t>(rounds)
                                           : reached);
        row.push_back(std::move(cell));
        csv_out.add_row({std::to_string(tips),
                         std::to_string(tips * multiplier),
                         std::to_string(references),
                         std::to_string(reached),
                         format_fixed(run.final_accuracy(), 4)});
      }
      table.add_row(std::move(row));
      std::cout << "... finished tips=" << tips << " sample="
                << multiplier << "n ("
                << format_fixed(bench_run.seconds(), 0) << "s elapsed)\n";
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(series written to " << csv << ")\n";
  bench_run.finish(std::cout);
  return 0;
}
