// Ablation: learning quality under gossip-replicated partial views —
// how much consensus accuracy costs when nodes never see the full ledger.
// Sweeps the gossip fanout and the per-pull transfer budget, and reports
// final accuracy next to mean replica coverage.
#include "bench_common.hpp"

#include "core/gossip_simulation.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 40, "training rounds per run"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const bool eval_cache =
      args.get_int("eval-cache", 1,
                   "cache loss probes across rounds (0 = off; outputs are "
                   "byte-identical either way)") != 0;
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string csv =
      args.get_string("csv", "ablation_gossip.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_gossip", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("rounds", rounds);
  bench_run.config("users", users);
  bench_run.config("nodes", nodes);
  bench_run.config("eval_cache", eval_cache);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);

  core::NodeConfig node;
  node.training = bench::femnist_training();
  node.num_tips = 3;
  node.tip_sample_size = 6;
  node.reference.num_reference_models = 10;
  node.reference.confidence.sample_rounds = nodes;

  std::cout << "Gossip-replicated tangle learning: partial views vs the "
               "fully replicated reference\n\n";

  // Reference: fully replicated round-based engine.
  core::SimulationConfig reference_config;
  reference_config.rounds = rounds;
  reference_config.nodes_per_round = nodes;
  reference_config.eval_every = 5;
  reference_config.eval_nodes_fraction = 0.3;
  reference_config.node = node;
  reference_config.seed = seed;
  reference_config.use_eval_cache = eval_cache;
  reference_config.use_eval_batch = eval_batch;
  reference_config.codec = codec;
  reference_config.timeline = bench_run.timeline();
  const core::RunResult reference = [&] {
    auto timer = bench_run.phase("full-replication");
    return core::run_tangle_learning(dataset, factory, reference_config,
                                     "full-replication");
  }();
  std::cout << "... full-replication reference done ("
            << format_fixed(bench_run.seconds(), 0) << "s)\n";

  struct Variant {
    std::string name;
    std::size_t fanout;
    std::size_t exchanges;
    std::size_t max_transfer;
    double pull_failure;
  };
  const std::vector<Variant> variants = {
      {"gossip k=3 x2", 3, 2, 0, 0.0},
      {"gossip k=2 x1", 2, 1, 0, 0.0},
      {"gossip k=3 x2 cap=16", 3, 2, 16, 0.0},
      {"gossip k=3 x2 30% loss", 3, 2, 0, 0.3},
  };

  TablePrinter table({"configuration", "final accuracy", "mean coverage",
                      "failed pulls"});
  table.add_row({"full replication (reference)",
                 format_fixed(reference.final_accuracy(), 3), "1.000", "0"});
  std::vector<core::RunResult> runs = {reference};

  for (const Variant& variant : variants) {
    core::GossipConfig config;
    config.rounds = rounds;
    config.nodes_per_round = nodes;
    config.peers_per_node = variant.fanout;
    config.gossip_exchanges = variant.exchanges;
    config.max_transfer = variant.max_transfer;
    config.pull_failure = variant.pull_failure;
    config.eval_every = 5;
    config.eval_nodes_fraction = 0.3;
    config.node = node;
    config.seed = seed;
    config.use_eval_cache = eval_cache;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();
    if (config.timeline != nullptr) config.timeline->begin_run(variant.name);

    core::GossipSimulation simulation(dataset, factory, config);
    core::RunResult run = [&] {
      auto timer = bench_run.phase(variant.name);
      return simulation.run();
    }();
    run.label = variant.name;
    table.add_row({variant.name, format_fixed(run.final_accuracy(), 3),
                   format_fixed(simulation.stats().final_mean_coverage, 3),
                   std::to_string(simulation.stats().failed_pulls)});
    std::cout << "... " << variant.name << " done ("
              << format_fixed(bench_run.seconds(), 0) << "s)\n";
    runs.push_back(std::move(run));
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: healthy gossip (k=3, two exchanges)\n"
               "tracks full replication; starved gossip (low fanout, small\n"
               "transfer caps, lossy pulls) lowers coverage and costs\n"
               "consensus accuracy.\n";
  bench::write_series_csv(csv, runs);
  bench_run.finish(std::cout);
  return 0;
}
