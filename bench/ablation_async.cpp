// Ablation: round-based vs asynchronous operation (the Section VI outlook
// of simulating real-world network conditions). Runs the event-driven
// simulation at several network-delay and message-loss settings with a
// training budget matched to a round-based reference run, and compares
// final consensus accuracy and ledger structure.
#include "bench_common.hpp"

#include "core/async_simulation.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers"));
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 40, "rounds for the round-based reference"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 10, "active nodes per round (reference)"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const bool eval_cache =
      args.get_int("eval-cache", 1,
                   "cache loss probes across wakeups (0 = off; outputs are "
                   "byte-identical either way)") != 0;
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string csv =
      args.get_string("csv", "ablation_async.csv", "output CSV path");
  bench::BenchRun bench_run("ablation_async", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  bench_run.start(seed);
  bench_run.config("users", users);
  bench_run.config("rounds", rounds);
  bench_run.config("nodes", nodes);
  bench_run.config("eval_cache", eval_cache);
  bench_run.config("eval_batch", eval_batch);
  bench_run.config("payload_codec", tangle::codec_spec_string(codec));
  bench_run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);

  core::NodeConfig node;
  node.training = bench::femnist_training();
  node.num_tips = 3;
  node.tip_sample_size = 6;
  node.reference.num_reference_models = 10;
  node.reference.confidence.sample_rounds = nodes;

  std::cout << "Round-based vs asynchronous tangle learning\n\n";

  // Reference: the Section IV round-based engine.
  core::SimulationConfig round_config;
  round_config.rounds = rounds;
  round_config.nodes_per_round = nodes;
  round_config.eval_every = 5;
  round_config.eval_nodes_fraction = 0.3;
  round_config.node = node;
  round_config.seed = seed;
  round_config.use_eval_cache = eval_cache;
  round_config.use_eval_batch = eval_batch;
  round_config.codec = codec;
  round_config.timeline = bench_run.timeline();
  const core::RunResult round_run = [&] {
    auto timer = bench_run.phase("round-based");
    return core::run_tangle_learning(dataset, factory, round_config,
                                     "rounds");
  }();
  std::cout << "... round-based reference done ("
            << format_fixed(bench_run.seconds(), 0) << "s)\n";

  // Async runs with a matched training budget: total wakeups ~=
  // rounds * nodes. With wake rate r per node over duration T,
  // E[wakeups] = users * r * T; pick T accordingly.
  const double wake_rate = 0.2;
  const double duration = static_cast<double>(rounds * nodes) /
                          (static_cast<double>(users) * wake_rate);

  struct Variant {
    std::string name;
    double delay;
    double loss;
  };
  const std::vector<Variant> variants = {
      {"async delay=0.1s", 0.1, 0.0},
      {"async delay=1s", 1.0, 0.0},
      {"async delay=5s", 5.0, 0.0},
      {"async delay=1s loss=30%", 1.0, 0.3},
  };

  std::vector<core::RunResult> runs = {round_run};
  TablePrinter table({"configuration", "final accuracy", "transactions",
                      "publishes lost"});
  table.add_row({"round-based (reference)",
                 format_fixed(round_run.final_accuracy(), 3),
                 std::to_string(round_run.history.empty()
                                    ? 0
                                    : round_run.history.back().tangle_size),
                 "0"});

  for (const Variant& variant : variants) {
    core::AsyncSimulationConfig config;
    config.duration_seconds = duration;
    config.wake_rate_per_node = wake_rate;
    config.mean_training_seconds = 1.0;
    config.network_delay_seconds = variant.delay;
    config.publish_loss = variant.loss;
    config.eval_every_seconds = duration / 8.0;
    config.eval_nodes_fraction = 0.3;
    config.node = node;
    config.seed = seed;
    config.use_eval_cache = eval_cache;
    config.use_eval_batch = eval_batch;
    config.codec = codec;
    config.timeline = bench_run.timeline();
    if (config.timeline != nullptr) config.timeline->begin_run(variant.name);

    core::AsyncTangleSimulation simulation(dataset, factory, config);
    core::RunResult run = [&] {
      auto timer = bench_run.phase(variant.name);
      return simulation.run();
    }();
    run.label = variant.name;
    table.add_row({variant.name, format_fixed(run.final_accuracy(), 3),
                   std::to_string(simulation.tangle().size()),
                   std::to_string(simulation.stats().lost)});
    std::cout << "... " << variant.name << " done ("
              << format_fixed(bench_run.seconds(), 0) << "s)\n";
    runs.push_back(std::move(run));
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: small delays track the round-based\n"
               "reference; large delays slow convergence (stale views);\n"
               "message loss thins the ledger but the consensus remains.\n";
  bench::write_series_csv(csv, runs);
  bench_run.finish(std::cout);
  return 0;
}
