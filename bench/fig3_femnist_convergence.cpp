// Fig. 3: mean prediction accuracy of federated averaging (baseline) and
// tangle learning on the FEMNIST-like dataset, for three nodes-per-round
// settings (subplots a/b/c). Two tangle variants are run:
//   * Tangle       — 2 selected tips, single consensus model (unoptimized)
//   * Tangle (opt.) — 3 tips, reference averaged from the top 10 models
// Expected shape (paper): FedAvg >= Tangle(opt.) ~ FedAvg > Tangle, with
// the unoptimized tangle closing to within ~0.1 of the baseline by the
// final rounds, and convergence roughly independent of nodes per round.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 60, "training rounds per run (paper: 200)"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 60, "number of writers (paper: 3500)"));
  const auto eval_every = static_cast<std::size_t>(
      args.get_int("eval-every", 5, "evaluation cadence in rounds (paper: 20)"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads for per-round training"));
  const auto kernel_threads = static_cast<std::size_t>(args.get_int(
      "kernel-threads", 0,
      "GEMM kernel pool size shared by the tangle runs (0 = serial; "
      "results are bit-identical for any value)"));
  const bool eval_batch =
      args.get_int("eval-batch", 1,
                   "batched multi-model candidate probes (0 = off; outputs "
                   "are byte-identical either way)") != 0;
  const tangle::PayloadCodecConfig codec =
      bench::parse_payload_codec_flag(args);
  const std::string nodes_list = args.get_string(
      "nodes", "6,10,20",
      "comma-separated nodes-per-round settings (paper: 10,35,50)");
  const std::string csv = args.get_string(
      "csv", "fig3_femnist_convergence.csv", "output CSV path");
  bench::BenchRun run("fig3_femnist_convergence", args);
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  run.start(seed);
  run.config("rounds", rounds);
  run.config("users", users);
  run.config("eval_every", eval_every);
  run.config("threads", threads);
  run.config("kernel_threads", kernel_threads);
  run.config("eval_batch", eval_batch);
  run.config("payload_codec", tangle::codec_spec_string(codec));
  run.config("nodes", nodes_list);
  run.config("csv", csv);

  bench::FemnistScale scale;
  scale.users = users;
  scale.seed = seed;
  const data::FederatedDataset dataset = bench::make_femnist(scale);
  const nn::ModelFactory factory = bench::femnist_factory(scale);
  std::cout << "Fig. 3 reproduction: FEMNIST-synth convergence, "
            << dataset.num_users() << " users, "
            << dataset.stats().total_samples << " samples, model "
            << factory().summary() << "\n";

  // Parse the nodes-per-round list.
  std::vector<std::size_t> node_settings;
  for (std::size_t pos = 0; pos < nodes_list.size();) {
    const auto comma = nodes_list.find(',', pos);
    const std::string token = nodes_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    node_settings.push_back(static_cast<std::size_t>(std::stoul(token)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<core::RunResult> all_runs;
  for (const std::size_t nodes : node_settings) {
    std::string suffix = "@";
    suffix += std::to_string(nodes);
    std::cout << "\n--- " << nodes << " nodes per round (Fig. 3"
              << (nodes == node_settings.front() ? "a" : "")
              << ") ---\n";

    fedavg::FedAvgConfig fedavg_config;
    fedavg_config.rounds = rounds;
    fedavg_config.clients_per_round = nodes;
    fedavg_config.eval_every = eval_every;
    fedavg_config.eval_nodes_fraction = 0.3;
    fedavg_config.training = bench::femnist_training();
    fedavg_config.seed = seed;
    fedavg_config.threads = threads;
    const core::RunResult fedavg_run = [&] {
      auto timer = run.phase("fedavg");
      return fedavg::run_fedavg(dataset, factory, fedavg_config,
                                "fedavg" + suffix);
    }();

    core::SimulationConfig base;
    base.rounds = rounds;
    base.nodes_per_round = nodes;
    base.eval_every = eval_every;
    base.eval_nodes_fraction = 0.3;
    base.node.training = bench::femnist_training();
    base.seed = seed;
    base.threads = threads;
    base.kernel_threads = kernel_threads;
    base.use_eval_batch = eval_batch;
    base.codec = codec;
    base.timeline = run.timeline();

    // Unoptimized: 2 tips, single consensus model (Section V-A, first trial).
    core::SimulationConfig plain = base;
    plain.node.num_tips = 2;
    plain.node.tip_sample_size = 2;
    plain.node.reference.num_reference_models = 1;
    const core::RunResult tangle_run = [&] {
      auto timer = run.phase("tangle");
      return core::run_tangle_learning(dataset, factory, plain,
                                       "tangle" + suffix);
    }();

    // Optimized: 3 tips, top-10 reference average (Section V-A).
    core::SimulationConfig opt = base;
    opt.node.num_tips = 3;
    opt.node.tip_sample_size = 6;
    opt.node.reference.num_reference_models = 10;
    const core::RunResult opt_run = [&] {
      auto timer = run.phase("tangle-opt");
      return core::run_tangle_learning(dataset, factory, opt,
                                       "tangle-opt" + suffix);
    }();

    bench::print_series(std::cout, {fedavg_run, tangle_run, opt_run});
    std::cout << "final: fedavg=" << format_fixed(fedavg_run.final_accuracy(), 3)
              << " tangle=" << format_fixed(tangle_run.final_accuracy(), 3)
              << " tangle-opt=" << format_fixed(opt_run.final_accuracy(), 3)
              << "\n";
    all_runs.push_back(fedavg_run);
    all_runs.push_back(tangle_run);
    all_runs.push_back(opt_run);
  }

  bench::write_series_csv(csv, all_runs);
  run.finish(std::cout);
  return 0;
}
