# Sanitizer wiring for every target in the project.
#
# Usage:
#   cmake -DTANGLEFL_SANITIZE=address,undefined ...   # asan + ubsan (composable)
#   cmake -DTANGLEFL_SANITIZE=thread ...              # tsan
#
# The flags are applied with add_compile_options/add_link_options from the
# top-level CMakeLists *before* any add_subdirectory, so they propagate to
# every target in src/, tests/, bench/ and examples/ without per-target
# plumbing. TSan is mutually exclusive with ASan/LSan by construction; the
# module rejects that combination with a clear error instead of letting the
# toolchain fail obscurely.

set(TANGLEFL_SANITIZE "" CACHE STRING
    "Comma/semicolon-separated sanitizers: address, undefined, thread")

function(tanglefl_enable_sanitizers)
  if(NOT TANGLEFL_SANITIZE)
    return()
  endif()

  # Accept "address,undefined", "address;undefined", or "address+undefined".
  string(REPLACE "," ";" _sans "${TANGLEFL_SANITIZE}")
  string(REPLACE "+" ";" _sans "${_sans}")

  set(_flags "")
  set(_has_thread FALSE)
  set(_has_address FALSE)
  foreach(_san IN LISTS _sans)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "address" OR _san STREQUAL "asan")
      list(APPEND _flags "-fsanitize=address")
      set(_has_address TRUE)
    elseif(_san STREQUAL "undefined" OR _san STREQUAL "ubsan")
      list(APPEND _flags "-fsanitize=undefined" "-fno-sanitize-recover=all")
    elseif(_san STREQUAL "thread" OR _san STREQUAL "tsan")
      list(APPEND _flags "-fsanitize=thread")
      set(_has_thread TRUE)
    elseif(_san STREQUAL "")
      # tolerate trailing separators
    else()
      message(FATAL_ERROR
          "TANGLEFL_SANITIZE: unknown sanitizer '${_san}' "
          "(expected address, undefined, and/or thread)")
    endif()
  endforeach()

  if(_has_thread AND _has_address)
    message(FATAL_ERROR
        "TANGLEFL_SANITIZE: 'thread' cannot be combined with 'address'")
  endif()

  if(NOT _flags)
    return()
  endif()
  list(REMOVE_DUPLICATES _flags)

  # Keep frame pointers so sanitizer stacks are readable, and keep enough
  # optimization that the stress tests still finish quickly.
  list(APPEND _flags "-fno-omit-frame-pointer" "-g")

  message(STATUS "tanglefl: sanitizers enabled: ${_flags}")
  add_compile_options(${_flags})
  add_link_options(${_flags})
endfunction()
