// FedAvg vs tangle, side by side on both benchmark tasks — a compressed
// version of the paper's Figs. 3 and 4 for interactive exploration. Shows
// the trade-off the paper quantifies: the decentralized tangle gives up a
// central aggregator (and its privacy/attack-surface problems, Section
// III-D) for a modest convergence penalty that hyperparameter tuning
// recovers.
//
// Build & run:  ./build/examples/fedavg_vs_tangle [--task femnist|shakespeare]
#include <iostream>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "data/shakespeare_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;

  ArgParser args(argc, argv);
  const std::string task =
      args.get_string("task", "femnist", "femnist or shakespeare");
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 24, "training rounds"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", 8, "active nodes per round"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42, "master seed"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;
  if (task != "femnist" && task != "shakespeare") {
    std::cerr << "error: --task must be femnist or shakespeare\n";
    return 1;
  }

  set_log_level(LogLevel::kWarn);

  // Assemble the task.
  data::FederatedDataset dataset = [&] {
    if (task == "femnist") {
      data::FemnistSynthConfig config;
      config.num_users = 40;
      config.num_classes = 8;
      config.image_size = 12;
      config.mean_samples_per_user = 25.0;
      config.seed = seed;
      return data::make_femnist_synth(config);
    }
    data::ShakespeareSynthConfig config;
    config.num_users = 12;
    config.vocab_size = 20;
    config.seq_length = 10;
    config.mean_chars_per_user = 350.0;
    config.seed = seed;
    return data::make_shakespeare_synth(config);
  }();

  const nn::ModelFactory factory = [&]() -> nn::ModelFactory {
    if (task == "femnist") {
      nn::ImageCnnConfig config;
      config.image_size = 12;
      config.num_classes = 8;
      return [config] { return nn::make_image_cnn(config); };
    }
    nn::CharLstmConfig config;
    config.vocab_size = 20;
    config.seq_length = 10;
    config.embedding_dim = 10;
    config.hidden_dim = 24;
    return [config] { return nn::make_char_lstm(config); };
  }();

  data::TrainConfig training;
  training.epochs = 1;
  training.sgd.learning_rate = task == "femnist" ? 0.06 : 0.8;
  if (task == "shakespeare") training.sgd.grad_clip = 5.0;

  std::cout << "task: " << dataset.name() << " ("
            << dataset.stats().total_samples << " samples across "
            << dataset.num_users() << " users)\nmodel: "
            << factory().summary() << "\n\n";

  fedavg::FedAvgConfig fedavg_config;
  fedavg_config.rounds = rounds;
  fedavg_config.clients_per_round = nodes;
  fedavg_config.eval_every = 3;
  fedavg_config.eval_nodes_fraction = 0.3;
  fedavg_config.training = training;
  fedavg_config.seed = seed;
  const core::RunResult fedavg_run =
      fedavg::run_fedavg(dataset, factory, fedavg_config);

  core::SimulationConfig tangle_config;
  tangle_config.rounds = rounds;
  tangle_config.nodes_per_round = nodes;
  tangle_config.eval_every = 3;
  tangle_config.eval_nodes_fraction = 0.3;
  tangle_config.node.training = training;
  tangle_config.node.num_tips = 3;
  tangle_config.node.tip_sample_size = 6;
  tangle_config.node.reference.num_reference_models = 10;
  tangle_config.seed = seed;
  const core::RunResult tangle_run =
      core::run_tangle_learning(dataset, factory, tangle_config);

  TablePrinter table({"round", "fedavg", "tangle (opt.)"});
  for (std::size_t i = 0; i < tangle_run.history.size(); ++i) {
    table.add_row({std::to_string(tangle_run.history[i].round),
                   format_fixed(fedavg_run.history[i].accuracy, 3),
                   format_fixed(tangle_run.history[i].accuracy, 3)});
  }
  table.print(std::cout);
  std::cout << "\nfinal: fedavg=" << format_fixed(fedavg_run.final_accuracy(), 3)
            << " tangle=" << format_fixed(tangle_run.final_accuracy(), 3)
            << "\n";
  return 0;
}
