// Quickstart: the smallest end-to-end tangle learning run.
//
//   * generate a tiny non-IID federated image dataset,
//   * run a few rounds of decentralized tangle learning,
//   * compare the consensus model against a FedAvg baseline,
//   * print the accuracy trajectory of both.
//
// Build & run:  ./build/examples/quickstart [--rounds N] [--users N]
#include <cstdio>
#include <iostream>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "fedavg/fedavg.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;

  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 20, "training rounds to simulate"));
  const auto users = static_cast<std::size_t>(
      args.get_int("users", 20, "number of federated users (writers)"));
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes-per-round", 5, "active nodes per round"));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 42, "master random seed"));
  const auto threads = static_cast<std::size_t>(
      args.get_int("threads", 1, "worker threads for per-round training"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);

  // 1. A small non-IID federated dataset: users are "writers" with
  //    individual styles and label mixes.
  data::FemnistSynthConfig data_config;
  data_config.num_users = users;
  data_config.num_classes = 5;
  data_config.image_size = 12;
  data_config.mean_samples_per_user = 25.0;
  data_config.seed = seed;
  const data::FederatedDataset dataset = data::make_femnist_synth(data_config);
  const data::DatasetStats stats = dataset.stats();
  std::cout << "dataset: " << stats.name << ", " << stats.num_users
            << " users, " << stats.total_samples << " samples, "
            << stats.num_classes << " classes\n";

  // 2. The model every node trains: a small CNN.
  nn::ImageCnnConfig model_config;
  model_config.image_size = data_config.image_size;
  model_config.num_classes = data_config.num_classes;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };
  std::cout << "model:   " << factory().summary() << "\n\n";

  // 3. Decentralized tangle learning.
  core::SimulationConfig tangle_config;
  tangle_config.rounds = rounds;
  tangle_config.nodes_per_round = nodes;
  tangle_config.eval_every = 2;
  tangle_config.eval_nodes_fraction = 0.5;
  tangle_config.seed = seed;
  tangle_config.threads = threads;
  tangle_config.node.training.sgd.learning_rate = 0.05;
  // The paper's hyperparameter-optimized configuration (Section V-A):
  // 3 tips, 2n candidate sample, reference averaged from the top 10.
  tangle_config.node.num_tips = 3;
  tangle_config.node.tip_sample_size = 6;
  tangle_config.node.reference.num_reference_models = 10;
  const core::RunResult tangle_run =
      core::run_tangle_learning(dataset, factory, tangle_config);

  // 4. The centralized FedAvg baseline on the same data and model.
  fedavg::FedAvgConfig fedavg_config;
  fedavg_config.rounds = rounds;
  fedavg_config.clients_per_round = nodes;
  fedavg_config.eval_every = 2;
  fedavg_config.eval_nodes_fraction = 0.5;
  fedavg_config.seed = seed;
  fedavg_config.threads = threads;
  fedavg_config.training.sgd.learning_rate = 0.05;
  const core::RunResult fedavg_run =
      fedavg::run_fedavg(dataset, factory, fedavg_config);

  // 5. Side-by-side accuracy trajectory.
  TablePrinter table({"round", "fedavg acc", "tangle acc", "tangle tx",
                      "tangle tips"});
  for (std::size_t i = 0; i < tangle_run.history.size(); ++i) {
    const auto& t = tangle_run.history[i];
    const auto& f = fedavg_run.history[i];
    table.add_row({std::to_string(t.round), format_fixed(f.accuracy, 3),
                   format_fixed(t.accuracy, 3), std::to_string(t.tangle_size),
                   std::to_string(t.tip_count)});
  }
  table.print(std::cout);

  std::cout << "\nfinal: fedavg=" << format_fixed(fedavg_run.final_accuracy(), 3)
            << " tangle=" << format_fixed(tangle_run.final_accuracy(), 3)
            << "\n";
  return 0;
}
