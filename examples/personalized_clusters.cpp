// Sub-tangle personalization (Section VI outlook): a population whose
// devices belong to two latent clusters with *different* tasks (distinct
// glyph sets rendered at the same size, same label space). With the
// standard structural random walk, all nodes fight over one consensus;
// with the accuracy-biased walk each node gravitates toward branches whose
// models fit its own data, so the two clusters grow largely separate
// sub-tangles.
//
// Reported metrics:
//   * intra-cluster approval affinity — the fraction of approval edges
//     whose child and parent were published by the same cluster (0.5 =
//     fully mixed),
//   * per-cluster accuracy of each cluster's best tip models.
//
// Build & run:  ./build/examples/personalized_clusters
#include <iostream>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "data/training.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

using namespace tanglefl;

/// Builds the two-cluster population: users [0, per_cluster) draw from
/// glyph set A, users [per_cluster, 2*per_cluster) from glyph set B.
data::FederatedDataset make_clustered(std::size_t per_cluster,
                                      std::uint64_t seed) {
  data::FemnistSynthConfig base;
  base.num_users = per_cluster;
  base.num_classes = 4;
  base.image_size = 10;
  base.mean_samples_per_user = 25.0;

  std::vector<data::UserData> users;
  for (int cluster = 0; cluster < 2; ++cluster) {
    data::FemnistSynthConfig config = base;
    // Different seeds draw different glyph prototypes: same labels, but
    // class c looks entirely different in cluster A vs B.
    config.seed = seed + static_cast<std::uint64_t>(cluster) * 1000;
    const data::FederatedDataset part = data::make_femnist_synth(config);
    for (const data::UserData& user : part.users()) {
      data::UserData copy = user;
      copy.user_id =
          (cluster == 0 ? "A/" : "B/") + user.user_id;
      users.push_back(std::move(copy));
    }
  }
  return data::FederatedDataset("two-cluster-femnist", "CNN", 4, 0.8,
                                std::move(users));
}

/// Cluster of a transaction by its publisher tag; -1 for genesis/unknown.
int cluster_of(const tangle::Transaction& tx) {
  if (tx.publisher.rfind("A/", 0) == 0) return 0;
  if (tx.publisher.rfind("B/", 0) == 0) return 1;
  return -1;
}

/// Fraction of approval edges whose endpoints belong to the same cluster.
double intra_cluster_affinity(const tangle::Tangle& tangle) {
  std::size_t same = 0, total = 0;
  for (tangle::TxIndex i = 1; i < tangle.size(); ++i) {
    const int child = cluster_of(tangle.transaction(i));
    if (child < 0) continue;
    for (const tangle::TxIndex p : tangle.parent_indices(i)) {
      const int parent = cluster_of(tangle.transaction(p));
      if (parent < 0) continue;
      ++total;
      if (parent == child) ++same;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) /
                                static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 24, "training rounds to simulate"));
  const auto per_cluster = static_cast<std::size_t>(
      args.get_int("per-cluster", 12, "devices per cluster"));
  const double beta = args.get_double(
      "beta", 4.0, "local-performance bias strength of the walk");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42, "master seed"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  const data::FederatedDataset dataset = make_clustered(per_cluster, seed);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 10;
  model_config.num_classes = 4;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  std::cout << "two latent clusters x " << per_cluster
            << " devices, same label space, different glyph tasks\n\n";

  const auto run_variant = [&](bool biased) {
    core::SimulationConfig config;
    config.rounds = rounds;
    config.nodes_per_round = 8;
    config.eval_every = rounds;
    config.node.num_tips = 2;
    config.node.tip_sample_size = 6;
    config.node.reference.num_reference_models = 5;
    config.node.training.sgd.learning_rate = 0.05;
    config.node.use_biased_walk = biased;
    config.node.walk_loss_beta = beta;
    config.seed = seed;
    core::TangleSimulation simulation(dataset, factory, config);
    for (std::uint64_t r = 1; r <= rounds; ++r) simulation.run_round(r);
    return intra_cluster_affinity(simulation.tangle());
  };

  const double structural = run_variant(false);
  const double biased = run_variant(true);

  TablePrinter table({"tip selection", "intra-cluster approval affinity"});
  table.add_row({"structural walk", format_fixed(structural, 3)});
  table.add_row({"accuracy-biased walk (beta=" + format_fixed(beta, 1) + ")",
                 format_fixed(biased, 3)});
  table.print(std::cout);

  std::cout << "\n0.5 means approvals ignore cluster membership; values\n"
               "approaching 1.0 mean each cluster approves (and trains on)\n"
               "its own sub-tangle — the personalization behaviour the\n"
               "paper sketches as future work.\n";
  return 0;
}
