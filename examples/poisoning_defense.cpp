// Poisoning-defence demo: runs the same random-weight poisoning attack
// twice — once against nodes using the basic Algorithm 2 tip selection and
// once against nodes using the Section III-E robust tip selection — and
// shows how the defence keeps the consensus model intact.
//
// Build & run:  ./build/examples/poisoning_defense [--fraction 0.25]
#include <iostream>

#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;

  ArgParser args(argc, argv);
  const double fraction = args.get_double(
      "fraction", 0.2, "fraction of nodes that turn malicious");
  const auto pretrain = static_cast<std::size_t>(
      args.get_int("pretrain-rounds", 16, "benign rounds before the attack"));
  const auto attack_rounds = static_cast<std::size_t>(
      args.get_int("attack-rounds", 14, "attacked rounds to observe"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42, "master seed"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);

  data::FemnistSynthConfig data_config;
  data_config.num_users = 30;
  data_config.num_classes = 5;
  data_config.image_size = 12;
  data_config.mean_samples_per_user = 25.0;
  data_config.seed = seed;
  const data::FederatedDataset dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = data_config.image_size;
  model_config.num_classes = data_config.num_classes;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  std::cout << "Random-weight poisoning attack: " << fraction * 100
            << "% of nodes turn malicious after round " << pretrain << "\n\n";

  const auto run_variant = [&](bool robust) {
    core::SimulationConfig config;
    config.rounds = pretrain + attack_rounds;
    config.nodes_per_round = 8;
    config.eval_every = 2;
    config.eval_nodes_fraction = 0.4;
    config.node.training.sgd.learning_rate = 0.05;
    config.node.num_tips = 2;
    // The defence: sample many candidate tips, validate each on local
    // data, and average/approve only the best two (Section III-E).
    config.node.tip_sample_size = robust ? 8 : 2;
    config.node.reference.num_reference_models = 5;
    config.attack = core::AttackType::kRandomPoison;
    config.malicious_fraction = fraction;
    config.attack_start_round = pretrain + 1;
    config.seed = seed;
    return core::run_tangle_learning(dataset, factory, config,
                                     robust ? "robust" : "basic");
  };

  const core::RunResult basic = run_variant(false);
  const core::RunResult robust = run_variant(true);

  TablePrinter table({"round", "basic tip selection", "robust (III-E)"});
  for (std::size_t i = 0; i < basic.history.size(); ++i) {
    table.add_row({std::to_string(basic.history[i].round),
                   format_fixed(basic.history[i].accuracy, 3),
                   format_fixed(robust.history[i].accuracy, 3)});
  }
  table.print(std::cout);

  std::cout << "\nAfter the attack begins (round " << pretrain + 1
            << "), the basic variant's consensus degrades while robust tip\n"
               "selection keeps validating candidate tips against local data"
               " and filters the poison.\n"
            << "final: basic=" << format_fixed(basic.final_accuracy(), 3)
            << " robust=" << format_fixed(robust.final_accuracy(), 3) << "\n";
  return 0;
}
