// Tangle explorer: builds a small learning tangle, then inspects the
// ledger the way Section III describes it — tips, confidences, ratings,
// the Algorithm 1 priority ordering — and dumps a Graphviz rendering in
// the style of Fig. 2 (genesis black, consensus dark gray, tips light
// gray).
//
// Build & run:  ./build/examples/tangle_explorer [--dot tangle.dot]
//               dot -Tpng tangle.dot -o tangle.png
#include <fstream>
#include <iostream>

#include "core/reference.hpp"
#include "core/simulation.hpp"
#include "data/femnist_synth.hpp"
#include "nn/model_zoo.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "tangle/dot_export.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;

  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 8, "rounds of training to ledger"));
  const std::string dot_path =
      args.get_string("dot", "tangle.dot", "Graphviz output path");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42, "master seed"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);

  data::FemnistSynthConfig data_config;
  data_config.num_users = 12;
  data_config.num_classes = 4;
  data_config.image_size = 10;
  data_config.mean_samples_per_user = 20.0;
  data_config.seed = seed;
  const data::FederatedDataset dataset = data::make_femnist_synth(data_config);

  nn::ImageCnnConfig model_config;
  model_config.image_size = 10;
  model_config.num_classes = 4;
  const nn::ModelFactory factory = [model_config] {
    return nn::make_image_cnn(model_config);
  };

  core::SimulationConfig config;
  config.rounds = rounds;
  config.nodes_per_round = 4;
  config.eval_every = rounds;
  config.node.training.sgd.learning_rate = 0.05;
  config.seed = seed;
  core::TangleSimulation simulation(dataset, factory, config);
  for (std::uint64_t r = 1; r <= rounds; ++r) simulation.run_round(r);

  const tangle::Tangle& tangle = simulation.tangle();
  const tangle::TangleView view = tangle.view();
  std::cout << "ledger after " << rounds << " rounds: " << tangle.size()
            << " transactions, " << view.tips().size() << " tips, "
            << simulation.store().size() << " distinct payloads\n\n";

  // Consensus quantities of Section III-A.
  Rng rng(seed);
  const auto confidences = tangle::compute_confidences(
      view, rng, {.sample_rounds = 64, .tip_selection = {}});
  const auto ratings = tangle::compute_ratings(view);

  // The Algorithm 1 priority ordering, highest first.
  std::vector<tangle::TxIndex> order(view.size());
  for (tangle::TxIndex i = 0; i < view.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](tangle::TxIndex a, tangle::TxIndex b) {
              return confidences[a] * ratings[a] >
                     confidences[b] * ratings[b];
            });

  std::cout << "top transactions by confidence x rating (Algorithm 1):\n";
  TablePrinter table(
      {"rank", "tx", "round", "publisher", "confidence", "rating", "priority"});
  for (std::size_t rank = 0; rank < std::min<std::size_t>(8, order.size());
       ++rank) {
    const tangle::TxIndex i = order[rank];
    const auto& tx = tangle.transaction(i);
    table.add_row({std::to_string(rank + 1), tangle::short_id(tx.id),
                   std::to_string(tx.round), tx.publisher,
                   format_fixed(confidences[i], 3),
                   format_fixed(ratings[i], 0),
                   format_fixed(confidences[i] * ratings[i], 2)});
  }
  table.print(std::cout);

  std::ofstream dot(dot_path);
  dot << tangle::to_dot(view);
  std::cout << "\nGraphviz rendering written to " << dot_path
            << " (render with: dot -Tpng " << dot_path << " -o tangle.png)\n";
  return 0;
}
