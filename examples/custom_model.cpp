// Bringing your own model and data to the learning tangle.
//
// This example federates a synthetic "sensor calibration" task — two
// Gaussian clusters per device with device-specific drift — through the
// generic partitioning API, defines a custom MLP with the layer toolkit,
// and trains it decentralized. It demonstrates the three extension points
// a downstream user touches:
//   1. build a DataSplit from your own feature/label arrays,
//   2. shard it with partition_dirichlet()/federate(),
//   3. provide a ModelFactory assembling any Layer stack.
//
// Build & run:  ./build/examples/custom_model
#include <cmath>
#include <iostream>

#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "nn/layer.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tanglefl;

  ArgParser args(argc, argv);
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", 16, "training rounds to simulate"));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7, "master seed"));
  if (args.should_exit()) return args.help_requested() ? 0 : 1;

  set_log_level(LogLevel::kWarn);
  Rng rng(seed);

  // 1. Your own data: a pooled sample collection as one DataSplit. Here,
  //    four interleaved Gaussian blobs over 3 features -> 4 classes.
  const std::size_t samples = 1200;
  data::DataSplit pool;
  pool.features = nn::Tensor({samples, 3});
  pool.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto label = static_cast<std::int32_t>(i % 4);
    const double angle = 1.5707 * label;
    pool.features.at(i, 0) =
        static_cast<float>(2.0 * std::cos(angle) + rng.normal() * 0.6);
    pool.features.at(i, 1) =
        static_cast<float>(2.0 * std::sin(angle) + rng.normal() * 0.6);
    pool.features.at(i, 2) = static_cast<float>(rng.normal());  // nuisance
    pool.labels[i] = label;
  }

  // 2. Federate it: non-IID Dirichlet shards across 15 devices.
  Rng partition_rng = rng.split(1);
  auto shards = data::partition_dirichlet(pool, 15, 4, 0.4, partition_rng);
  Rng federate_rng = rng.split(2);
  const data::FederatedDataset dataset = data::federate(
      "sensor-calibration", "MLP", 4, 0.8, std::move(shards), federate_rng);
  const data::DatasetStats stats = dataset.stats();
  std::cout << "dataset: " << stats.name << ", " << stats.num_users
            << " devices, " << stats.total_samples << " samples\n";

  // 3. Your own model: any stack of the provided layers.
  const nn::ModelFactory factory = [] {
    nn::Model model;
    model.emplace<nn::Linear>(3, 16);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dropout>(0.1);
    model.emplace<nn::Linear>(16, 8);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Linear>(8, 4);
    return model;
  };
  std::cout << "model:   " << factory().summary() << "\n\n";

  core::SimulationConfig config;
  config.rounds = rounds;
  config.nodes_per_round = 5;
  config.eval_every = 2;
  config.eval_nodes_fraction = 0.4;
  config.node.num_tips = 2;
  config.node.tip_sample_size = 4;
  config.node.reference.num_reference_models = 5;
  config.node.training.epochs = 2;
  config.node.training.sgd.learning_rate = 0.1;
  config.seed = seed;

  const core::RunResult run =
      core::run_tangle_learning(dataset, factory, config, "tangle");

  TablePrinter table({"round", "consensus accuracy", "ledger size", "tips"});
  for (const auto& record : run.history) {
    table.add_row({std::to_string(record.round),
                   format_fixed(record.accuracy, 3),
                   std::to_string(record.tangle_size),
                   std::to_string(record.tip_count)});
  }
  table.print(std::cout);
  std::cout << "\nfinal consensus accuracy: "
            << format_fixed(run.final_accuracy(), 3) << " (random = 0.25)\n";
  return 0;
}
