// Generic partitioning utilities for building federated datasets out of a
// pooled sample collection — the standard Dirichlet label-skew protocol
// plus IID splitting, exposed so downstream users can federate their own
// data through the public API (see examples/custom_model.cpp).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tanglefl::data {

/// Splits `pool` into `num_users` shards where each user's label mix is a
/// Dirichlet(alpha) draw: small alpha -> strongly non-IID, large alpha ->
/// nearly IID. Every sample is assigned to exactly one user.
std::vector<DataSplit> partition_dirichlet(const DataSplit& pool,
                                           std::size_t num_users,
                                           std::size_t num_classes,
                                           double alpha, Rng& rng);

/// IID random split of `pool` into `num_users` near-equal shards.
std::vector<DataSplit> partition_iid(const DataSplit& pool,
                                     std::size_t num_users, Rng& rng);

/// Wraps pre-partitioned shards into a FederatedDataset, splitting each
/// shard into train/test at `train_fraction`.
FederatedDataset federate(std::string name, std::string model_type,
                          std::size_t num_classes, double train_fraction,
                          std::vector<DataSplit> shards, Rng& rng);

}  // namespace tanglefl::data
