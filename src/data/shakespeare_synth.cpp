#include "data/shakespeare_synth.hpp"

#include <cassert>
#include <cmath>
#include <tuple>

#include "support/rng.hpp"

namespace tanglefl::data {
namespace {

constexpr std::uint64_t kGlobalChainStream = 0x5aa11;
constexpr std::uint64_t kUserChainStream = 0x5aa22;
constexpr std::uint64_t kTextStream = 0x5aa33;

/// Markov chain over character ids. `order` previous characters form the
/// context; each context row is a distribution over the vocabulary. Order
/// 1 keeps contexts dense enough to be learnable at laptop scale; order 2
/// is available for harder languages.
struct MarkovChain {
  std::size_t vocab = 0;
  std::size_t order = 1;
  std::vector<double> table;  // vocab^order rows of `vocab` entries

  std::size_t context_count() const {
    std::size_t count = 1;
    for (std::size_t i = 0; i < order; ++i) count *= vocab;
    return count;
  }

  /// Row for the context formed by the last `order` entries of `history`.
  std::span<const double> row(std::span<const std::size_t> history) const {
    std::size_t index = 0;
    for (std::size_t i = history.size() - order; i < history.size(); ++i) {
      index = index * vocab + history[i];
    }
    return {table.data() + index * vocab, vocab};
  }
};

/// Zipfian symbol-frequency profile: like natural-language characters,
/// a few symbols (space, e, t, ...) dominate. This matters for learning
/// dynamics — a model first fits these marginals, then the conditional
/// structure, just as on real text.
std::vector<double> zipf_profile(std::size_t vocab) {
  std::vector<double> profile(vocab);
  double total = 0.0;
  for (std::size_t i = 0; i < vocab; ++i) {
    profile[i] = 1.0 / static_cast<double>(i + 1);
    total += profile[i];
  }
  for (auto& p : profile) p /= total;
  return profile;
}

MarkovChain make_chain(std::size_t vocab, std::size_t order,
                       double concentration, Rng rng) {
  MarkovChain chain;
  chain.vocab = vocab;
  chain.order = order;
  // Asymmetric Dirichlet rows: expected row = the Zipf profile; the total
  // concentration (concentration * vocab) stays small so each context
  // still has strongly peaked, learnable transitions.
  const std::vector<double> profile = zipf_profile(vocab);
  std::vector<double> alphas(vocab);
  for (std::size_t i = 0; i < vocab; ++i) {
    alphas[i] = concentration * static_cast<double>(vocab) * profile[i];
  }
  const std::size_t contexts = chain.context_count();
  chain.table.reserve(contexts * vocab);
  for (std::size_t r = 0; r < contexts; ++r) {
    Rng row_rng = rng.split(r + 1);
    const std::vector<double> row = row_rng.dirichlet(alphas);
    chain.table.insert(chain.table.end(), row.begin(), row.end());
  }
  return chain;
}

/// Mixes a private chain into the global one: rows become
/// (1-m) * global + m * user.
MarkovChain mix_chains(const MarkovChain& global, const MarkovChain& user,
                       double mixture) {
  MarkovChain out;
  out.vocab = global.vocab;
  out.order = global.order;
  out.table.resize(global.table.size());
  for (std::size_t i = 0; i < out.table.size(); ++i) {
    out.table[i] = (1.0 - mixture) * global.table[i] + mixture * user.table[i];
  }
  return out;
}

std::vector<std::int32_t> generate_text(const MarkovChain& chain,
                                        std::size_t length, Rng& rng) {
  std::vector<std::int32_t> text;
  text.reserve(length);
  std::vector<std::size_t> history(chain.order);
  for (auto& h : history) h = rng.uniform_index(chain.vocab);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t next = rng.weighted_choice(chain.row(history));
    text.push_back(static_cast<std::int32_t>(next));
    history.erase(history.begin());
    history.push_back(next);
  }
  return text;
}

MarkovChain make_user_chain(const ShakespeareSynthConfig& config,
                            std::size_t user_id, const MarkovChain& global) {
  const MarkovChain private_chain = make_chain(
      config.vocab_size, config.markov_order, config.chain_concentration,
      Rng(config.seed).split(kUserChainStream).split(user_id + 1));
  return mix_chains(global, private_chain, config.style_mixture);
}

}  // namespace

std::vector<std::int32_t> generate_user_text(
    const ShakespeareSynthConfig& config, std::size_t user_id,
    std::size_t length) {
  const MarkovChain global =
      make_chain(config.vocab_size, config.markov_order,
                 config.chain_concentration,
                 Rng(config.seed).split(kGlobalChainStream));
  const MarkovChain chain = make_user_chain(config, user_id, global);
  Rng rng = Rng(config.seed).split(kTextStream).split(user_id + 1);
  return generate_text(chain, length, rng);
}

FederatedDataset make_shakespeare_synth(const ShakespeareSynthConfig& config) {
  assert(config.vocab_size >= 2 && config.seq_length >= 1);

  const MarkovChain global =
      make_chain(config.vocab_size, config.markov_order,
                 config.chain_concentration,
                 Rng(config.seed).split(kGlobalChainStream));

  std::vector<UserData> users;
  users.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    const MarkovChain chain = make_user_chain(config, u, global);
    Rng rng = Rng(config.seed).split(kTextStream).split(u + 1);

    const double log_mean = std::log(config.mean_chars_per_user);
    const auto text_length = static_cast<std::size_t>(std::llround(
        std::exp(rng.normal(log_mean, config.chars_log_sigma))));
    const std::vector<std::int32_t> text =
        generate_text(chain, text_length, rng);
    if (text.size() <= config.seq_length) continue;

    // Slice into (window, next char) examples.
    const std::size_t count = text.size() - config.seq_length;
    DataSplit all;
    all.features = nn::Tensor({count, config.seq_length});
    all.labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t t = 0; t < config.seq_length; ++t) {
        all.features.at(i, t) = static_cast<float>(text[i + t]);
      }
      all.labels[i] = text[i + config.seq_length];
    }

    UserData user;
    user.user_id = "role_" + std::to_string(u);
    Rng split_rng = rng.split(0x59111);
    std::tie(user.train, user.test) =
        train_test_split(all, config.train_fraction, split_rng);
    users.push_back(std::move(user));
  }

  FederatedDataset dataset("shakespeare-synth", "Stacked LSTM",
                           config.vocab_size, config.train_fraction,
                           std::move(users));
  dataset.filter_min_samples(config.min_samples_per_user);
  return dataset;
}

}  // namespace tanglefl::data
