#include "data/training.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::data {
namespace {

obs::Counter& batch_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("train.batches");
  return counter;
}

obs::Counter& example_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("train.examples");
  return counter;
}

}  // namespace

double train_local(nn::Model& model, const DataSplit& split,
                   const TrainConfig& config, Rng& rng) {
  obs::TraceScope span("data.train_local");
  if (split.empty()) return 0.0;
  nn::SgdOptimizer sgd(config.sgd);
  nn::AdamOptimizer adam(config.adam);
  model.set_kernel_pool(config.kernel_pool);

  double final_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(split.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t count =
          std::min(config.batch_size, order.size() - start);
      const std::span<const std::size_t> indices(order.data() + start, count);
      const DataSplit batch = split.gather(indices);

      model.zero_gradients();
      const nn::Tensor logits = model.forward(batch.features, /*training=*/true);
      const nn::LossResult loss = nn::softmax_cross_entropy(
          logits, std::span<const std::int32_t>(batch.labels));
      model.backward(loss.grad);
      if (config.use_adam) adam.step(model);
      else sgd.step(model);

      epoch_loss += loss.loss;
      ++batches;
      batch_counter().increment();
      example_counter().add(count);
    }
    final_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches)
                                   : 0.0;
  }
  // Clear the borrowed pool so the model never outlives it.
  model.set_kernel_pool(nullptr);
  return final_epoch_loss;
}

namespace {

/// Shared inference batching for the three evaluation metrics: contiguous
/// slices of `split` (no per-batch index vectors), one eval-mode forward
/// per batch, `fn(logits, labels)` on each.
template <typename Fn>
void for_each_eval_batch(nn::Model& model, const DataSplit& split,
                         std::size_t batch_size, Fn&& fn) {
  for (std::size_t start = 0; start < split.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, split.size() - start);
    const DataSplit batch = split.slice(start, count);
    const nn::Tensor logits = model.forward(batch.features, /*training=*/false);
    fn(logits, std::span<const std::int32_t>(batch.labels));
  }
}

/// Rows of `split` predicted as `predicted_class`.
std::size_t count_predicted(nn::Model& model, const DataSplit& split,
                            std::int32_t predicted_class,
                            std::size_t batch_size) {
  std::size_t hits = 0;
  for_each_eval_batch(
      model, split, batch_size,
      [&](const nn::Tensor& logits, std::span<const std::int32_t> labels) {
        for (std::size_t b = 0; b < labels.size(); ++b) {
          if (logits.argmax_row(b) ==
              static_cast<std::size_t>(predicted_class)) {
            ++hits;
          }
        }
      });
  return hits;
}

}  // namespace

EvalResult evaluate(nn::Model& model, const DataSplit& split,
                    std::size_t batch_size) {
  EvalResult result;
  if (split.empty()) return result;

  double loss_sum = 0.0;
  std::size_t correct = 0;
  for_each_eval_batch(
      model, split, batch_size,
      [&](const nn::Tensor& logits, std::span<const std::int32_t> labels) {
        loss_sum += static_cast<double>(
                        nn::softmax_cross_entropy_loss(logits, labels)) *
                    static_cast<double>(labels.size());
        for (std::size_t b = 0; b < labels.size(); ++b) {
          if (logits.argmax_row(b) == static_cast<std::size_t>(labels[b])) {
            ++correct;
          }
        }
      });
  result.samples = split.size();
  result.loss = loss_sum / static_cast<double>(split.size());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(split.size());
  return result;
}

double backdoor_success_rate(nn::Model& model, const DataSplit& clean_test,
                             const BackdoorTrigger& trigger,
                             std::size_t batch_size) {
  // Keep only samples whose true class is not the trigger target, so
  // "success" measures flips, not already-correct predictions.
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < clean_test.size(); ++i) {
    if (clean_test.labels[i] != trigger.target_class) indices.push_back(i);
  }
  if (indices.empty()) return 0.0;
  const DataSplit triggered =
      apply_backdoor(clean_test.gather(indices), trigger);

  const std::size_t hits =
      count_predicted(model, triggered, trigger.target_class, batch_size);
  return static_cast<double>(hits) / static_cast<double>(triggered.size());
}

double targeted_misclassification_rate(nn::Model& model,
                                       const DataSplit& split,
                                       std::int32_t source_class,
                                       std::int32_t target_class,
                                       std::size_t batch_size) {
  std::vector<std::size_t> source_indices;
  for (std::size_t i = 0; i < split.size(); ++i) {
    if (split.labels[i] == source_class) source_indices.push_back(i);
  }
  if (source_indices.empty()) return 0.0;

  // Gather the source-class rows once; batches are then contiguous slices
  // with contents identical to per-batch gathers of the index subranges.
  const DataSplit source = split.gather(source_indices);
  const std::size_t hits =
      count_predicted(model, source, target_class, batch_size);
  return static_cast<double>(hits) /
         static_cast<double>(source_indices.size());
}

}  // namespace tanglefl::data
