#include "data/poison.hpp"

#include <algorithm>
#include <stdexcept>

namespace tanglefl::data {

DataSplit make_label_flip_split(const DataSplit& split, const LabelFlip& flip) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < split.size(); ++i) {
    if (split.labels[i] == flip.source_class) indices.push_back(i);
  }
  DataSplit flipped = split.gather(indices);
  for (auto& label : flipped.labels) label = flip.target_class;
  return flipped;
}

UserData make_label_flip_user(const UserData& user, const LabelFlip& flip) {
  UserData poisoned;
  poisoned.user_id = user.user_id + "_flipped";
  poisoned.train = make_label_flip_split(user.train, flip);
  poisoned.test = make_label_flip_split(user.test, flip);
  return poisoned;
}

namespace {

/// Stamps the trigger patch into image `index` of `features`
/// (batch, channels, h, w).
void stamp_trigger(nn::Tensor& features, std::size_t index,
                   const BackdoorTrigger& trigger) {
  const std::size_t channels = features.dim(1);
  const std::size_t height = features.dim(2);
  const std::size_t width = features.dim(3);
  const std::size_t patch = std::min({trigger.patch_size, height, width});
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t y = 0; y < patch; ++y) {
      for (std::size_t x = 0; x < patch; ++x) {
        features.at(index, c, y, x) = trigger.trigger_value;
      }
    }
  }
}

}  // namespace

DataSplit apply_backdoor(const DataSplit& split,
                         const BackdoorTrigger& trigger) {
  if (split.features.rank() != 4) {
    throw std::invalid_argument("apply_backdoor: image features required");
  }
  DataSplit out = split;
  for (std::size_t i = 0; i < out.size(); ++i) {
    stamp_trigger(out.features, i, trigger);
    out.labels[i] = trigger.target_class;
  }
  return out;
}

DataSplit make_backdoor_train_split(const DataSplit& split,
                                    const BackdoorTrigger& trigger,
                                    double fraction, Rng& rng) {
  if (split.features.rank() != 4) {
    throw std::invalid_argument(
        "make_backdoor_train_split: image features required");
  }
  DataSplit out = split;
  const auto poisoned = static_cast<std::size_t>(
      fraction * static_cast<double>(split.size()) + 0.5);
  const auto chosen =
      rng.sample_without_replacement(split.size(), std::min(poisoned, split.size()));
  for (const std::size_t i : chosen) {
    stamp_trigger(out.features, i, trigger);
    out.labels[i] = trigger.target_class;
  }
  return out;
}

std::size_t count_class(const DataSplit& split, std::int32_t class_id) {
  std::size_t count = 0;
  for (const auto label : split.labels) {
    if (label == class_id) ++count;
  }
  return count;
}

}  // namespace tanglefl::data
