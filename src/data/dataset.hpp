// Federated dataset model: horizontally partitioned data where each user
// (device) holds its own non-IID train and test split over a common feature
// space — the setting of Section III ("devices have different sets of
// non-IID training and validation examples that include a common set of
// features").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "support/rng.hpp"

namespace tanglefl::data {

/// A labeled sample set: features(n, ...) with one label per row.
struct DataSplit {
  nn::Tensor features;               // first dimension indexes examples
  std::vector<std::int32_t> labels;  // size == features.dim(0)

  std::size_t size() const noexcept { return labels.size(); }
  bool empty() const noexcept { return labels.empty(); }

  /// Copies the examples at `indices` into a contiguous batch.
  [[nodiscard]] DataSplit gather(std::span<const std::size_t> indices) const;

  /// Copies the contiguous example range [start, start + count) into a
  /// batch — equivalent to gather({start, ..., start + count - 1}) without
  /// materializing an index vector (one block copy instead of per-row).
  [[nodiscard]] DataSplit slice(std::size_t start, std::size_t count) const;

  /// Appends another split with identical per-example shape.
  void append(const DataSplit& other);

  /// Per-example feature shape (the split's shape minus the leading dim).
  [[nodiscard]] std::vector<std::size_t> example_shape() const;
};

/// One participating device's local data.
struct UserData {
  std::string user_id;
  DataSplit train;
  DataSplit test;

  std::size_t total_samples() const noexcept {
    return train.size() + test.size();
  }
};

/// Summary statistics in the shape of the paper's Table I.
struct DatasetStats {
  std::string name;
  std::string model_type;
  double train_fraction = 0.0;
  std::size_t num_classes = 0;
  std::size_t num_users = 0;
  std::size_t total_samples = 0;
  std::size_t min_samples_per_user = 0;
  std::size_t max_samples_per_user = 0;
  double mean_samples_per_user = 0.0;
};

/// A horizontally partitioned dataset: one UserData per device.
class FederatedDataset {
 public:
  FederatedDataset(std::string name, std::string model_type,
                   std::size_t num_classes, double train_fraction,
                   std::vector<UserData> users);

  const std::string& name() const noexcept { return name_; }
  std::size_t num_classes() const noexcept { return num_classes_; }
  std::size_t num_users() const noexcept { return users_.size(); }
  double train_fraction() const noexcept { return train_fraction_; }

  const UserData& user(std::size_t i) const { return users_.at(i); }
  const std::vector<UserData>& users() const noexcept { return users_; }

  /// Drops users with fewer than `min_samples` total samples (LEAF's
  /// Shakespeare preprocessing keeps users with >= 64 samples).
  void filter_min_samples(std::size_t min_samples);

  /// Pools the test splits of the users at `user_indices` into one split —
  /// the paper validates on "the test datasets of a random selection of
  /// 10% of all nodes".
  [[nodiscard]] DataSplit pooled_test(
      std::span<const std::size_t> user_indices) const;

  /// Summary statistics for reporting (Table I).
  [[nodiscard]] DatasetStats stats() const;

 private:
  std::string name_;
  std::string model_type_;
  std::size_t num_classes_;
  double train_fraction_;
  std::vector<UserData> users_;
};

/// Concatenates the users of several datasets into one (all inputs must
/// agree on the class count). User ids are prefixed with the source
/// dataset's name so downstream analysis can recover the origin — used for
/// the clustered-population scenario of the Section VI outlook.
FederatedDataset merge_federated(std::string name, std::string model_type,
                                 double train_fraction,
                                 std::span<const FederatedDataset* const> parts);

/// Splits `all` into train/test by shuffling with `rng` and cutting at
/// `train_fraction`.
std::pair<DataSplit, DataSplit> train_test_split(const DataSplit& all,
                                                 double train_fraction,
                                                 Rng& rng);

/// Draws a random minibatch of at most `batch_size` examples.
DataSplit sample_batch(const DataSplit& split, std::size_t batch_size,
                       Rng& rng);

}  // namespace tanglefl::data
