#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace tanglefl::data {

std::vector<std::size_t> DataSplit::example_shape() const {
  if (features.rank() == 0) return {};
  return {features.shape().begin() + 1, features.shape().end()};
}

DataSplit DataSplit::gather(std::span<const std::size_t> indices) const {
  const std::size_t stride = size() == 0 ? 0 : features.size() / size();
  std::vector<std::size_t> shape = features.shape();
  shape[0] = indices.size();

  DataSplit out;
  out.features = nn::Tensor(std::move(shape));
  out.labels.reserve(indices.size());
  float* dst = out.features.data();
  const float* src = features.data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    assert(i < size());
    std::copy_n(src + i * stride, stride, dst + k * stride);
    out.labels.push_back(labels[i]);
  }
  return out;
}

DataSplit DataSplit::slice(std::size_t start, std::size_t count) const {
  assert(start + count <= size());
  const std::size_t stride = size() == 0 ? 0 : features.size() / size();
  std::vector<std::size_t> shape = features.shape();
  shape[0] = count;

  DataSplit out;
  out.features = nn::Tensor(std::move(shape));
  std::copy_n(features.data() + start * stride, count * stride,
              out.features.data());
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(start),
                    labels.begin() + static_cast<std::ptrdiff_t>(start + count));
  return out;
}

void DataSplit::append(const DataSplit& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (example_shape() != other.example_shape()) {
    throw std::invalid_argument("DataSplit::append: shape mismatch");
  }
  std::vector<std::size_t> shape = features.shape();
  shape[0] += other.size();
  std::vector<float> merged;
  merged.reserve(features.size() + other.features.size());
  merged.insert(merged.end(), features.values().begin(),
                features.values().end());
  merged.insert(merged.end(), other.features.values().begin(),
                other.features.values().end());
  features = nn::Tensor(std::move(shape), std::move(merged));
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

FederatedDataset::FederatedDataset(std::string name, std::string model_type,
                                   std::size_t num_classes,
                                   double train_fraction,
                                   std::vector<UserData> users)
    : name_(std::move(name)),
      model_type_(std::move(model_type)),
      num_classes_(num_classes),
      train_fraction_(train_fraction),
      users_(std::move(users)) {}

void FederatedDataset::filter_min_samples(std::size_t min_samples) {
  std::erase_if(users_, [min_samples](const UserData& u) {
    return u.total_samples() < min_samples;
  });
}

DataSplit FederatedDataset::pooled_test(
    std::span<const std::size_t> user_indices) const {
  DataSplit pooled;
  for (const std::size_t i : user_indices) {
    pooled.append(users_.at(i).test);
  }
  return pooled;
}

DatasetStats FederatedDataset::stats() const {
  DatasetStats stats;
  stats.name = name_;
  stats.model_type = model_type_;
  stats.train_fraction = train_fraction_;
  stats.num_classes = num_classes_;
  stats.num_users = users_.size();
  stats.min_samples_per_user = std::numeric_limits<std::size_t>::max();
  for (const auto& user : users_) {
    const std::size_t n = user.total_samples();
    stats.total_samples += n;
    stats.min_samples_per_user = std::min(stats.min_samples_per_user, n);
    stats.max_samples_per_user = std::max(stats.max_samples_per_user, n);
  }
  if (users_.empty()) stats.min_samples_per_user = 0;
  stats.mean_samples_per_user =
      users_.empty() ? 0.0
                     : static_cast<double>(stats.total_samples) /
                           static_cast<double>(users_.size());
  return stats;
}

FederatedDataset merge_federated(
    std::string name, std::string model_type, double train_fraction,
    std::span<const FederatedDataset* const> parts) {
  if (parts.empty()) {
    throw std::invalid_argument("merge_federated: no inputs");
  }
  const std::size_t num_classes = parts.front()->num_classes();
  std::vector<UserData> users;
  for (const FederatedDataset* part : parts) {
    if (part->num_classes() != num_classes) {
      throw std::invalid_argument("merge_federated: class count mismatch");
    }
    for (const UserData& user : part->users()) {
      UserData copy = user;
      copy.user_id = part->name() + "/" + user.user_id;
      users.push_back(std::move(copy));
    }
  }
  return FederatedDataset(std::move(name), std::move(model_type), num_classes,
                          train_fraction, std::move(users));
}

std::pair<DataSplit, DataSplit> train_test_split(const DataSplit& all,
                                                 double train_fraction,
                                                 Rng& rng) {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  const std::vector<std::size_t> perm = rng.permutation(all.size());
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(all.size()) * train_fraction);
  const std::span<const std::size_t> train_idx(perm.data(), cut);
  const std::span<const std::size_t> test_idx(perm.data() + cut,
                                              perm.size() - cut);
  return {all.gather(train_idx), all.gather(test_idx)};
}

DataSplit sample_batch(const DataSplit& split, std::size_t batch_size,
                       Rng& rng) {
  if (split.size() <= batch_size) {
    std::vector<std::size_t> all(split.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return split.gather(all);
  }
  const auto indices = rng.sample_without_replacement(split.size(), batch_size);
  return split.gather(indices);
}

}  // namespace tanglefl::data
