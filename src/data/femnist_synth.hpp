// Synthetic FEMNIST substitute. The real federated EMNIST partitions
// handwritten characters by the writer who authored them; each writer has a
// personal style, which makes the partition non-IID. We reproduce exactly
// that structure procedurally:
//
//   * each class gets a procedural stroke "glyph" prototype,
//   * each user (writer) gets a persistent style: affine distortion
//     (rotation / scale / shear / shift), ink gamma and noise level,
//   * each sample renders the class prototype through the user's style plus
//     small per-sample jitter,
//   * class proportions per user follow a Dirichlet draw (non-IID labels),
//   * sample counts per user are log-normal (unbalanced users).
//
// The learning-tangle mechanism only observes the data through per-node
// loss/accuracy, so this preserves the behaviour the paper's evaluation
// depends on: local models overfit their writer, averaging across writers
// helps, and validation data is node-specific.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tanglefl::data {

struct FemnistSynthConfig {
  std::size_t num_users = 60;
  std::size_t num_classes = 10;   // paper: 62; scaled down by default
  std::size_t image_size = 14;    // paper: 28; scaled down by default
  double train_fraction = 0.8;    // Table I
  double dirichlet_alpha = 0.5;   // label skew across users
  double mean_samples_per_user = 30.0;
  double samples_log_sigma = 0.5; // log-normal spread of user sizes
  std::size_t min_samples_per_user = 4;
  std::uint64_t seed = 42;
};

/// Generates the full federated dataset. Deterministic in `config.seed`.
FederatedDataset make_femnist_synth(const FemnistSynthConfig& config);

/// Renders one sample of `class_id` in the style of `user_id` (exposed for
/// tests and the dataset-inspection example).
nn::Tensor render_femnist_sample(const FemnistSynthConfig& config,
                                 std::size_t user_id, std::size_t class_id,
                                 std::uint64_t sample_index);

}  // namespace tanglefl::data
