#include "data/partition.hpp"

#include <cassert>
#include <tuple>

namespace tanglefl::data {

std::vector<DataSplit> partition_dirichlet(const DataSplit& pool,
                                           std::size_t num_users,
                                           std::size_t num_classes,
                                           double alpha, Rng& rng) {
  assert(num_users >= 1 && num_classes >= 1);

  // Bucket sample indices by class, shuffled within each class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto label = static_cast<std::size_t>(pool.labels[i]);
    assert(label < num_classes);
    by_class[label].push_back(i);
  }
  for (auto& bucket : by_class) rng.shuffle(bucket);

  // For each class, split its samples across users proportionally to a
  // Dirichlet draw over users.
  std::vector<std::vector<std::size_t>> per_user(num_users);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const std::vector<double> proportions = rng.dirichlet(alpha, num_users);
    const auto& bucket = by_class[c];
    std::size_t offset = 0;
    for (std::size_t u = 0; u < num_users; ++u) {
      std::size_t take = (u + 1 == num_users)
                             ? bucket.size() - offset
                             : static_cast<std::size_t>(
                                   proportions[u] *
                                   static_cast<double>(bucket.size()));
      take = std::min(take, bucket.size() - offset);
      for (std::size_t k = 0; k < take; ++k) {
        per_user[u].push_back(bucket[offset + k]);
      }
      offset += take;
    }
  }

  std::vector<DataSplit> shards;
  shards.reserve(num_users);
  for (auto& indices : per_user) {
    rng.shuffle(indices);
    shards.push_back(pool.gather(indices));
  }
  return shards;
}

std::vector<DataSplit> partition_iid(const DataSplit& pool,
                                     std::size_t num_users, Rng& rng) {
  assert(num_users >= 1);
  const std::vector<std::size_t> perm = rng.permutation(pool.size());
  std::vector<DataSplit> shards;
  shards.reserve(num_users);
  const std::size_t base = pool.size() / num_users;
  const std::size_t extra = pool.size() % num_users;
  std::size_t offset = 0;
  for (std::size_t u = 0; u < num_users; ++u) {
    const std::size_t take = base + (u < extra ? 1 : 0);
    const std::span<const std::size_t> indices(perm.data() + offset, take);
    shards.push_back(pool.gather(indices));
    offset += take;
  }
  return shards;
}

FederatedDataset federate(std::string name, std::string model_type,
                          std::size_t num_classes, double train_fraction,
                          std::vector<DataSplit> shards, Rng& rng) {
  std::vector<UserData> users;
  users.reserve(shards.size());
  for (std::size_t u = 0; u < shards.size(); ++u) {
    UserData user;
    user.user_id = "user_" + std::to_string(u);
    Rng split_rng = rng.split(u + 1);
    std::tie(user.train, user.test) =
        train_test_split(shards[u], train_fraction, split_rng);
    users.push_back(std::move(user));
  }
  return FederatedDataset(std::move(name), std::move(model_type), num_classes,
                          train_fraction, std::move(users));
}

}  // namespace tanglefl::data
