// Synthetic Shakespeare substitute. LEAF's Shakespeare task partitions the
// plays by speaking role and trains a next-character predictor; roles have
// distinct vocabularies and phrasing, making the partition non-IID. We
// reproduce the structure with a procedural language:
//
//   * a global order-2 Markov chain over a small character vocabulary plays
//     the role of "the English of the plays",
//   * each user (role) speaks a mixture of the global chain and a private
//     per-role chain (the mixture weight controls how non-IID roles are),
//   * each role's generated text is sliced into fixed-length windows with
//     the following character as the label — exactly LEAF's featurization.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tanglefl::data {

struct ShakespeareSynthConfig {
  std::size_t num_users = 30;     // paper: 1058; scaled down by default
  std::size_t vocab_size = 30;    // paper: 80; scaled down by default
  std::size_t seq_length = 16;    // paper: 80; scaled down by default
  double train_fraction = 0.9;    // Table I
  double style_mixture = 0.35;    // weight of the per-role private chain
  std::size_t markov_order = 1;   // context length of the language chain
  double chain_concentration = 0.08;  // Dirichlet alpha scale for transition rows
  double mean_chars_per_user = 400.0;
  double chars_log_sigma = 0.4;
  std::size_t min_samples_per_user = 64;  // Table I
  std::uint64_t seed = 42;
};

/// Generates the full federated dataset. Users whose generated text yields
/// fewer than `min_samples_per_user` examples are dropped, mirroring LEAF
/// preprocessing. Deterministic in `config.seed`.
FederatedDataset make_shakespeare_synth(const ShakespeareSynthConfig& config);

/// Generates `length` characters of one user's text (exposed for tests).
std::vector<std::int32_t> generate_user_text(
    const ShakespeareSynthConfig& config, std::size_t user_id,
    std::size_t length);

}  // namespace tanglefl::data
