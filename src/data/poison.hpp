// Data-poisoning transforms for the attack experiments (Section III-E):
// the targeted label-flipping attack replaces a malicious node's dataset
// with samples of the source class labeled as the target class.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tanglefl::data {

/// A targeted misclassification, e.g. {3, 8} for "3 -> 8" in Fig. 6.
struct LabelFlip {
  std::int32_t source_class = 3;
  std::int32_t target_class = 8;
};

/// Extracts the samples of `flip.source_class` from `split` and relabels
/// them as `flip.target_class` — the paper's malicious local dataset, which
/// "entirely consists of mislabeled samples".
DataSplit make_label_flip_split(const DataSplit& split, const LabelFlip& flip);

/// Applies make_label_flip_split to a user's train split; the test split is
/// flipped the same way so the attacker's local validation also endorses
/// the poisoned objective. Users without source-class samples get an empty
/// dataset.
UserData make_label_flip_user(const UserData& user, const LabelFlip& flip);

/// Counts samples of a given class.
std::size_t count_class(const DataSplit& split, std::int32_t class_id);

/// A pixel-pattern backdoor (Bagdasaryan et al., cited as [29]): a small
/// bright patch stamped into a corner of the image; any sample carrying
/// the patch should be classified as `target_class`.
struct BackdoorTrigger {
  std::int32_t target_class = 0;
  std::size_t patch_size = 2;   // square patch, top-left corner
  float trigger_value = 1.0f;   // pixel intensity written into the patch
};

/// Stamps the trigger into every image of `split` (rank-4 image features
/// required) and relabels everything as the trigger's target class — the
/// fully triggered variant used to *measure* backdoor success.
DataSplit apply_backdoor(const DataSplit& split, const BackdoorTrigger& trigger);

/// Classic backdoor training set: a copy of `split` where a `fraction` of
/// samples (chosen via `rng`) carry the trigger and the target label while
/// the rest stay clean — so the attacker's model keeps its clean accuracy
/// (stealth) but learns the trigger.
DataSplit make_backdoor_train_split(const DataSplit& split,
                                    const BackdoorTrigger& trigger,
                                    double fraction, Rng& rng);

}  // namespace tanglefl::data
