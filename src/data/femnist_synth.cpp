#include "data/femnist_synth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

#include "support/rng.hpp"

namespace tanglefl::data {
namespace {

// Seed-space keys so the independent random streams (glyphs, styles,
// samples) never collide.
constexpr std::uint64_t kGlyphStream = 0x67111;
constexpr std::uint64_t kStyleStream = 0x57111;
constexpr std::uint64_t kUserStream = 0x0711;

/// A class prototype: grayscale glyph in [0,1] on a unit square, stored at
/// the configured resolution.
struct Glyph {
  std::size_t size = 0;
  std::vector<float> pixels;

  float sample(double x, double y) const {
    // Bilinear lookup with zero outside the canvas.
    if (x < 0.0 || y < 0.0 || x > static_cast<double>(size - 1) ||
        y > static_cast<double>(size - 1)) {
      return 0.0f;
    }
    const auto x0 = static_cast<std::size_t>(x);
    const auto y0 = static_cast<std::size_t>(y);
    const std::size_t x1 = std::min(x0 + 1, size - 1);
    const std::size_t y1 = std::min(y0 + 1, size - 1);
    const auto fx = static_cast<float>(x - static_cast<double>(x0));
    const auto fy = static_cast<float>(y - static_cast<double>(y0));
    const float v00 = pixels[y0 * size + x0];
    const float v01 = pixels[y0 * size + x1];
    const float v10 = pixels[y1 * size + x0];
    const float v11 = pixels[y1 * size + x1];
    return (v00 * (1 - fx) + v01 * fx) * (1 - fy) +
           (v10 * (1 - fx) + v11 * fx) * fy;
  }
};

/// Rasterizes random strokes (line segments with soft edges) for one class.
Glyph make_glyph(std::size_t size, std::uint64_t seed, std::size_t class_id) {
  Glyph glyph;
  glyph.size = size;
  glyph.pixels.assign(size * size, 0.0f);

  Rng rng = Rng(seed).split(kGlyphStream).split(class_id + 1);
  const auto extent = static_cast<double>(size - 1);
  const double margin = 0.15 * extent;
  const int strokes = static_cast<int>(3 + rng.uniform_index(3));  // 3-5

  // Anchor points form a connected polyline, so glyphs look like pen paths
  // rather than scattered segments.
  double px = rng.uniform(margin, extent - margin);
  double py = rng.uniform(margin, extent - margin);
  const double thickness = rng.uniform(0.9, 1.4);

  for (int s = 0; s < strokes; ++s) {
    const double qx = rng.uniform(margin, extent - margin);
    const double qy = rng.uniform(margin, extent - margin);
    // Distance-to-segment rasterization with a soft falloff.
    for (std::size_t yy = 0; yy < size; ++yy) {
      for (std::size_t xx = 0; xx < size; ++xx) {
        const double cx = static_cast<double>(xx);
        const double cy = static_cast<double>(yy);
        const double dx = qx - px, dy = qy - py;
        const double len_sq = dx * dx + dy * dy;
        double t = len_sq > 0.0
                       ? ((cx - px) * dx + (cy - py) * dy) / len_sq
                       : 0.0;
        t = std::clamp(t, 0.0, 1.0);
        const double ex = px + t * dx - cx;
        const double ey = py + t * dy - cy;
        const double dist = std::sqrt(ex * ex + ey * ey);
        const double ink = std::exp(-(dist * dist) / (2.0 * thickness * thickness));
        float& pixel = glyph.pixels[yy * size + xx];
        pixel = std::max(pixel, static_cast<float>(ink));
      }
    }
    px = qx;
    py = qy;
  }
  return glyph;
}

/// Per-writer persistent rendering style.
struct WriterStyle {
  double rotation = 0.0;   // radians
  double scale = 1.0;
  double shear = 0.0;
  double shift_x = 0.0;
  double shift_y = 0.0;
  double gamma = 1.0;      // ink intensity curve
  double noise = 0.05;     // additive pixel noise stddev
};

WriterStyle make_style(std::uint64_t seed, std::size_t user_id) {
  Rng rng = Rng(seed).split(kStyleStream).split(user_id + 1);
  WriterStyle style;
  style.rotation = rng.uniform(-0.45, 0.45);
  style.scale = rng.uniform(0.8, 1.2);
  style.shear = rng.uniform(-0.25, 0.25);
  style.shift_x = rng.uniform(-1.5, 1.5);
  style.shift_y = rng.uniform(-1.5, 1.5);
  style.gamma = rng.uniform(0.6, 1.6);
  style.noise = rng.uniform(0.02, 0.12);
  return style;
}

/// Renders `glyph` through `style` with per-sample jitter drawn from `rng`.
std::vector<float> render(const Glyph& glyph, const WriterStyle& style,
                          Rng& rng) {
  const std::size_t size = glyph.size;
  const double center = static_cast<double>(size - 1) / 2.0;

  // Jitter makes samples within one writer non-identical.
  const double rot = style.rotation + rng.uniform(-0.08, 0.08);
  const double scale = style.scale * rng.uniform(0.95, 1.05);
  const double sx = style.shift_x + rng.uniform(-0.5, 0.5);
  const double sy = style.shift_y + rng.uniform(-0.5, 0.5);

  const double cos_r = std::cos(rot), sin_r = std::sin(rot);
  std::vector<float> out(size * size);
  for (std::size_t yy = 0; yy < size; ++yy) {
    for (std::size_t xx = 0; xx < size; ++xx) {
      // Inverse mapping: output pixel -> source coordinate.
      const double ox = (static_cast<double>(xx) - center - sx) / scale;
      const double oy = (static_cast<double>(yy) - center - sy) / scale;
      const double ux = ox - style.shear * oy;
      const double gx = cos_r * ux + sin_r * oy + center;
      const double gy = -sin_r * ux + cos_r * oy + center;
      double v = glyph.sample(gx, gy);
      v = std::pow(std::clamp(v, 0.0, 1.0), style.gamma);
      v += rng.normal(0.0, style.noise);
      out[yy * size + xx] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
  return out;
}

}  // namespace

nn::Tensor render_femnist_sample(const FemnistSynthConfig& config,
                                 std::size_t user_id, std::size_t class_id,
                                 std::uint64_t sample_index) {
  const Glyph glyph = make_glyph(config.image_size, config.seed, class_id);
  const WriterStyle style = make_style(config.seed, user_id);
  Rng rng = Rng(config.seed)
                .split(kUserStream)
                .split(user_id + 1)
                .split(sample_index + 1);
  return nn::Tensor({1, config.image_size, config.image_size},
                    render(glyph, style, rng));
}

FederatedDataset make_femnist_synth(const FemnistSynthConfig& config) {
  assert(config.num_classes >= 2 && config.num_users >= 1);

  std::vector<Glyph> glyphs;
  glyphs.reserve(config.num_classes);
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    glyphs.push_back(make_glyph(config.image_size, config.seed, c));
  }

  const std::size_t pixels = config.image_size * config.image_size;
  std::vector<UserData> users;
  users.reserve(config.num_users);

  for (std::size_t u = 0; u < config.num_users; ++u) {
    Rng user_rng = Rng(config.seed).split(kUserStream).split(u + 1);
    const WriterStyle style = make_style(config.seed, u);

    // Unbalanced user sizes: log-normal around the configured mean.
    const double log_mean = std::log(config.mean_samples_per_user);
    const auto count_raw = static_cast<std::size_t>(std::llround(
        std::exp(user_rng.normal(log_mean, config.samples_log_sigma))));
    const std::size_t count =
        std::max<std::size_t>(config.min_samples_per_user, count_raw);

    // Non-IID label mix for this writer.
    const std::vector<double> label_mix =
        user_rng.dirichlet(config.dirichlet_alpha, config.num_classes);

    DataSplit all;
    all.features = nn::Tensor({count, 1, config.image_size, config.image_size});
    all.labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t class_id = user_rng.weighted_choice(label_mix);
      Rng sample_rng = user_rng.split(0xe9a0 + i);
      const std::vector<float> image =
          render(glyphs[class_id], style, sample_rng);
      std::copy(image.begin(), image.end(),
                all.features.data() + i * pixels);
      all.labels[i] = static_cast<std::int32_t>(class_id);
    }

    UserData user;
    user.user_id = "writer_" + std::to_string(u);
    Rng split_rng = user_rng.split(0x59111);
    std::tie(user.train, user.test) =
        train_test_split(all, config.train_fraction, split_rng);
    users.push_back(std::move(user));
  }

  return FederatedDataset("femnist-synth", "CNN", config.num_classes,
                          config.train_fraction, std::move(users));
}

}  // namespace tanglefl::data
