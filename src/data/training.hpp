// Local training and evaluation: the Train() and ValidationLoss() steps of
// the paper's Algorithm 2, shared by tangle nodes and FedAvg clients.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "data/poison.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace tanglefl::data {

struct TrainConfig {
  std::size_t epochs = 1;        // "Local Epochs" in Table I
  std::size_t batch_size = 16;
  nn::SgdConfig sgd;             // learning rate etc.
  bool use_adam = false;         // switch to Adam (lr from `adam`)
  nn::AdamConfig adam;
  // Optional intra-node pool for the NN kernels. Row-partitioned, so the
  // trained parameters are bit-identical for any pool size (including
  // none). Not owned; must outlive the train_local call.
  ThreadPool* kernel_pool = nullptr;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t samples = 0;
};

/// Default evaluation minibatch size. Cached eval results are a function of
/// (parameters, split, batch boundaries), so anything that caches or
/// pre-batches evaluations (core::EvalEngine) must use this exact value —
/// the engine enforces it at construction.
inline constexpr std::size_t kEvalBatchSize = 64;

/// Runs `config.epochs` of minibatch SGD over `split`, mutating `model` in
/// place. Batching order is drawn from `rng`, so results are reproducible.
/// Returns the mean training loss of the final epoch.
double train_local(nn::Model& model, const DataSplit& split,
                   const TrainConfig& config, Rng& rng);

/// Mean loss and accuracy over all of `split`, evaluated in minibatches.
EvalResult evaluate(nn::Model& model, const DataSplit& split,
                    std::size_t batch_size = kEvalBatchSize);

/// Fraction of true `source_class` samples predicted as `target_class` —
/// the attack-success metric of Fig. 6b. Returns 0 when no source-class
/// samples exist.
double targeted_misclassification_rate(nn::Model& model,
                                       const DataSplit& split,
                                       std::int32_t source_class,
                                       std::int32_t target_class,
                                       std::size_t batch_size = kEvalBatchSize);

/// Backdoor attack-success rate: stamps `trigger` into every sample of
/// `clean_test` whose true label is not already the target class and
/// returns the fraction predicted as the target. 0 when no such samples
/// exist.
double backdoor_success_rate(nn::Model& model, const DataSplit& clean_test,
                             const BackdoorTrigger& trigger,
                             std::size_t batch_size = kEvalBatchSize);

}  // namespace tanglefl::data
