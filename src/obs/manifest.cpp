#include "obs/manifest.hpp"

#include <fstream>

#include "obs/json.hpp"

#ifndef TANGLEFL_GIT_DESCRIBE
#define TANGLEFL_GIT_DESCRIBE "unknown"
#endif

namespace tanglefl::obs {

const char* git_describe() noexcept { return TANGLEFL_GIT_DESCRIBE; }

std::string manifest_json(const RunManifest& manifest,
                          const MetricsSnapshot& metrics) {
  JsonWriter writer(2);
  writer.begin_object();
  writer.key("name");
  writer.value(manifest.name);
  writer.key("seed");
  writer.value(manifest.seed);
  writer.key("git");
  writer.value(manifest.git);
  writer.key("config");
  writer.begin_object();
  for (const auto& [key, value] : manifest.config) {
    writer.key(key);
    writer.value(value);
  }
  writer.end_object();
  writer.key("phases_seconds");
  writer.begin_object();
  for (const auto& [phase, seconds] : manifest.phase_seconds) {
    writer.key(phase);
    writer.value(seconds);
  }
  writer.end_object();
  writer.key("total_seconds");
  writer.value(manifest.total_seconds);
  writer.key("metrics");
  metrics.write(writer);
  writer.end_object();
  return writer.take();
}

bool write_manifest(const std::string& path, const RunManifest& manifest,
                    const MetricsSnapshot& metrics) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = manifest_json(manifest, metrics);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace tanglefl::obs
