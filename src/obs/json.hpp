// Minimal deterministic JSON writer for metric snapshots, run manifests and
// Chrome trace files. Output is byte-stable for identical inputs: keys are
// emitted in the order the caller provides them (callers sort where the
// determinism contract requires it) and doubles are formatted with a fixed
// round-trippable format, so two identical runs serialize identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tanglefl::obs {

/// Escapes `text` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

/// Formats a double as a JSON number token. Non-finite values (which JSON
/// cannot represent) are emitted as quoted strings "inf"/"-inf"/"nan".
std::string json_number(double value);

/// Streaming JSON writer. The caller is responsible for well-formedness
/// (matching begin/end calls); commas are inserted automatically.
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level; 0 emits
  /// a compact single-line document.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits `"name":` — must be followed by exactly one value or container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool flag);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }

  /// Emits a pre-formatted JSON token verbatim (e.g. a nested document).
  void raw(std::string_view token);

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void prepare_value();
  void newline_indent();

  std::string out_;
  int indent_ = 2;
  int depth_ = 0;
  // One flag per nesting level: whether the container already has an entry
  // (controls comma placement). Index 0 is the top level.
  std::vector<bool> has_entry_{false};
  bool pending_key_ = false;
};

}  // namespace tanglefl::obs
