// Run manifests: one JSON document per harness run recording what was run
// (name, config, seed, build), how long each phase took, and the final full
// metric snapshot. Written next to the existing CSV outputs so a result file
// is never separated from the conditions that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tanglefl::obs {

/// `git describe --always --dirty` captured at configure time; "unknown"
/// when the build tree had no git metadata.
const char* git_describe() noexcept;

struct RunManifest {
  std::string name;
  std::uint64_t seed = 0;
  std::string git = git_describe();
  /// Harness configuration, in insertion order (values pre-formatted).
  std::vector<std::pair<std::string, std::string>> config;
  /// Wall seconds per named phase, in insertion order.
  std::vector<std::pair<std::string, double>> phase_seconds;
  double total_seconds = 0.0;
};

/// Serializes the manifest plus a metric snapshot as pretty-printed JSON.
std::string manifest_json(const RunManifest& manifest,
                          const MetricsSnapshot& metrics);

/// Writes manifest_json() to `path` (plus trailing newline); returns false
/// on I/O failure.
bool write_manifest(const std::string& path, const RunManifest& manifest,
                    const MetricsSnapshot& metrics);

}  // namespace tanglefl::obs
