#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/json.hpp"
#include "support/stopwatch.hpp"

namespace tanglefl::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<bool> g_timing_enabled{false};

// atexit safety net: a run that calls std::exit() mid-phase (CLI error
// paths, benchmark --help) would otherwise drop every buffered span because
// the attached sink's destructor never runs. Detach first so TraceScope
// destructors racing with exit do not record into a sink being flushed.
void flush_attached_sink_at_exit() {
  TraceSink* sink = trace_sink();
  if (sink == nullptr) return;
  set_trace_sink(nullptr);
  if (!sink->flush()) {
    std::fprintf(stderr, "[error] failed to write trace file at exit: %s\n",
                 sink->path().c_str());
  }
}

}  // namespace

void set_trace_sink(TraceSink* sink) noexcept {
  if (sink != nullptr) {
    static const int atexit_rc = std::atexit(flush_attached_sink_at_exit);
    (void)atexit_rc;
  }
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

void set_timing_enabled(bool enabled) noexcept {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() noexcept {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

TraceSink::TraceSink(std::string path) : path_(std::move(path)) {
  events_.reserve(4096);
}

TraceSink::~TraceSink() {
  if (trace_sink() == this) set_trace_sink(nullptr);
  bool needs_flush = false;
  {
    MutexLock lock(mutex_);
    needs_flush = !flushed_;
  }
  if (needs_flush && !flush()) {
    std::fprintf(stderr, "[error] failed to write trace file: %s\n",
                 path_.c_str());
  }
}

void TraceSink::record(const char* name, std::uint64_t start_us,
                       std::uint64_t duration_us) {
  const std::uint32_t ordinal = thread_ordinal();
  MutexLock lock(mutex_);
  events_.push_back({name, start_us, duration_us, ordinal});
}

std::size_t TraceSink::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

bool TraceSink::flush() {
  std::vector<Event> events;
  {
    MutexLock lock(mutex_);
    events = events_;
    flushed_ = true;
  }
  // Timeline order makes the file diffable-by-eye and loads marginally
  // faster in viewers; ties broken by thread then name for stability.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    if (a.thread_ordinal != b.thread_ordinal)
      return a.thread_ordinal < b.thread_ordinal;
    return std::strcmp(a.name, b.name) < 0;
  });

  // chrome://tracing and Perfetto label rows from "M" (metadata) events;
  // emit one process_name plus a thread_name per distinct ordinal so spans
  // are not shown as anonymous tids.
  std::vector<std::uint32_t> ordinals;
  ordinals.reserve(events.size());
  for (const Event& event : events) ordinals.push_back(event.thread_ordinal);
  std::sort(ordinals.begin(), ordinals.end());
  ordinals.erase(std::unique(ordinals.begin(), ordinals.end()),
                 ordinals.end());

  JsonWriter writer(0);
  writer.begin_object();
  writer.key("traceEvents");
  writer.begin_array();
  writer.begin_object();
  writer.key("name");
  writer.value("process_name");
  writer.key("ph");
  writer.value("M");
  writer.key("pid");
  writer.value(std::uint64_t{1});
  writer.key("args");
  writer.begin_object();
  writer.key("name");
  writer.value("tanglefl");
  writer.end_object();
  writer.end_object();
  for (const std::uint32_t ordinal : ordinals) {
    writer.begin_object();
    writer.key("name");
    writer.value("thread_name");
    writer.key("ph");
    writer.value("M");
    writer.key("pid");
    writer.value(std::uint64_t{1});
    writer.key("tid");
    writer.value(static_cast<std::uint64_t>(ordinal));
    writer.key("args");
    writer.begin_object();
    writer.key("name");
    writer.value(ordinal == 0 ? "main" : ("worker-" + std::to_string(ordinal)));
    writer.end_object();
    writer.end_object();
  }
  for (const Event& event : events) {
    writer.begin_object();
    writer.key("name");
    writer.value(event.name);
    writer.key("cat");
    writer.value("tanglefl");
    writer.key("ph");
    writer.value("X");
    writer.key("ts");
    writer.value(event.start_us);
    writer.key("dur");
    writer.value(event.duration_us);
    writer.key("pid");
    writer.value(std::uint64_t{1});
    writer.key("tid");
    writer.value(static_cast<std::uint64_t>(event.thread_ordinal));
    writer.end_object();
  }
  writer.end_array();
  writer.key("displayTimeUnit");
  writer.value("ms");
  writer.end_object();

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string& json = writer.str();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  return static_cast<bool>(out);
}

TraceScope::TraceScope(const char* name, Histogram* timing_us) noexcept
    : name_(name),
      sink_(trace_sink()),
      timing_us_(timing_enabled() ? timing_us : nullptr) {
  if (sink_ != nullptr || timing_us_ != nullptr) {
    start_us_ = Stopwatch::now_micros();
  }
}

TraceScope::~TraceScope() {
  if (sink_ == nullptr && timing_us_ == nullptr) return;
  const std::uint64_t end_us = Stopwatch::now_micros();
  const std::uint64_t duration = end_us - start_us_;
  if (timing_us_ != nullptr) {
    timing_us_->record(static_cast<double>(duration));
  }
  if (sink_ != nullptr) {
    sink_->record(name_, start_us_, duration);
  }
}

}  // namespace tanglefl::obs
