// Scoped tracing: RAII spans that feed an optional Chrome trace_event sink
// and optional wall-clock timing histograms.
//
// Cost model: with no sink attached and timing disabled, a TraceScope is two
// relaxed atomic loads and no clock read — cheap enough to leave compiled
// into per-node / per-batch hot paths. Wall-clock values only ever flow into
// the trace file and timing-kind metrics (excluded from deterministic
// snapshots), never into simulation state.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/sync.hpp"

namespace tanglefl::obs {

/// Collects complete spans ("ph":"X" events) and writes them as Chrome
/// trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
/// record() is thread-safe; the file is written by flush() or the destructor.
class TraceSink {
 public:
  explicit TraceSink(std::string path);
  /// Flushes if the caller has not already done so. Never throws; a failed
  /// write at destruction is reported via log_error.
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record(const char* name, std::uint64_t start_us,
              std::uint64_t duration_us);

  /// Writes the trace file; returns false on I/O failure.
  bool flush();

  std::size_t event_count() const;
  const std::string& path() const noexcept { return path_; }

 private:
  struct Event {
    const char* name;  // string literal supplied by TraceScope call sites
    std::uint64_t start_us;
    std::uint64_t duration_us;
    std::uint32_t thread_ordinal;
  };

  mutable Mutex mutex_;
  std::vector<Event> events_ TANGLEFL_GUARDED_BY(mutex_);
  std::string path_;  // lint:allow(unannotated-guard) immutable
  bool flushed_ TANGLEFL_GUARDED_BY(mutex_) = false;
};

/// Attaches/detaches the process-global trace sink. Passing nullptr detaches.
/// The caller keeps ownership and must detach before destroying the sink.
void set_trace_sink(TraceSink* sink) noexcept;
TraceSink* trace_sink() noexcept;

/// Globally enables wall-clock timing histograms (TraceScope with an
/// attached histogram, ThreadPool queue-wait/execute). Off by default so the
/// deterministic test path never reads the clock in hot loops.
void set_timing_enabled(bool enabled) noexcept;
bool timing_enabled() noexcept;

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order);
/// used as the "tid" in trace events.
std::uint32_t thread_ordinal() noexcept;

/// RAII span. `name` must be a string literal (stored by pointer). When a
/// trace sink is attached the span is recorded there; when timing is enabled
/// and `timing_us` is non-null the duration in microseconds is also recorded
/// into that histogram.
class TraceScope {
 public:
  explicit TraceScope(const char* name,
                      Histogram* timing_us = nullptr) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  TraceSink* sink_;
  Histogram* timing_us_;
  std::uint64_t start_us_ = 0;
};

}  // namespace tanglefl::obs
