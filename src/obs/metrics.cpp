#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"

namespace tanglefl::obs {
namespace {

std::size_t thread_shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return slot;
}

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::add(std::uint64_t delta) noexcept {
  shards_[thread_shard_slot()].count.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
  }
}

BucketLayout BucketLayout::linear(double start, double width, std::size_t count) {
  BucketLayout layout;
  layout.upper_bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(start + width * static_cast<double>(i));
  }
  return layout;
}

BucketLayout BucketLayout::exponential(double start, double factor,
                                       std::size_t count) {
  BucketLayout layout;
  layout.upper_bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(bound);
    bound *= factor;
  }
  return layout;
}

Histogram::Histogram(BucketLayout layout) : bounds_(std::move(layout.upper_bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "histogram bounds must be non-empty and strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
  atomic_min_double(min_, value);
  atomic_max_double(max_, value);
}

double Histogram::min() const noexcept {
  const double value = min_.load(std::memory_order_relaxed);
  return std::isinf(value) ? 0.0 : value;
}

double Histogram::max() const noexcept {
  const double value = max_.load(std::memory_order_relaxed);
  return std::isinf(value) ? 0.0 : value;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double bucket_quantile(const std::vector<double>& upper_bounds,
                       const std::vector<std::uint64_t>& bucket_counts,
                       double q, double lo, double hi) noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double remaining = q * static_cast<double>(total);
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const auto in_bucket = static_cast<double>(bucket_counts[i]);
    if (in_bucket == 0.0) continue;
    if (remaining <= in_bucket) {
      // Anchor the first occupied edge at `lo` and the overflow bucket at
      // `hi`; interior edges come straight from the layout.
      double bucket_lo = i == 0 ? lo : upper_bounds[i - 1];
      double bucket_hi = i < upper_bounds.size() ? upper_bounds[i] : hi;
      bucket_lo = std::min(bucket_lo, bucket_hi);
      return bucket_lo + (remaining / in_bucket) * (bucket_hi - bucket_lo);
    }
    remaining -= in_bucket;
  }
  return hi;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  // min/max are order-independent, so quantiles of a deterministic snapshot
  // are themselves deterministic.
  const double value = bucket_quantile(upper_bounds, bucket_counts, q, min, max);
  return std::clamp(value, min, max);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name, bool timing) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.counter = std::make_unique<Counter>();
    entry.timing = timing;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (!it->second.counter) {
    throw std::logic_error("metric registered with a different type: " +
                           std::string(name));
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, bool timing) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.gauge = std::make_unique<Gauge>();
    entry.timing = timing;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (!it->second.gauge) {
    throw std::logic_error("metric registered with a different type: " +
                           std::string(name));
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const BucketLayout& layout, bool timing) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.histogram = std::make_unique<Histogram>(layout);
    entry.timing = timing;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (!it->second.histogram) {
    throw std::logic_error("metric registered with a different type: " +
                           std::string(name));
  } else if (it->second.histogram->upper_bounds() != layout.upper_bounds) {
    throw std::logic_error("metric registered with a different bucket layout: " +
                           std::string(name));
  }
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot(SnapshotKind kind) const {
  MetricsSnapshot snap;
  snap.kind = kind;
  MutexLock lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    if (kind == SnapshotKind::kDeterministic && entry.timing) continue;
    if (entry.counter) {
      snap.counters.push_back({name, entry.counter->value(), entry.timing});
    } else if (entry.gauge) {
      snap.gauges.push_back({name, entry.gauge->value(),
                             entry.gauge->updates(), entry.timing});
    } else if (entry.histogram) {
      const Histogram& hist = *entry.histogram;
      HistogramSnapshot h;
      h.name = name;
      h.upper_bounds = hist.upper_bounds();
      h.bucket_counts = hist.bucket_counts();
      h.count = hist.count();
      h.sum = hist.sum();
      h.min = hist.min();
      h.max = hist.max();
      h.timing = entry.timing;
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

std::string MetricsSnapshot::to_json(int indent) const {
  JsonWriter writer(indent);
  write(writer);
  return writer.take();
}

void MetricsSnapshot::write(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("kind");
  writer.value(kind == SnapshotKind::kDeterministic ? "deterministic" : "full");
  writer.key("counters");
  writer.begin_object();
  for (const CounterSnapshot& c : counters) {
    writer.key(c.name);
    writer.value(c.value);
  }
  writer.end_object();
  writer.key("gauges");
  writer.begin_object();
  for (const GaugeSnapshot& g : gauges) {
    writer.key(g.name);
    writer.value(g.value);
  }
  writer.end_object();
  writer.key("histograms");
  writer.begin_object();
  for (const HistogramSnapshot& h : histograms) {
    writer.key(h.name);
    writer.begin_object();
    writer.key("count");
    writer.value(h.count);
    writer.key("min");
    writer.value(h.min);
    writer.key("max");
    writer.value(h.max);
    if (kind == SnapshotKind::kFull) {
      // Parallel double accumulation is order-dependent; the sum only
      // appears in full (manifest) snapshots. Quantiles are deterministic
      // but stay full-only so deterministic snapshots remain byte-identical
      // to their historical form.
      writer.key("sum");
      writer.value(h.sum);
      writer.key("p50");
      writer.value(h.quantile(0.50));
      writer.key("p90");
      writer.value(h.quantile(0.90));
      writer.key("p99");
      writer.value(h.quantile(0.99));
    }
    writer.key("buckets");
    writer.begin_array();
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      writer.begin_object();
      writer.key("le");
      if (i < h.upper_bounds.size()) {
        writer.value(h.upper_bounds[i]);
      } else {
        writer.value("inf");
      }
      writer.key("count");
      writer.value(h.bucket_counts[i]);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
}

}  // namespace tanglefl::obs
