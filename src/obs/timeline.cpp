#include "obs/timeline.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <set>
#include <utility>

#include "obs/json.hpp"

namespace tanglefl::obs {
namespace {

// Minimal CSV quoting: labels are normally bare ("fraction=0.25"), but a
// label containing a delimiter must not shift columns.
std::string csv_escape(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

}  // namespace

Timeline::Run& Timeline::current_run() {
  if (runs_.empty()) {
    runs_.push_back(Run{});
    current_ = 0;
  }
  return runs_[current_];
}

void Timeline::begin_run(std::string label) {
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].label == label) {
      current_ = i;
      return;
    }
  }
  runs_.push_back(Run{std::move(label), {}});
  current_ = runs_.size() - 1;
}

void Timeline::record(std::uint64_t round, std::string_view series,
                      double value) {
  auto& row = current_run().rows[round];
  const auto it = row.find(series);
  if (it != row.end()) {
    it->second = value;
  } else {
    row.emplace(std::string(series), value);
  }
}

bool Timeline::empty() const noexcept {
  for (const Run& run : runs_) {
    if (!run.rows.empty()) return false;
  }
  return true;
}

std::string Timeline::to_jsonl() const {
  std::string out;
  for (const Run& run : runs_) {
    for (const auto& [round, row] : run.rows) {
      JsonWriter writer(0);
      writer.begin_object();
      writer.key("round");
      writer.value(round);
      writer.key("run");
      writer.value(run.label);
      for (const auto& [series, value] : row) {
        writer.key(series);
        writer.value(value);
      }
      writer.end_object();
      out += writer.take();
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::to_csv() const {
  std::set<std::string> columns;
  for (const Run& run : runs_) {
    for (const auto& [round, row] : run.rows) {
      (void)round;
      for (const auto& [series, value] : row) {
        (void)value;
        columns.insert(series);
      }
    }
  }
  std::string out = "run,round";
  for (const std::string& column : columns) {
    out += ',';
    out += csv_escape(column);
  }
  out += '\n';
  for (const Run& run : runs_) {
    for (const auto& [round, row] : run.rows) {
      out += csv_escape(run.label);
      out += ',';
      out += std::to_string(round);
      for (const std::string& column : columns) {
        out += ',';
        const auto it = row.find(column);
        if (it != row.end()) out += json_number(it->second);
      }
      out += '\n';
    }
  }
  return out;
}

bool Timeline::write_jsonl(const std::string& path) const {
  return write_text_file(path, to_jsonl());
}

bool Timeline::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

RegistrySampler::RegistrySampler(const MetricsRegistry& registry)
    : registry_(&registry) {
  // Baseline: deltas measure activity since sampler creation, not process
  // start, so a second run sharing the global registry starts at zero.
  const MetricsSnapshot snap =
      registry_->snapshot(SnapshotKind::kDeterministic);
  for (const CounterSnapshot& c : snap.counters) {
    last_counters_[c.name] = c.value;
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    baseline_gauge_updates_[g.name] = g.updates;
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    last_buckets_[h.name] = h.bucket_counts;
  }
}

void RegistrySampler::sample(Timeline& timeline, std::uint64_t round) {
  const MetricsSnapshot snap =
      registry_->snapshot(SnapshotKind::kDeterministic);
  // Emission is activity-based, never registration-based: the registry is
  // global and registers metrics lazily, so "which metrics exist" depends on
  // process history (an earlier run in the same process may have touched
  // more subsystems). A counter with a zero delta, an unwritten gauge, or a
  // histogram with an empty window emits nothing — absence means zero — and
  // equal-seed runs stay byte-identical whatever ran before them.
  for (const CounterSnapshot& c : snap.counters) {
    std::uint64_t& last = last_counters_[c.name];
    if (c.value != last) {
      timeline.record(round, c.name, static_cast<double>(c.value - last));
      last = c.value;
    }
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    if (g.updates > baseline_gauge_updates_[g.name]) {
      timeline.record(round, g.name, g.value);
    }
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::vector<std::uint64_t>& last = last_buckets_[h.name];
    last.resize(h.bucket_counts.size(), 0);
    std::vector<std::uint64_t> delta(h.bucket_counts.size());
    std::uint64_t window_count = 0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] = h.bucket_counts[i] - last[i];
      window_count += delta[i];
    }
    if (window_count == 0) continue;
    last = h.bucket_counts;
    timeline.record(round, h.name + ".count",
                    static_cast<double>(window_count));
    // Windowed quantiles from this round's bucket deltas. The run-wide
    // min/max anchor the edge buckets: still deterministic, slightly wider
    // than the true window extremes.
    static constexpr std::array<std::pair<double, const char*>, 3> kQuantiles{
        {{0.50, ".p50"}, {0.90, ".p90"}, {0.99, ".p99"}}};
    for (const auto& [q, suffix] : kQuantiles) {
      const double value =
          std::clamp(bucket_quantile(h.upper_bounds, delta, q, h.min, h.max),
                     h.min, h.max);
      timeline.record(round, h.name + suffix, value);
    }
  }
}

}  // namespace tanglefl::obs
