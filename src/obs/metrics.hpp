// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// histograms, named by string handles that call sites resolve once (keep a
// static reference) and then update lock-free.
//
// Determinism contract: the registry can produce two snapshot flavors.
//   - kDeterministic: only order-independent integer state — counter values,
//     gauge values, histogram bucket counts / total count / min / max. All
//     metrics registered as `timing` (wall-clock derived) are excluded, as is
//     each histogram's floating-point `sum` (parallel accumulation of doubles
//     is order-dependent). Two runs with the same seed and config serialize
//     byte-identically regardless of thread count.
//   - kFull: everything, including timing metrics and sums. Used for run
//     manifests, never for determinism diffing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/sync.hpp"

namespace tanglefl::obs {

/// Monotonically increasing integer counter. Increments are sharded across
/// cache-line-padded atomics keyed by a per-thread slot, so concurrent
/// increments from a thread pool do not contend; value() sums the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta) noexcept;
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins double value. Deterministic only when set from a
/// deterministic (single-threaded or ordered) context, e.g. the per-round
/// evaluation barrier.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  /// Number of set() calls since construction/reset. Lets samplers tell a
  /// gauge that was genuinely written from one merely registered (lazy
  /// registration makes the registered set depend on process history).
  std::uint64_t updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0.0, std::memory_order_relaxed);
    updates_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> updates_{0};
};

/// Fixed bucket layout: strictly increasing upper bounds with an implicit
/// +inf overflow bucket. A value lands in the first bucket whose upper bound
/// is >= the value (Prometheus-style "le" semantics).
struct BucketLayout {
  std::vector<double> upper_bounds;

  /// count buckets: start, start+width, ..., start+(count-1)*width.
  static BucketLayout linear(double start, double width, std::size_t count);
  /// count buckets: start, start*factor, start*factor^2, ...
  static BucketLayout exponential(double start, double factor, std::size_t count);
};

/// Thread-safe histogram over a fixed bucket layout. Bucket counts, total
/// count, min and max are order-independent; `sum` is not (double addition
/// is non-associative) and is therefore excluded from deterministic
/// snapshots.
class Histogram {
 public:
  explicit Histogram(BucketLayout layout);

  void record(double value) noexcept;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// 0.0 when the histogram is empty.
  double min() const noexcept;
  double max() const noexcept;
  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class SnapshotKind { kDeterministic, kFull };

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
  bool timing = false;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  /// set() calls so far; carried for samplers, never serialized.
  std::uint64_t updates = 0;
  bool timing = false;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool timing = false;

  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// bucket containing rank q * count. Exact at bucket edges, approximate
  /// inside; the first bucket is anchored at `min` and the overflow bucket
  /// at `max`, so p0 == min and p100 == max. Returns 0.0 when empty.
  double quantile(double q) const noexcept;
};

/// Shared bucket-quantile estimator over Prometheus-style "le" buckets:
/// bucket i spans (upper_bounds[i-1], upper_bounds[i]]; bucket 0 is anchored
/// below at `lo` and the overflow bucket above at `hi`. Works on any bucket
/// count vector (e.g. per-round deltas of two snapshots), not just whole
/// histograms. Returns 0.0 when the counts sum to zero.
double bucket_quantile(const std::vector<double>& upper_bounds,
                       const std::vector<std::uint64_t>& bucket_counts,
                       double q, double lo, double hi) noexcept;

class JsonWriter;

/// Point-in-time copy of the registry, sorted by metric name.
struct MetricsSnapshot {
  SnapshotKind kind = SnapshotKind::kFull;
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Deterministic serialization: metrics sorted by name, fixed number
  /// formatting. For kDeterministic snapshots the output is byte-identical
  /// across equal-seed runs. `indent` as in JsonWriter.
  std::string to_json(int indent = 2) const;

  /// Writes the snapshot as one JSON object into an in-progress document
  /// (used to nest the snapshot inside a run manifest).
  void write(JsonWriter& writer) const;
};

/// Process-wide registry. Handle lookup takes a mutex; call sites resolve
/// their handles once (static reference) and update lock-free afterwards.
/// Handles stay valid for the life of the registry; reset() zeroes values
/// without invalidating them.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// `timing` marks the metric as wall-clock derived: it is kept out of
  /// deterministic snapshots. Re-registering an existing name returns the
  /// existing instance; the kind and layout must match.
  Counter& counter(std::string_view name, bool timing = false);
  Gauge& gauge(std::string_view name, bool timing = false);
  Histogram& histogram(std::string_view name, const BucketLayout& layout,
                       bool timing = false);

  MetricsSnapshot snapshot(SnapshotKind kind = SnapshotKind::kFull) const;
  /// Zeroes every metric's value; handles remain valid.
  void reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    bool timing = false;
  };

  mutable Mutex mutex_;
  // Ordered map: snapshot iteration is sorted by name for free, and node
  // stability keeps handle references valid across registrations — the
  // returned Counter&/Gauge&/Histogram& references are the sanctioned
  // escape of guarded state (entries are never erased, values are atomic).
  std::map<std::string, Entry, std::less<>> entries_
      TANGLEFL_GUARDED_BY(mutex_);
};

}  // namespace tanglefl::obs
