// Per-round time series on top of the metrics registry.
//
// A Timeline stores named series of (round, value) samples grouped into runs
// (one run per harness invocation label, e.g. one poisoning fraction in
// fig5). Sinks are deterministic: JSONL emits one object per (run, round)
// with sorted keys; CSV emits one row per (run, round) with a sorted column
// union. Two equal-seed runs serialize byte-identically regardless of thread
// count, provided only deterministic values are recorded.
//
// RegistrySampler turns registry metrics into timeline series at round
// boundaries: counters become per-round deltas, gauges become point-in-time
// values, and histograms become per-round sample counts plus windowed
// p50/p90/p99 quantiles computed from bucket-count deltas. Timing metrics
// are excluded (the sampler reads kDeterministic snapshots only).
//
// Neither class takes locks: both are designed to be driven from the
// single-threaded round barrier (sync engine), the event loop (async), or
// the round loop (gossip), never from pool workers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace tanglefl::obs {

class Timeline {
 public:
  /// Starts (or resumes) the run with the given label; subsequent record()
  /// calls land there. Without any begin_run() samples land in a single
  /// unnamed run "". Runs serialize in first-begin order.
  void begin_run(std::string label);

  /// Records one sample. Re-recording the same (round, series) overwrites.
  void record(std::uint64_t round, std::string_view series, double value);

  bool empty() const noexcept;
  std::size_t run_count() const noexcept { return runs_.size(); }

  /// One compact JSON object per (run, round), rounds ascending within each
  /// run: {"round":N,"run":"label","<series>":<value>,...}. Keys after
  /// "round"/"run" are sorted; numbers use json_number formatting.
  std::string to_jsonl() const;

  /// Header `run,round,<sorted series union>`; one row per (run, round)
  /// with empty cells where a series has no sample.
  std::string to_csv() const;

  /// Returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  struct Run {
    std::string label;
    // round -> series -> value; both levels ordered so iteration is sorted.
    std::map<std::uint64_t, std::map<std::string, double, std::less<>>> rows;
  };

  Run& current_run();

  std::vector<Run> runs_;
  std::size_t current_ = 0;
};

/// Samples the registry into a Timeline at round boundaries. Counter and
/// histogram-bucket baselines are captured at construction, so deltas are
/// measured from "sampler creation" (engine construction), not process
/// start — a second simulation in the same process starts its series at
/// zero even though the shared registry keeps accumulating.
class RegistrySampler {
 public:
  explicit RegistrySampler(const MetricsRegistry& registry =
                               MetricsRegistry::global());

  /// Takes a deterministic snapshot and records, per metric:
  ///   counter   -> `<name>` = delta since the previous sample
  ///   gauge     -> `<name>` = current value
  ///   histogram -> `<name>.count` = samples recorded this round, plus
  ///                `<name>.p50/.p90/.p99` estimated from the round's
  ///                bucket-count deltas.
  /// Emission is activity-based: zero counter deltas, gauges never set()
  /// since sampler construction, and empty histogram windows emit nothing
  /// (absence means zero). Registration alone never produces a series, so
  /// output does not depend on which metrics earlier runs in the same
  /// process happened to register.
  void sample(Timeline& timeline, std::uint64_t round);

 private:
  const MetricsRegistry* registry_;
  std::map<std::string, std::uint64_t, std::less<>> last_counters_;
  std::map<std::string, std::uint64_t, std::less<>> baseline_gauge_updates_;
  std::map<std::string, std::vector<std::uint64_t>, std::less<>> last_buckets_;
};

/// RAII round boundary: samples the registry into the timeline when the
/// scope closes, so early returns from a round body still produce a row.
class RoundScope {
 public:
  RoundScope(RegistrySampler& sampler, Timeline& timeline,
             std::uint64_t round) noexcept
      : sampler_(&sampler), timeline_(&timeline), round_(round) {}
  ~RoundScope() { sampler_->sample(*timeline_, round_); }

  RoundScope(const RoundScope&) = delete;
  RoundScope& operator=(const RoundScope&) = delete;

 private:
  RegistrySampler* sampler_;
  Timeline* timeline_;
  std::uint64_t round_;
};

}  // namespace tanglefl::obs
