#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace tanglefl::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  // %.17g round-trips every double and is byte-stable for equal inputs.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string out(buf);
  // Make integral doubles read as JSON numbers with a fractional part so
  // downstream tooling does not reinterpret them as integers.
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find_first_of("0123456789") != std::string::npos) {
    out += ".0";
  }
  return out;
}

void JsonWriter::prepare_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_entry_.back()) out_ += ',';
  has_entry_.back() = true;
  if (depth_ > 0) newline_indent();
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

void JsonWriter::begin_object() {
  prepare_value();
  out_ += '{';
  ++depth_;
  has_entry_.push_back(false);
}

void JsonWriter::end_object() {
  bool had_entries = has_entry_.back();
  has_entry_.pop_back();
  --depth_;
  if (had_entries) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  prepare_value();
  out_ += '[';
  ++depth_;
  has_entry_.push_back(false);
}

void JsonWriter::end_array() {
  bool had_entries = has_entry_.back();
  has_entry_.pop_back();
  --depth_;
  if (had_entries) newline_indent();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  if (has_entry_.back()) out_ += ',';
  has_entry_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  prepare_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
}

void JsonWriter::value(bool flag) {
  prepare_value();
  out_ += flag ? "true" : "false";
}

void JsonWriter::value(double number) {
  prepare_value();
  out_ += json_number(number);
}

void JsonWriter::value(std::int64_t number) {
  prepare_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  prepare_value();
  out_ += std::to_string(number);
}

void JsonWriter::raw(std::string_view token) {
  prepare_value();
  out_ += token;
}

}  // namespace tanglefl::obs
