// Leveled stderr logging with a process-global threshold. The simulation
// engine logs per-round progress at Info; tests run with the threshold at
// Warn to keep output clean.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace tanglefl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted. kOff silences
/// everything (it is a threshold, not an emittable level).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when a message logged at `level` would currently be emitted.
/// kOff-level messages are never emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one line ("[level] message") to stderr if `level` passes the
/// threshold. Thread-safe (single write call per line).
void log_line(LogLevel level, const std::string& message);

namespace detail {

// Suppressed messages must cost as little as possible: the per-node hot
// loop logs at Debug while benchmarks run at Warn, so the stream (and any
// operator<< formatting) only exists when the message will be emitted.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {
    if (log_enabled(level)) stream_.emplace();
  }
  ~LogStream() {
    if (stream_) log_line(level_, stream_->str());
  }
  template <typename T>
  LogStream& operator<<(const T& value) {
    if (stream_) *stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace tanglefl
