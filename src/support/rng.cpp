#include "support/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tanglefl {
namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += kSplitMixGamma;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed into four non-degenerate state words.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t key) const noexcept {
  // Mix every state word with the key through SplitMix64 so that child
  // streams for different keys are decorrelated from each other and from
  // the parent stream.
  std::uint64_t acc = key ^ 0xd1b54a32d192ed03ULL;
  for (const auto word : state_) {
    acc ^= word;
    (void)splitmix64(acc);
  }
  std::uint64_t seed = acc ^ (key * kSplitMixGamma);
  return Rng{splitmix64(seed)};
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection-free-in-practice bounded draw with a rejection
  // loop to remove modulo bias exactly.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  // Box-Muller; draw until u1 is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_choice(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<std::size_t>(uniform_index(weights.size()));
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numerical slack
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) noexcept {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    using std::swap;
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

double Rng::gamma(double shape) noexcept {
  assert(shape > 0.0);
  // Marsaglia-Tsang for shape >= 1; boost trick for shape < 1.
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u > 0.0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) noexcept {
  std::vector<double> sample(k);
  double total = 0.0;
  for (auto& s : sample) {
    s = gamma(alpha);
    total += s;
  }
  if (total <= 0.0) {
    for (auto& s : sample) s = 1.0 / static_cast<double>(k);
    return sample;
  }
  for (auto& s : sample) s /= total;
  return sample;
}

std::vector<double> Rng::dirichlet(std::span<const double> alphas) noexcept {
  std::vector<double> sample(alphas.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    sample[i] = alphas[i] > 0.0 ? gamma(alphas[i]) : 0.0;
    total += sample[i];
  }
  if (total <= 0.0) {
    for (auto& s : sample) s = 1.0 / static_cast<double>(sample.size());
    return sample;
  }
  for (auto& s : sample) s /= total;
  return sample;
}

}  // namespace tanglefl
