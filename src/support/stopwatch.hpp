// Monotonic wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace tanglefl {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void restart() noexcept { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tanglefl
