// Monotonic wall-clock stopwatch for coarse experiment timing.
//
// This header is the only sanctioned clock access point outside support/:
// tools/lint.py bans direct std::chrono::*::now() calls elsewhere so that
// every timing read is auditable against the determinism contract (wall
// time must never feed simulation state, only manifests and traces).
#pragma once

#include <chrono>
#include <cstdint>

namespace tanglefl {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void restart() noexcept { start_ = Clock::now(); }

  /// Microseconds since a process-wide epoch (the first call). Monotonic;
  /// used for trace timestamps so all spans share one time base.
  static std::uint64_t now_micros() noexcept {
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              epoch)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer: adds the scope's elapsed wall seconds to `accumulator` on
/// destruction. Lets callers sum time across repeated scopes:
///
///   double train_seconds = 0.0;
///   for (...) { ScopedTimer timer(train_seconds); train(...); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) noexcept
      : accumulator_(&accumulator) {}
  ~ScopedTimer() { *accumulator_ += watch_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  Stopwatch watch_;
};

}  // namespace tanglefl
