// Fixed-size worker pool with a blocking task queue and a structured
// parallel_for helper. Used by the simulation engine to train the nodes of
// one round concurrently; determinism is preserved because each task derives
// its randomness from (seed, node id, round), never from scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tanglefl {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum one worker either way).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured in the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(i) for every i in [0, n), blocking until all complete. Work
  /// is claimed dynamically via an atomic counter. The first exception (if
  /// any) is rethrown on the calling thread after all iterations finish or
  /// are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tanglefl
