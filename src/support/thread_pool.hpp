// Fixed-size worker pool with a blocking task queue and a structured
// parallel_for helper. Used by the simulation engine to train the nodes of
// one round concurrently.
//
// Determinism contract: each task derives its randomness from
// (seed, node id, round) via Rng::split, never from scheduling order, wall
// clock, or address layout — so results are bit-identical for a given seed
// regardless of thread count. tools/lint.py enforces the source-level side
// of this contract (no rand()/std::random_device/unordered iteration in
// the consensus code).
//
// Shutdown semantics: shutdown() (also run by the destructor) drains every
// task already in the queue, then joins the workers. Once shutdown has
// begun, submit() and parallel_for() throw std::runtime_error instead of
// silently dropping work.
//
// Re-entrancy: parallel_for() called from one of this pool's own worker
// threads runs the loop serially inline. Queueing sub-tasks and blocking
// on them would deadlock as soon as every worker waits on lanes that no
// thread is left to execute; inline execution keeps nested parallelism
// well-defined (and deterministic) at the cost of not parallelizing the
// inner loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace tanglefl {

namespace detail {
/// Enqueue timestamp for pool observability (obs::timing_enabled() gated):
/// microseconds since the process epoch, or 0 when timing is disabled so
/// the hot path never reads the clock. Defined in thread_pool.cpp to keep
/// obs headers out of this widely-included one.
std::uint64_t pool_enqueue_timestamp() noexcept;
}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum one worker either way).
  explicit ThreadPool(std::size_t threads = 0);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Drains outstanding tasks, then joins all workers. Idempotent; after
  /// the first call submit() and parallel_for() reject new work. Must not
  /// race with concurrent submit()/parallel_for() calls (shutting down a
  /// pool other threads are still using is a caller bug; the sanitizer
  /// presets will flag it).
  void shutdown() noexcept;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured in the future. Throws std::runtime_error if
  /// shutdown has begun.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error(
            "ThreadPool::submit: pool is shut down; task rejected");
      }
      tasks_.push({[task] { (*task)(); }, detail::pool_enqueue_timestamp()});
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(i) for every i in [0, n), blocking until all complete. Work
  /// is claimed dynamically via an atomic counter; the calling thread
  /// participates as one of the lanes. The first exception (if any) is
  /// rethrown on the calling thread after all iterations finish or are
  /// abandoned. n == 0 is a no-op. Called from a worker of this pool, the
  /// loop runs serially inline (see re-entrancy note above). Throws
  /// std::runtime_error if shutdown has begun.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  bool on_worker_thread() const noexcept;

  struct QueuedTask {
    std::function<void()> fn;
    // 0 when obs timing is disabled; otherwise micros since process epoch,
    // used to report queue-wait time when the task is dequeued.
    std::uint64_t enqueue_us = 0;
  };

  // lint:allow(unannotated-guard) set once in the ctor, joined (unlocked,
  // join must not hold mutex_) in shutdown; never mutated in between.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<QueuedTask> tasks_ TANGLEFL_GUARDED_BY(mutex_);
  bool stopping_ TANGLEFL_GUARDED_BY(mutex_) = false;
};

}  // namespace tanglefl
