// Tabular output helpers for the benchmark harnesses: an aligned console
// table printer (for reproducing the paper's tables/figure series in text
// form) and a CSV writer (for plotting the same data externally).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tanglefl {

/// Collects rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; it may have fewer cells than the header (trailing cells
  /// render empty) but not more.
  void add_row(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to `out`.
  void print(std::ostream& out) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams rows into a CSV file; fields containing separators or quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<std::string>& row);

 private:
  struct Impl;
  Impl* impl_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
std::string format_fixed(double value, int digits);

}  // namespace tanglefl
