#include "support/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tanglefl {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare flag
    }
  }
}

std::optional<std::string> ArgParser::lookup(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_.push_back(name);
  return it->second;
}

void ArgParser::register_flag(const std::string& name, const std::string& type,
                              const std::string& default_render,
                              const std::string& help) {
  docs_.push_back({name, type, default_render, help});
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t default_value,
                                const std::string& help) {
  register_flag(name, "int", std::to_string(default_value), help);
  const auto raw = lookup(name);
  if (!raw) return default_value;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(raw->c_str(), &end, 10);
  if (raw->empty() || *end != '\0') {
    error_ = "--" + name + " expects an integer, got '" + *raw + "'";
    return default_value;
  }
  return value;
}

double ArgParser::get_double(const std::string& name, double default_value,
                             const std::string& help) {
  register_flag(name, "float", std::to_string(default_value), help);
  const auto raw = lookup(name);
  if (!raw) return default_value;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (raw->empty() || *end != '\0') {
    error_ = "--" + name + " expects a number, got '" + *raw + "'";
    return default_value;
  }
  return value;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& help) {
  register_flag(name, "string", default_value, help);
  const auto raw = lookup(name);
  return raw.value_or(default_value);
}

bool ArgParser::get_flag(const std::string& name, const std::string& help) {
  register_flag(name, "flag", "false", help);
  return lookup(name).has_value();
}

std::string ArgParser::help_text() const {
  std::ostringstream out;
  out << "Usage: " << program_ << " [flags]\n\nFlags:\n";
  for (const auto& doc : docs_) {
    out << "  --" << doc.name << " <" << doc.type << ">"
        << "  (default: " << doc.default_render << ")\n      " << doc.help
        << "\n";
  }
  return out.str();
}

bool ArgParser::should_exit() const {
  // Flag any supplied option that no getter consumed.
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(consumed_.begin(), consumed_.end(), name) ==
        consumed_.end()) {
      error_ = "unknown flag: --" + name;
    }
  }
  if (help_requested_) {
    std::cout << help_text();
    return true;
  }
  if (!error_.empty()) {
    std::cerr << "error: " << error_ << "\n\n" << help_text();
    return true;
  }
  return false;
}

}  // namespace tanglefl
