// SHA-256 (FIPS 180-4). Used to content-address model payloads and to
// derive transaction ids in the tangle, and by the optional proof-of-work
// primitive. Streaming interface plus one-shot helpers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace tanglefl {

/// 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs `data` into the hash state.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalizes and returns the digest. The object must not be reused after
  /// calling finish() without calling reset().
  Sha256Digest finish() noexcept;

  /// Restores the initial state.
  void reset() noexcept;

  /// One-shot digest of a byte span.
  static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  static Sha256Digest hash(std::string_view data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// Lowercase hex encoding of a digest.
std::string to_hex(const Sha256Digest& digest);

/// Number of leading zero bits in the digest (for proof-of-work checks).
int leading_zero_bits(const Sha256Digest& digest) noexcept;

}  // namespace tanglefl
