#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tanglefl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  assert(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

struct CsvWriter::Impl {
  std::ofstream stream;
  std::size_t columns = 0;

  void write_row(const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) stream << ',';
      stream << csv_escape(row[c]);
    }
    stream << '\n';
  }
};

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(new Impl) {
  impl_->stream.open(path);
  if (!impl_->stream) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  impl_->columns = header.size();
  impl_->write_row(header);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::add_row(const std::vector<std::string>& row) {
  assert(row.size() == impl_->columns);
  impl_->write_row(row);
}

std::string format_fixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace tanglefl
