#include "support/serialize.hpp"

// Header-only implementation; this translation unit exists so the library
// has a stable archive member and the header stays self-contained.
