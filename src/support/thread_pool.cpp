#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tanglefl {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Run small loops inline: the queueing overhead dominates otherwise.
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  std::exception_ptr error;
  std::mutex error_mutex;

  const std::size_t lanes = std::min(workers_.size(), n);
  std::vector<std::future<void>> pending;
  pending.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pending.push_back(submit([&, next, first_error] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n || first_error->load(std::memory_order_relaxed)) return;
        try {
          body(i);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error->exchange(true)) error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : pending) f.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace tanglefl
