#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/stopwatch.hpp"

namespace tanglefl {

namespace {
// Identifies which pool (if any) owns the current thread, so parallel_for
// can detect re-entrant calls from its own workers and degrade to inline
// serial execution instead of deadlocking.
thread_local const ThreadPool* tls_owner_pool = nullptr;

// Timing-kind metrics: wall-clock derived and scheduling-dependent, so they
// are excluded from deterministic snapshots and only populated when
// obs::set_timing_enabled(true) is in effect (bench harnesses).
obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "pool.queue_wait_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& task_exec_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "pool.task_exec_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}
}  // namespace

namespace detail {
std::uint64_t pool_enqueue_timestamp() noexcept {
  return obs::timing_enabled() ? Stopwatch::now_micros() : 0;
}
}  // namespace detail

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() noexcept {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();  // joinable() makes shutdown idempotent
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_owner_pool == this;
}

void ThreadPool::worker_loop() {
  tls_owner_pool = this;
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): TSA can only
      // verify guarded reads it sees in this function body.
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (task.enqueue_us != 0) {
      queue_wait_histogram().record(
          static_cast<double>(Stopwatch::now_micros() - task.enqueue_us));
    }
    {
      obs::TraceScope span("pool.task", &task_exec_histogram());
      task.fn();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  obs::TraceScope span("pool.parallel_for");
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      throw std::runtime_error(
          "ThreadPool::parallel_for: pool is shut down; work rejected");
    }
  }
  // Inline cases: trivial loops (queueing overhead dominates), single-worker
  // pools, and re-entrant calls from one of our own workers (queueing lanes
  // and blocking on them from inside a worker deadlocks once every worker
  // waits on work no thread is left to run).
  if (n == 1 || workers_.size() == 1 || on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  std::exception_ptr error;
  Mutex error_mutex;

  // Lanes claim indices from the shared counter until exhaustion; the first
  // thrown exception flips first_error, which drains the remaining lanes.
  const auto run_lane = [&error, &error_mutex, &body, next, first_error, n] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n || first_error->load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error->exchange(true)) error = std::current_exception();
        return;
      }
    }
  };

  // The calling thread is one of the lanes: it makes progress even when the
  // workers are busy with other submitted tasks, and a pool of W workers
  // yields W+1-way parallelism for the round loop.
  const std::size_t lanes = std::min(workers_.size() + 1, n);
  std::vector<std::future<void>> pending;
  pending.reserve(lanes - 1);
  try {
    for (std::size_t lane = 0; lane + 1 < lanes; ++lane) {
      pending.push_back(submit(run_lane));
    }
    run_lane();
  } catch (...) {
    // A racing shutdown() can make submit() throw after earlier lanes were
    // already enqueued. Those lanes reference this frame's error state and
    // `body`, so unwinding before they finish would dangle; drain them
    // (first_error short-circuits the index loop) before propagating.
    first_error->store(true, std::memory_order_relaxed);
    for (auto& f : pending) f.wait();
    throw;
  }
  for (auto& f : pending) f.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace tanglefl
