// Minimal binary (de)serialization used for model snapshots and tangle
// persistence. Little-endian, length-prefixed, no alignment requirements.
// The reader validates every length against the remaining buffer so that a
// truncated or corrupted stream raises SerializeError instead of reading
// out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tanglefl {

/// Thrown by ByteReader on malformed input.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(std::string_view s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }

  void write_f32_span(std::span<const float> values) {
    write_u64(values.size());
    write_raw(values.data(), values.size() * sizeof(float));
  }

  void write_u64_span(std::span<const std::uint64_t> values) {
    write_u64(values.size());
    write_raw(values.data(), values.size() * sizeof(std::uint64_t));
  }

  void write_u32_span(std::span<const std::uint32_t> values) {
    write_u64(values.size());
    write_raw(values.data(), values.size() * sizeof(std::uint32_t));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    write_u64(bytes.size());
    write_raw(bytes.data(), bytes.size());
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buffer_); }

 private:
  // GCC 12 at -O3 cannot track the resize preceding the memcpy and emits
  // false-positive stringop-overflow / array-bounds warnings here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
  void write_raw(const void* data, std::size_t size) {
    if (size == 0) return;
    const std::size_t offset = buffer_.size();
    buffer_.resize(offset + size);
    std::memcpy(buffer_.data() + offset, data, size);
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  std::vector<std::uint8_t> buffer_;
};

/// Reads primitive values back out of a byte buffer, bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t read_u8() { return read_value<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_value<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_value<std::uint64_t>(); }
  std::int64_t read_i64() { return read_value<std::int64_t>(); }
  float read_f32() { return read_value<float>(); }
  double read_f64() { return read_value<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_length(1);
    std::string s(n, '\0');
    read_raw(s.data(), n);
    return s;
  }

  std::vector<float> read_f32_vector() {
    const std::uint64_t n = read_length(sizeof(float));
    std::vector<float> v(n);
    read_raw(v.data(), n * sizeof(float));
    return v;
  }

  std::vector<std::uint64_t> read_u64_vector() {
    const std::uint64_t n = read_length(sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    read_raw(v.data(), n * sizeof(std::uint64_t));
    return v;
  }

  std::vector<std::uint32_t> read_u32_vector() {
    const std::uint64_t n = read_length(sizeof(std::uint32_t));
    std::vector<std::uint32_t> v(n);
    read_raw(v.data(), n * sizeof(std::uint32_t));
    return v;
  }

  std::vector<std::uint8_t> read_bytes() {
    const std::uint64_t n = read_length(1);
    std::vector<std::uint8_t> v(n);
    read_raw(v.data(), n);
    return v;
  }

  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T read_value() {
    T v{};
    read_raw(&v, sizeof v);
    return v;
  }

  /// Reads a length prefix and checks that `length * element_size` elements
  /// are actually present, guarding against hostile length fields.
  std::uint64_t read_length(std::size_t element_size) {
    const std::uint64_t n = read_value<std::uint64_t>();
    if (element_size != 0 && n > remaining() / element_size) {
      throw SerializeError("length prefix exceeds remaining buffer");
    }
    return n;
  }

  void read_raw(void* out, std::size_t size) {
    if (size > remaining()) throw SerializeError("read past end of buffer");
    // Empty reads short-circuit: `out` is null for empty vectors and
    // memcpy's arguments are declared nonnull even for size 0 (UBSan flags
    // the call).
    if (size == 0) return;
    std::memcpy(out, data_.data() + offset_, size);
    offset_ += size;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace tanglefl
