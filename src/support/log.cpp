#include "support/log.hpp"

#include <atomic>
#include <cstdio>

#include "support/sync.hpp"

namespace tanglefl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes emitted lines. stdio locks each fwrite internally, but the
// explicit Mutex makes line atomicity a stated invariant the annotated
// lock layer (and TSA) can see, instead of an implementation detail of
// the C library.
Mutex& stderr_mutex() {
  static Mutex mutex;
  return mutex;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

bool log_enabled(LogLevel level) noexcept {
  if (level == LogLevel::kOff) return false;
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  MutexLock lock(stderr_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace tanglefl
