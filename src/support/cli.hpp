// Small command-line flag parser for the bench and example binaries.
// Supports --name value and --name=value forms, typed lookups with
// defaults, and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tanglefl {

class ArgParser {
 public:
  /// Parses argv. Unknown flags are collected and reported by `error()`.
  ArgParser(int argc, const char* const* argv);

  /// Registers a flag with its help text and default rendering, and returns
  /// the user-supplied value (if any). Used via the typed getters below.
  std::int64_t get_int(const std::string& name, std::int64_t default_value,
                       const std::string& help);
  double get_double(const std::string& name, double default_value,
                    const std::string& help);
  std::string get_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);
  bool get_flag(const std::string& name, const std::string& help);

  /// True if --help was passed; the caller should print `help_text()` and
  /// exit.
  bool help_requested() const noexcept { return help_requested_; }

  /// Non-empty when an unknown flag or a malformed value was seen.
  const std::string& error() const noexcept { return error_; }

  /// Records a flag-validation error discovered by the caller (reported via
  /// error() / should_exit() exactly like built-in parse failures).
  void set_error(const std::string& message) { error_ = message; }

  /// Usage text listing all flags registered so far.
  std::string help_text() const;

  /// Convenience: prints help / errors and returns true if the program
  /// should exit early.
  bool should_exit() const;

 private:
  std::optional<std::string> lookup(const std::string& name);
  void register_flag(const std::string& name, const std::string& type,
                     const std::string& default_render,
                     const std::string& help);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> consumed_;
  struct FlagDoc {
    std::string name, type, default_render, help;
  };
  std::vector<FlagDoc> docs_;
  bool help_requested_ = false;
  mutable std::string error_;
};

}  // namespace tanglefl
