// Deterministic, splittable random number generation.
//
// All randomness in the library flows from a single 64-bit master seed
// through `Rng`. An `Rng` can be `split()` into statistically independent
// child streams keyed by an integer, which makes parallel simulations
// reproducible regardless of thread scheduling: every node / round / walk
// derives its own stream from (master seed, node id, round, purpose).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tanglefl {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64 random bits.
  result_type operator()() noexcept;

  /// Derives an independent child stream keyed by `key`. Children with
  /// different keys (or from parents with different states) do not overlap
  /// for any practical sample count.
  [[nodiscard]] Rng split(std::uint64_t key) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Box-Muller, no cached spare for determinism).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// choice is uniform. Requires weights to be non-empty.
  std::size_t weighted_choice(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// Samples `k` distinct indices from [0, n) uniformly (partial
  /// Fisher-Yates). Requires k <= n. Result order is random.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k) noexcept;

  /// Samples from a symmetric Dirichlet distribution with concentration
  /// `alpha` over `k` categories (used for non-IID label partitioning).
  [[nodiscard]] std::vector<double> dirichlet(double alpha, std::size_t k) noexcept;

  /// Samples from an asymmetric Dirichlet with per-category concentrations
  /// (used to give the synthetic language Zipfian symbol frequencies).
  [[nodiscard]] std::vector<double> dirichlet(std::span<const double> alphas) noexcept;

 private:
  /// Gamma(shape, 1) sample; used by dirichlet().
  double gamma(double shape) noexcept;

  std::uint64_t state_[4];
};

}  // namespace tanglefl
