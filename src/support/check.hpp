// Debug invariant-checking primitives.
//
// TANGLEFL_DCHECK(cond) / TANGLEFL_DCHECK_MSG(cond, msg) verify internal
// invariants that correct code can never violate. They are compiled in when
// the build defines TANGLEFL_DEBUG_CHECKS (CMake option of the same name,
// ON in the asan/tsan/debug presets) and compile to nothing in release
// builds — the condition is not evaluated, but it is still type-checked so
// checks cannot rot.
//
// A failed check throws tanglefl::CheckFailure (a std::logic_error), which
// makes violations testable with EXPECT_THROW and lets the sanitizer
// presets surface them as ordinary test failures with a readable message
// instead of a raw abort().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tanglefl {

/// Thrown when a TANGLEFL_DCHECK fails. Derives from std::logic_error:
/// a failed check is always a programming error, never an input error.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expression, const char* file,
                                      int line, const std::string& message) {
  std::ostringstream out;
  out << "TANGLEFL_DCHECK failed: " << expression << " at " << file << ':'
      << line;
  if (!message.empty()) out << " — " << message;
  throw CheckFailure(out.str());
}

}  // namespace detail
}  // namespace tanglefl

#if defined(TANGLEFL_DEBUG_CHECKS)
#define TANGLEFL_DCHECK(cond)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::tanglefl::detail::check_failed(#cond, __FILE__, __LINE__, {});      \
    }                                                                       \
  } while (false)
#define TANGLEFL_DCHECK_MSG(cond, msg)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::tanglefl::detail::check_failed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                       \
  } while (false)
#else
// The `false &&` keeps the expressions compiled (so they cannot bit-rot or
// leave "unused variable" warnings behind) while guaranteeing they are
// never evaluated at run time.
#define TANGLEFL_DCHECK(cond) ((void)(false && static_cast<bool>(cond)))
#define TANGLEFL_DCHECK_MSG(cond, msg) \
  ((void)(false && ((void)(msg), static_cast<bool>(cond))))
#endif
