// Annotated synchronization layer: the only place in the codebase that may
// name a std::mutex. Every other file locks through the wrappers below, so
// Clang's Thread Safety Analysis (TSA, -Wthread-safety -Wthread-safety-beta,
// errors under the -Werror presets) can prove lock discipline at compile
// time: which lock guards which field (TANGLEFL_GUARDED_BY), which helper
// assumes a lock is already held (TANGLEFL_REQUIRES), and which scope
// acquires and releases what (TANGLEFL_ACQUIRE / TANGLEFL_RELEASE).
//
// On non-Clang compilers every annotation macro expands to nothing and the
// wrappers are zero-cost forwards to the std primitives, so GCC builds are
// unaffected. tools/lint.py enforces the source-level side:
//   raw-mutex          — std::mutex / std::shared_mutex / std::lock_guard /
//                        std::unique_lock / ... may appear only in this file.
//   unannotated-guard  — every field of a class that owns a Mutex or
//                        SharedMutex must be TANGLEFL_GUARDED_BY-annotated,
//                        atomic, or carry a lint:allow(unannotated-guard)
//                        justification.
//
// Conventions (see DESIGN.md "Static thread-safety"):
//   * Lock with the RAII guards (MutexLock / ReaderLock / WriterLock);
//     manual lock()/unlock() only where RAII cannot express the shape.
//   * Condition predicates are explicit while-loops over guarded fields —
//     TSA cannot see through a predicate lambda handed to a wait(), so
//     CondVar deliberately has no predicate overload.
//   * A private helper that touches guarded state without locking must be
//     annotated TANGLEFL_REQUIRES(mutex_) and called only under the lock.
//   * Never let a reference to guarded state escape the critical section
//     unless the pointee is immutable and its storage is stable (document
//     why at the call site); otherwise copy out under the lock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros (no-ops outside Clang).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define TANGLEFL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TANGLEFL_THREAD_ANNOTATION(x)  // no-op: TSA is a Clang extension
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define TANGLEFL_CAPABILITY(x) TANGLEFL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define TANGLEFL_SCOPED_CAPABILITY TANGLEFL_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the named capability.
#define TANGLEFL_GUARDED_BY(x) TANGLEFL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the named capability.
#define TANGLEFL_PT_GUARDED_BY(x) TANGLEFL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (exclusive / shared) to be held on entry.
#define TANGLEFL_REQUIRES(...) \
  TANGLEFL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TANGLEFL_REQUIRES_SHARED(...) \
  TANGLEFL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive / shared) and does not
/// release it before returning.
#define TANGLEFL_ACQUIRE(...) \
  TANGLEFL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TANGLEFL_ACQUIRE_SHARED(...) \
  TANGLEFL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic release also ends shared holds).
#define TANGLEFL_RELEASE(...) \
  TANGLEFL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TANGLEFL_RELEASE_SHARED(...) \
  TANGLEFL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `value`.
#define TANGLEFL_TRY_ACQUIRE(value, ...) \
  TANGLEFL_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock guard
/// for helpers that acquire it themselves).
#define TANGLEFL_EXCLUDES(...) \
  TANGLEFL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define TANGLEFL_RETURN_CAPABILITY(x) \
  TANGLEFL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Requires a comment
/// explaining why the lock pattern cannot be expressed in annotations.
#define TANGLEFL_NO_THREAD_SAFETY_ANALYSIS \
  TANGLEFL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tanglefl {

// ---------------------------------------------------------------------------
// Annotated primitives.
// ---------------------------------------------------------------------------

/// std::mutex with a TSA capability identity.
class TANGLEFL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TANGLEFL_ACQUIRE() { raw_.lock(); }
  void unlock() TANGLEFL_RELEASE() { raw_.unlock(); }
  bool try_lock() TANGLEFL_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// std::shared_mutex with a TSA capability identity: exclusive for writers,
/// shared for readers.
class TANGLEFL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TANGLEFL_ACQUIRE() { raw_.lock(); }
  void unlock() TANGLEFL_RELEASE() { raw_.unlock(); }
  bool try_lock() TANGLEFL_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  void lock_shared() TANGLEFL_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void unlock_shared() TANGLEFL_RELEASE_SHARED() { raw_.unlock_shared(); }
  bool try_lock_shared() TANGLEFL_TRY_ACQUIRE(true) {
    return raw_.try_lock_shared();
  }

 private:
  std::shared_mutex raw_;
};

/// RAII exclusive lock on a Mutex (the std::scoped_lock replacement).
class TANGLEFL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TANGLEFL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() TANGLEFL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock on a SharedMutex (the std::unique_lock replacement).
class TANGLEFL_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) TANGLEFL_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() TANGLEFL_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock on a SharedMutex.
class TANGLEFL_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) TANGLEFL_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() TANGLEFL_RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to the annotated Mutex.
///
/// Deliberately predicate-free: TSA cannot analyze guarded-field reads
/// inside a predicate lambda (the lambda is a separate function with no
/// REQUIRES), so call sites spell the canonical loop explicitly:
///
///     MutexLock lock(mutex_);
///     while (!condition_over_guarded_fields) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` (which the caller must hold), blocks until
  /// notified, and reacquires it before returning.
  void wait(Mutex& mutex) TANGLEFL_REQUIRES(mutex) {
    // Adopt the already-held lock for the std wait protocol, then release
    // the std::unique_lock's ownership claim so the Mutex stays held (as
    // TSA assumes) when this returns.
    std::unique_lock<std::mutex> adopted(mutex.raw_, std::adopt_lock);
    raw_.wait(adopted);
    adopted.release();
  }

  void notify_one() noexcept { raw_.notify_one(); }
  void notify_all() noexcept { raw_.notify_all(); }

 private:
  std::condition_variable raw_;
};

}  // namespace tanglefl
