// Publishing-side privacy and compression transforms.
//
// Differential privacy (Section III-D): the paper points to update noising
// as the standard mitigation against reconstruction and linkability
// attacks. dp_sanitize implements the Gaussian mechanism on a node's
// *update* (the delta between its trained parameters and the base model it
// trained from): the delta is clipped to a fixed L2 norm and perturbed
// with isotropic Gaussian noise proportional to that clip.
//
// Quantization (Section III-C): the paper notes the communication cost of
// shipping full parameter vectors. quantize_params implements uniform
// symmetric 8-bit quantization, the simplest lossy payload compression
// (4x smaller on the wire); dequantize_params restores floats.
#pragma once

#include <cstdint>
#include <span>

#include "nn/params.hpp"
#include "support/rng.hpp"

namespace tanglefl::nn {

struct DpConfig {
  double clip_norm = 1.0;         // L2 bound on the update
  double noise_multiplier = 0.1;  // sigma = noise_multiplier * clip_norm
};

/// Returns base + clip(params - base, clip_norm) + N(0, sigma^2 I).
/// With noise_multiplier == 0 this is pure update clipping. `params` and
/// `base` must have equal sizes.
ParamVector dp_sanitize(std::span<const float> params,
                        std::span<const float> base, const DpConfig& config,
                        Rng& rng);

/// 8-bit symmetric uniform quantization of a parameter vector.
struct QuantizedParams {
  std::vector<std::int8_t> values;
  float scale = 1.0f;  // dequantized = value * scale

  std::size_t byte_size() const noexcept {
    return values.size() * sizeof(std::int8_t) + sizeof(float);
  }
};

/// Throws std::invalid_argument if any parameter is non-finite (±inf/NaN
/// would poison the scale or every quantized value).
QuantizedParams quantize_params(std::span<const float> params);
ParamVector dequantize_params(const QuantizedParams& quantized);

/// Round-trips through 8-bit quantization (the payload a node would
/// publish when compressing on the wire).
ParamVector quantize_roundtrip(std::span<const float> params);

}  // namespace tanglefl::nn
