#include "nn/params.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tanglefl::nn {

ParamVector average_params(std::span<const ParamVector> params) {
  std::vector<const ParamVector*> pointers;
  pointers.reserve(params.size());
  for (const auto& p : params) pointers.push_back(&p);
  return average_params(pointers);
}

ParamVector average_params(std::span<const ParamVector* const> params) {
  if (params.empty()) {
    throw std::invalid_argument("average_params: no inputs");
  }
  const std::size_t n = params.front()->size();
  if (params.size() == 2) {
    // Two parents is the paper's default (num_tips = 2) and dominates the
    // simulation hot path, so skip the double accumulator vector. 0.5 is
    // exact in binary, hence (a + b) * 0.5 in double is bit-identical to
    // the generic accumulate-then-scale path.
    const ParamVector& a = *params[0];
    const ParamVector& b = *params[1];
    if (b.size() != n) {
      throw std::invalid_argument("average_params: size mismatch");
    }
    ParamVector out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<float>(
          (static_cast<double>(a[i]) + static_cast<double>(b[i])) * 0.5);
    }
    return out;
  }
  std::vector<double> acc(n, 0.0);
  for (const ParamVector* p : params) {
    if (p->size() != n) {
      throw std::invalid_argument("average_params: size mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) acc[i] += (*p)[i];
  }
  ParamVector out(n);
  const double inv = 1.0 / static_cast<double>(params.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(acc[i] * inv);
  }
  return out;
}

ParamVector weighted_average_params(std::span<const ParamVector> params,
                                    std::span<const double> weights) {
  if (params.empty() || params.size() != weights.size()) {
    throw std::invalid_argument("weighted_average_params: bad inputs");
  }
  double total_weight = 0.0;
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("weighted_average_params: negative weight");
    }
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("weighted_average_params: zero weight sum");
  }
  const std::size_t n = params.front().size();
  std::vector<double> acc(n, 0.0);
  for (std::size_t k = 0; k < params.size(); ++k) {
    if (params[k].size() != n) {
      throw std::invalid_argument("weighted_average_params: size mismatch");
    }
    const double w = weights[k] / total_weight;
    for (std::size_t i = 0; i < n; ++i) acc[i] += w * params[k][i];
  }
  ParamVector out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

double param_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void serialize_params(std::span<const float> params, ByteWriter& writer) {
  writer.write_f32_span(params);
}

ParamVector deserialize_params(ByteReader& reader) {
  return reader.read_f32_vector();
}

}  // namespace tanglefl::nn
