// Sequential model container: owns a stack of layers, wires forward /
// backward through them, and exposes the flat parameter-vector view that
// the ledger layer (tangle transactions, FedAvg aggregation) operates on.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "support/rng.hpp"

namespace tanglefl::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns a reference for chaining.
  Model& add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place.
  template <typename L, typename... Args>
  Model& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Randomly initializes every layer from independent child streams.
  void init(Rng& rng);

  /// Runs the full stack; `training` toggles dropout.
  Tensor forward(const Tensor& input, bool training = false);

  /// Runs layers [first_layer, layer_count()) on `input`, which must be the
  /// bit-exact output of layer first_layer - 1. Lets the eval engine's fused
  /// pass substitute a shared-operand computation of the first layer and
  /// resume the ordinary stack, producing the same bits as forward().
  Tensor forward_from(std::size_t first_layer, const Tensor& input,
                      bool training = false);

  /// Backpropagates d(loss)/d(output); parameter gradients accumulate into
  /// each layer's gradient tensors. Returns d(loss)/d(input).
  Tensor backward(const Tensor& grad_output);

  /// Clears all accumulated gradients.
  void zero_gradients();

  /// Total number of scalar parameters.
  std::size_t parameter_count() const;

  /// Copies all parameters into one flat vector (layer order, tensor order).
  [[nodiscard]] std::vector<float> get_parameters() const;

  /// Overwrites all parameters from a flat vector; the size must match
  /// parameter_count().
  void set_parameters(std::span<const float> flat);

  /// Copies all accumulated gradients into one flat vector.
  [[nodiscard]] std::vector<float> get_gradients() const;

  /// Mutable access to per-layer parameter/gradient tensors, in order.
  std::vector<Tensor*> parameter_tensors();
  std::vector<Tensor*> gradient_tensors();

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Sets (or clears, with nullptr) the intra-node kernel pool on every
  /// layer. Kernels partition output rows only, so results are bit-identical
  /// for any pool size. The pool must outlive subsequent forward/backward
  /// calls.
  void set_kernel_pool(ThreadPool* pool) noexcept;

  /// Deep copy (architecture + current parameters).
  [[nodiscard]] Model clone() const;

  /// One-line architecture summary, e.g. "Conv2D -> ReLU -> ... (12345 params)".
  std::string summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds a fresh, uninitialized model of some fixed architecture. Nodes
/// share a factory so every participant trains the same model family, as in
/// federated learning where the server fixes the architecture up front.
using ModelFactory = std::function<Model()>;

}  // namespace tanglefl::nn
