// Layer abstraction and the concrete layers used by the paper's two model
// families (CNN for the image task, embedding + stacked LSTM for the
// character-LM task). Layers cache whatever their backward pass needs, so
// a training step is forward(x, true) -> loss grad -> backward(grad).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "support/rng.hpp"

namespace tanglefl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Optional intra-node kernel pool used by this layer's GEMM calls. The
  /// kernels partition output rows only, so results are bit-identical with
  /// or without a pool; null (the default) runs every kernel serially. The
  /// pool must outlive the layer's forward/backward calls — callers that
  /// set it for a training run should clear it afterwards.
  void set_kernel_pool(ThreadPool* pool) noexcept { kernel_pool_ = pool; }

  /// Computes the layer output. `training` enables train-only behaviour
  /// (dropout masks). The input is cached for backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Given d(loss)/d(output), accumulates parameter gradients and returns
  /// d(loss)/d(input). Must follow a forward() call.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameter tensors (empty for stateless layers).
  virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradient tensors, parallel to parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Randomly initializes parameters (He/Xavier as appropriate).
  virtual void init(Rng& rng) { (void)rng; }

  virtual std::string name() const = 0;

  /// Deep copy including current parameter values.
  virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  ThreadPool* kernel_pool_ = nullptr;
};

/// Fully connected layer: y = x * W + b with x(batch, in), W(in, out).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&dweight_, &dbias_}; }
  void init(Rng& rng) override;
  std::string name() const override { return "Linear"; }
  std::unique_ptr<Layer> clone() const override;

  const Tensor& weight() const noexcept { return weight_; }
  const Tensor& bias() const noexcept { return bias_; }

 private:
  std::size_t in_features_, out_features_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
};

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor cached_input_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout final : public Layer {
 public:
  explicit Dropout(double drop_probability);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void init(Rng& rng) override { rng_ = rng.split(0x0d0f0u); }
  std::string name() const override { return "Dropout"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  double drop_probability_;
  Rng rng_{0};
  std::vector<float> mask_;
};

/// 2-D convolution over (batch, channels, height, width) tensors.
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, std::size_t padding = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&dweight_, &dbias_}; }
  void init(Rng& rng) override;
  std::string name() const override { return "Conv2D"; }
  std::unique_ptr<Layer> clone() const override;

  // Read-only views for the eval engine's fused multi-model pass, which
  // shares one packed input operand across models and needs the layer's
  // geometry and parameters to replay the per-model GEMMs.
  const Tensor& weight() const noexcept { return weight_; }
  const Tensor& bias() const noexcept { return bias_; }
  ops::Conv2DShape shape() const noexcept {
    return ops::Conv2DShape{in_channels_, out_channels_, kernel_, stride_,
                            padding_};
  }

 private:
  ops::Conv2DShape conv_shape();

  std::size_t in_channels_, out_channels_, kernel_, stride_, padding_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor cached_input_;
  // im2col scratch, reused across minibatches.
  ops::Workspace workspace_;
};

/// Max pooling with a square window.
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t window, std::size_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_, stride_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> input_shape_;
};

/// Collapses all non-batch dimensions: (b, ...) -> (b, prod(...)).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  std::vector<std::size_t> input_shape_;
};

/// Token embedding: (batch, seq) ids-as-floats -> (batch, seq, dim).
class Embedding final : public Layer {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_}; }
  std::vector<Tensor*> gradients() override { return {&dweight_}; }
  void init(Rng& rng) override;
  std::string name() const override { return "Embedding"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t vocab_size_, dim_;
  Tensor weight_, dweight_;
  Tensor cached_input_;
};

/// Single LSTM layer over (batch, seq, input_dim) producing the full hidden
/// sequence (batch, seq, hidden). Stack two for the paper's "stacked LSTM".
/// Gate order in the fused weight matrices is (input, forget, cell, output).
class LSTM final : public Layer {
 public:
  LSTM(std::size_t input_dim, std::size_t hidden_dim);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override {
    return {&w_input_, &w_hidden_, &bias_};
  }
  std::vector<Tensor*> gradients() override {
    return {&dw_input_, &dw_hidden_, &dbias_};
  }
  void init(Rng& rng) override;
  std::string name() const override { return "LSTM"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  // Legacy per-timestep path, dispatched under ops::reference mode; shares
  // the cache tensors with the fused path below.
  Tensor forward_reference(const Tensor& input);
  Tensor backward_reference(const Tensor& grad_output);
  void ensure_cache_shapes(std::size_t batch, std::size_t seq);

  std::size_t input_dim_, hidden_dim_;
  Tensor w_input_;   // (input_dim, 4*hidden)
  Tensor w_hidden_;  // (hidden, 4*hidden)
  Tensor bias_;      // (4*hidden)
  Tensor dw_input_, dw_hidden_, dbias_;

  // Per-forward caches for BPTT, laid out as whole sequences so the fused
  // path can GEMM over strided timestep views instead of copied slices.
  Tensor cached_input_;
  Tensor gates_;   // (batch, seq, 4*hidden) activated gates
  Tensor hidden_;  // (batch, seq, hidden) h_t
  Tensor cell_;    // (batch, seq, hidden) c_t
  // Scratch for pre-activations / dgates, reused across minibatches.
  ops::Workspace workspace_;
};

/// Selects the final timestep: (batch, seq, dim) -> (batch, dim).
class LastTimestep final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LastTimestep"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<LastTimestep>();
  }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace tanglefl::nn
