// Reference model families mirroring the LEAF models the paper trains:
// a small CNN for the (F)EMNIST-style image task and an embedding +
// stacked-LSTM classifier for the Shakespeare-style next-character task.
// Dimensions are configurable so experiments can run laptop-scale while
// keeping the paper's architecture shape.
#pragma once

#include <cstddef>

#include "nn/model.hpp"

namespace tanglefl::nn {

struct ImageCnnConfig {
  std::size_t image_size = 14;    // square input, single channel
  std::size_t num_classes = 10;
  std::size_t conv1_channels = 8;
  std::size_t conv2_channels = 16;
  std::size_t kernel = 3;
  std::size_t hidden = 64;        // fully connected layer width
  double dropout = 0.0;
};

/// Conv -> ReLU -> Pool -> Conv -> ReLU -> Pool -> Flatten -> FC -> ReLU
/// [-> Dropout] -> FC(num_classes). A scaled-down LEAF FEMNIST CNN.
Model make_image_cnn(const ImageCnnConfig& config);

struct CharLstmConfig {
  std::size_t vocab_size = 40;
  std::size_t seq_length = 20;
  std::size_t embedding_dim = 8;
  std::size_t hidden_dim = 32;
  std::size_t lstm_layers = 2;    // "stacked LSTM" in the paper
};

/// Embedding -> LSTM x layers -> LastTimestep -> FC(vocab). Predicts the
/// next character from a fixed-length window, as in LEAF Shakespeare.
Model make_char_lstm(const CharLstmConfig& config);

/// Tiny multilayer perceptron for unit tests and the quickstart example.
Model make_mlp(std::size_t inputs, std::size_t hidden, std::size_t classes);

}  // namespace tanglefl::nn
