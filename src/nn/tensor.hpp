// Dense row-major float tensor. This is the numeric workhorse of the NN
// substrate: contiguous storage, shape metadata, and the elementwise /
// reduction helpers shared by layers and optimizers. Heavy structured ops
// (matmul, convolution) live in ops.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace tanglefl::nn {

class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor wrapping a copy of `values`; their count must match the shape.
  Tensor(std::vector<std::size_t> shape, std::vector<float> values);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Extent of dimension `dim`.
  std::size_t dim(std::size_t d) const {
    assert(d < shape_.size());
    return shape_[d];
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> values() noexcept { return data_; }
  std::span<const float> values() const noexcept { return data_; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// Multi-dimensional accessors for ranks 2-4 (row-major).
  float& at(std::size_t i, std::size_t j) {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float at(std::size_t i, std::size_t j) const {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    assert(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    assert(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  /// Reinterprets the shape; the element count must be unchanged.
  void reshape(std::vector<std::size_t> new_shape);

  /// Returns a reshaped copy.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// this += other (shapes must match).
  void add(const Tensor& other);
  /// this += scale * other (shapes must match).
  void add_scaled(const Tensor& other, float scale);
  /// this *= scale.
  void scale(float factor) noexcept;

  /// Sum of all elements.
  float sum() const noexcept;
  /// Index of the maximum element in row `row` of a rank-2 tensor.
  std::size_t argmax_row(std::size_t row) const;
  /// L2 norm of all elements.
  float l2_norm() const noexcept;

  /// True if shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const noexcept;

  /// "[2, 3]"-style shape rendering for diagnostics.
  std::string shape_string() const;

  /// Total element count implied by a shape.
  static std::size_t element_count(std::span<const std::size_t> shape) noexcept;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace tanglefl::nn
