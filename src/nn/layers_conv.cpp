#include <cassert>
#include <cmath>

#include "nn/layer.hpp"
#include "nn/ops.hpp"

namespace tanglefl::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      dweight_({out_channels, in_channels, kernel, kernel}),
      dbias_({out_channels}) {}

ops::Conv2DShape Conv2D::conv_shape() {
  return {in_channels_, out_channels_, kernel_, stride_, padding_};
}

void Conv2D::init(Rng& rng) {
  const float fan_in =
      static_cast<float>(in_channels_ * kernel_ * kernel_);
  const float scale = std::sqrt(2.0f / fan_in);
  for (auto& w : weight_.values()) {
    w = static_cast<float>(rng.normal()) * scale;
  }
  bias_.zero();
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 4 && input.dim(1) == in_channels_);
  cached_input_ = input;
  const auto shape = conv_shape();
  Tensor output({input.dim(0), out_channels_, shape.out_extent(input.dim(2)),
                 shape.out_extent(input.dim(3))});
  ops::conv2d_forward(input, weight_, bias_, shape, output, &workspace_,
                      kernel_pool_);
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  Tensor dx(cached_input_.shape());
  ops::conv2d_backward(cached_input_, weight_, conv_shape(), grad_output, dx,
                       dweight_, dbias_, &workspace_, kernel_pool_);
  return dx;
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::make_unique<Conv2D>(in_channels_, out_channels_, kernel_,
                                       stride_, padding_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

// ------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {}

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 4);
  input_shape_ = input.shape();
  const std::size_t oh = (input.dim(2) - window_) / stride_ + 1;
  const std::size_t ow = (input.dim(3) - window_) / stride_ + 1;
  Tensor output({input.dim(0), input.dim(1), oh, ow});
  ops::maxpool2d_forward(input, window_, stride_, output, argmax_);
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  Tensor dx(input_shape_);
  ops::maxpool2d_backward(grad_output, argmax_, dx);
  return dx;
}

std::unique_ptr<Layer> MaxPool2D::clone() const {
  return std::make_unique<MaxPool2D>(window_, stride_);
}

}  // namespace tanglefl::nn
