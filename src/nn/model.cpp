#include "nn/model.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::nn {
namespace {

// Per-call wall timing of the two training-step halves; timing-kind
// (manifest/trace only). The spans are batch-granular, so even a tracing
// run stays far from per-element overhead.
obs::Histogram& forward_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "nn.forward_us", obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& backward_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "nn.backward_us", obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

}  // namespace

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(Rng& rng) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Rng child = rng.split(i + 1);
    layers_[i]->init(child);
  }
}

Tensor Model::forward(const Tensor& input, bool training) {
  obs::TraceScope span("nn.forward", &forward_timing());
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Model::forward_from(std::size_t first_layer, const Tensor& input,
                           bool training) {
  obs::TraceScope span("nn.forward", &forward_timing());
  Tensor x = input;
  for (std::size_t i = first_layer; i < layers_.size(); ++i) {
    x = layers_[i]->forward(x, training);
  }
  return x;
}

Tensor Model::backward(const Tensor& grad_output) {
  obs::TraceScope span("nn.backward", &backward_timing());
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Model::set_kernel_pool(ThreadPool* pool) noexcept {
  for (auto& layer : layers_) layer->set_kernel_pool(pool);
}

void Model::zero_gradients() {
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) g->zero();
  }
}

std::size_t Model::parameter_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    for (const Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      count += p->size();
    }
  }
  return count;
}

std::vector<float> Model::get_parameters() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (const Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      const auto values = p->values();
      flat.insert(flat.end(), values.begin(), values.end());
    }
  }
  return flat;
}

void Model::set_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      if (offset + p->size() > flat.size()) {
        throw std::invalid_argument("set_parameters: vector too short");
      }
      auto values = p->values();
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = flat[offset + i];
      }
      offset += p->size();
    }
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("set_parameters: vector size mismatch");
  }
}

std::vector<float> Model::get_gradients() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (const Tensor* g : const_cast<Layer&>(*layer).gradients()) {
      const auto values = g->values();
      flat.insert(flat.end(), values.begin(), values.end());
    }
  }
  return flat;
}

std::vector<Tensor*> Model::parameter_tensors() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Model::gradient_tensors() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

Model Model::clone() const {
  Model copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

std::string Model::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out << " -> ";
    out << layers_[i]->name();
  }
  out << " (" << parameter_count() << " params)";
  return out.str();
}

}  // namespace tanglefl::nn
