#include "nn/model_zoo.hpp"

#include <cassert>

namespace tanglefl::nn {

Model make_image_cnn(const ImageCnnConfig& config) {
  assert(config.image_size >= 8 && "image too small for two pooling stages");
  Model model;
  const std::size_t pad = config.kernel / 2;  // "same" convolutions
  model.emplace<Conv2D>(1, config.conv1_channels, config.kernel, 1, pad);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Conv2D>(config.conv1_channels, config.conv2_channels,
                        config.kernel, 1, pad);
  model.emplace<ReLU>();
  model.emplace<MaxPool2D>(2);
  model.emplace<Flatten>();
  const std::size_t spatial = config.image_size / 4;
  model.emplace<Linear>(config.conv2_channels * spatial * spatial,
                        config.hidden);
  model.emplace<ReLU>();
  if (config.dropout > 0.0) model.emplace<Dropout>(config.dropout);
  model.emplace<Linear>(config.hidden, config.num_classes);
  return model;
}

Model make_char_lstm(const CharLstmConfig& config) {
  assert(config.lstm_layers >= 1);
  Model model;
  model.emplace<Embedding>(config.vocab_size, config.embedding_dim);
  model.emplace<LSTM>(config.embedding_dim, config.hidden_dim);
  for (std::size_t i = 1; i < config.lstm_layers; ++i) {
    model.emplace<LSTM>(config.hidden_dim, config.hidden_dim);
  }
  model.emplace<LastTimestep>();
  model.emplace<Linear>(config.hidden_dim, config.vocab_size);
  return model;
}

Model make_mlp(std::size_t inputs, std::size_t hidden, std::size_t classes) {
  Model model;
  model.emplace<Linear>(inputs, hidden);
  model.emplace<ReLU>();
  model.emplace<Linear>(hidden, classes);
  return model;
}

}  // namespace tanglefl::nn
