#include "nn/privacy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tanglefl::nn {

ParamVector dp_sanitize(std::span<const float> params,
                        std::span<const float> base, const DpConfig& config,
                        Rng& rng) {
  assert(params.size() == base.size());
  assert(config.clip_norm > 0.0);

  // Update norm.
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double d = static_cast<double>(params[i]) - base[i];
    norm_sq += d * d;
  }
  const double norm = std::sqrt(norm_sq);
  const double scale = norm > config.clip_norm ? config.clip_norm / norm : 1.0;
  const double sigma = config.noise_multiplier * config.clip_norm;

  ParamVector out(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double delta = (static_cast<double>(params[i]) - base[i]) * scale;
    const double noise = sigma > 0.0 ? rng.normal(0.0, sigma) : 0.0;
    out[i] = static_cast<float>(base[i] + delta + noise);
  }
  return out;
}

QuantizedParams quantize_params(std::span<const float> params) {
  QuantizedParams quantized;
  quantized.values.resize(params.size());
  float max_abs = 0.0f;
  for (const float v : params) {
    // A non-finite parameter would poison the scale (inf) or every output
    // (NaN); a payload containing one is malformed, not quantizable.
    if (!std::isfinite(v)) {
      throw std::invalid_argument(
          "quantize_params: non-finite parameter value");
    }
    max_abs = std::max(max_abs, std::abs(v));
  }
  quantized.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv_scale = 1.0f / quantized.scale;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float scaled = params[i] * inv_scale;
    const long rounded = std::lround(scaled);
    quantized.values[i] = static_cast<std::int8_t>(
        std::clamp(rounded, -127L, 127L));
  }
  return quantized;
}

ParamVector dequantize_params(const QuantizedParams& quantized) {
  ParamVector out(quantized.values.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(quantized.values[i]) * quantized.scale;
  }
  return out;
}

ParamVector quantize_roundtrip(std::span<const float> params) {
  return dequantize_params(quantize_params(params));
}

}  // namespace tanglefl::nn
