// The pre-optimization naive kernels, kept verbatim as ops::reference.
// They define the numerics the blocked kernels in ops.cpp are diffed
// against (tests/test_ops_kernels.cpp) and the baseline the micro
// benchmarks measure speedups over. Do not "optimize" this file.
#include <cassert>
#include <cstddef>

#include "nn/ops.hpp"

namespace tanglefl::nn::ops::reference {

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == m && c.dim(0) == k && c.dim(1) == n);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  assert(b.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
}

void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y) {
  assert(x.rank() == 4 && weights.rank() == 4 && y.rank() == 4);
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride, pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  assert(x.dim(1) == ic && weights.dim(0) == oc && weights.dim(1) == ic);
  assert(y.dim(0) == batch && y.dim(1) == oc && y.dim(2) == oh && y.dim(3) == ow);

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < oc; ++o) {
      const float bo = bias[o];
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          float acc = bo;
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t in_y =
                  static_cast<std::ptrdiff_t>(yy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t in_x =
                    static_cast<std::ptrdiff_t>(xx * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += x.at(b, c, static_cast<std::size_t>(in_y),
                            static_cast<std::size_t>(in_x)) *
                       weights.at(o, c, ky, kx);
              }
            }
          }
          y.at(b, o, yy, xx) = acc;
        }
      }
    }
  }
}

void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias) {
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride, pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  dx.zero();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < oc; ++o) {
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          const float g = dy.at(b, o, yy, xx);
          if (g == 0.0f) continue;
          dbias[o] += g;
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t in_y =
                  static_cast<std::ptrdiff_t>(yy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t in_x =
                    static_cast<std::ptrdiff_t>(xx * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w)) continue;
                const auto iy = static_cast<std::size_t>(in_y);
                const auto ix = static_cast<std::size_t>(in_x);
                dw.at(o, c, ky, kx) += g * x.at(b, c, iy, ix);
                dx.at(b, c, iy, ix) += g * weights.at(o, c, ky, kx);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace tanglefl::nn::ops::reference
