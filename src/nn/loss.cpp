#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

#include "nn/ops.hpp"

namespace tanglefl::nn {
namespace {

constexpr float kLogFloor = 1e-12f;

}  // namespace

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);

  LossResult result;
  ops::softmax_rows(logits, result.grad);  // grad currently holds softmax
  double total_loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const auto label = static_cast<std::size_t>(labels[b]);
    assert(label < classes);
    const float p = result.grad.at(b, label);
    total_loss -= std::log(p > kLogFloor ? p : kLogFloor);
  }
  // d(mean NLL)/d(logits) = (softmax - onehot) / batch.
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto label = static_cast<std::size_t>(labels[b]);
    for (std::size_t c = 0; c < classes; ++c) {
      float& g = result.grad.at(b, c);
      g = (g - (c == label ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.loss = static_cast<float>(total_loss / static_cast<double>(batch));
  return result;
}

float softmax_cross_entropy_loss(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t batch = logits.dim(0);
  Tensor probs;
  ops::softmax_rows(logits, probs);
  double total_loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float p = probs.at(b, static_cast<std::size_t>(labels[b]));
    total_loss -= std::log(p > kLogFloor ? p : kLogFloor);
  }
  return static_cast<float>(total_loss / static_cast<double>(batch));
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < labels.size(); ++b) {
    if (logits.argmax_row(b) == static_cast<std::size_t>(labels[b])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace tanglefl::nn
