// Flat parameter-vector utilities. In the learning tangle every transaction
// payload is one such vector (Section III: "each transaction consists of a
// full set of parameters"), so averaging and serialization operate here,
// independent of any model object.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/serialize.hpp"

namespace tanglefl::nn {

/// A full set of model parameters, flattened.
using ParamVector = std::vector<float>;

/// Unweighted mean of equally sized parameter vectors (the tangle averages
/// parent models with equal weight, Section III-C). Requires at least one
/// vector; all must have the same size.
ParamVector average_params(std::span<const ParamVector> params);

/// Unweighted mean via pointers, avoiding copies of large payloads.
ParamVector average_params(std::span<const ParamVector* const> params);

/// Weighted mean, weights normalized internally (FedAvg weights updates by
/// local sample count). Requires matching sizes and a positive weight sum.
ParamVector weighted_average_params(std::span<const ParamVector> params,
                                    std::span<const double> weights);

/// Euclidean distance between two parameter vectors (diagnostics/tests).
double param_distance(std::span<const float> a, std::span<const float> b);

/// Binary round-trip for ledger payloads and snapshots.
void serialize_params(std::span<const float> params, ByteWriter& writer);
ParamVector deserialize_params(ByteReader& reader);

}  // namespace tanglefl::nn
