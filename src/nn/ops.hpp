// Structured tensor operations (GEMM variants, 2-D convolution, pooling,
// softmax). Layers compose these; tests and micro-benchmarks exercise them
// directly. All functions are pure with respect to their inputs and write
// into caller-provided outputs where performance matters.
//
// Determinism contract: every kernel accumulates each output element in
// strictly ascending reduction-index order, and the optional ThreadPool
// argument partitions work over *output rows only*. Bits are therefore
// identical for any pool size (including none) and match the serial result.
// The pre-optimization naive loops live on in ops::reference for
// equivalence tests and baseline benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace tanglefl {
class ThreadPool;
}

namespace tanglefl::nn::ops {

/// Scratch arena for kernel workspaces (im2col buffers, fused-LSTM
/// pre-activations). A layer owns one Workspace and reuses it across
/// minibatches, so steady-state forward/backward passes allocate nothing.
/// Storage is chunked: growing the arena never moves previously returned
/// spans. Contents are unspecified after take(); reset() recycles all
/// spans without releasing memory.
class Workspace {
 public:
  /// Returns an uninitialized span of `count` floats, valid until reset().
  std::span<float> take(std::size_t count);

  /// Recycles every span handed out so far; capacity is retained.
  void reset() noexcept;

  /// Total floats currently reserved across all chunks.
  std::size_t capacity() const noexcept;

 private:
  struct Chunk {
    std::vector<float> data;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
};

/// Routes the dispatching entry points below (matmul family, conv2d) through
/// the naive ops::reference loops instead of the blocked kernels. Global and
/// sticky; intended for equivalence tests and baseline benchmarks only.
void set_reference_kernels(bool enabled) noexcept;
bool reference_kernels_enabled() noexcept;

enum class Accumulate : bool { kOverwrite = false, kAdd = true };

/// Raw strided GEMM kernels (row-major, explicit leading dimensions) — the
/// single blocked kernel family everything else is built on. `pool`
/// partitions output rows into fixed-size chunks; accumulation order per
/// output element is ascending in the reduction index regardless of
/// blocking or partitioning, so results are bit-identical for any pool.
///
/// C(m,n) = A(m,k) * B(k,n)           [kOverwrite], or C += ... [kAdd]
void gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, std::size_t m, std::size_t k,
          std::size_t n, Accumulate accumulate = Accumulate::kOverwrite,
          ThreadPool* pool = nullptr);

/// Shared-operand packing: gemm() copies B into tile panels on every call,
/// which is pure waste when the same B multiplies many A operands (k
/// candidate models forwarding one activation batch). These entry points
/// split the pack off so callers pay it once and reuse it; the packed
/// layout is the same depth-major panel format gemm() builds internally,
/// so gemm_prepacked_b() is bit-identical to gemm() on the original B.

/// Panel floats needed to prepack a (depth x n) B operand (tail included).
std::size_t gemm_packed_b_floats(std::size_t depth, std::size_t n);

/// Packs row-major B(depth, n) into the panel layout gemm_prepacked_b
/// consumes. Pure data movement — bit-transparent.
void gemm_pack_b(const float* b, std::size_t ldb, std::size_t depth,
                 std::size_t n, float* packed);

/// gemm() reading a B operand already packed by gemm_pack_b. Bit-identical
/// to gemm(a, lda, b, ldb, ...) on the B that was packed.
void gemm_prepacked_b(const float* a, std::size_t lda, const float* packed_b,
                      float* c, std::size_t ldc, std::size_t m, std::size_t k,
                      std::size_t n,
                      Accumulate accumulate = Accumulate::kOverwrite,
                      ThreadPool* pool = nullptr);

/// C(k,n) = A(m,k)^T * B(m,n); reduction over m (ascending).
void gemm_trans_a(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t m,
                  std::size_t k, std::size_t n,
                  Accumulate accumulate = Accumulate::kOverwrite,
                  ThreadPool* pool = nullptr);

/// C(m,n) = A(m,k) * B(n,k)^T; row-dot-row, reduction over k (ascending).
void gemm_trans_b(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t m,
                  std::size_t k, std::size_t n,
                  Accumulate accumulate = Accumulate::kOverwrite,
                  ThreadPool* pool = nullptr);

/// C = A(m,k) * B(k,n). C must be preallocated to (m,n); it is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c,
            ThreadPool* pool = nullptr);

/// C = A^T(m,k) * B(m,n) -> (k,n). Used for weight gradients.
void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c,
                    ThreadPool* pool = nullptr);

/// C = A(m,k) * B^T(n,k) -> (m,n). Used for input gradients.
void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c,
                    ThreadPool* pool = nullptr);

/// Adds bias(n) to every row of x(m,n) in place.
void add_row_bias(Tensor& x, const Tensor& bias);

/// Row-wise softmax of logits(m,n), written into out (may alias logits).
void softmax_rows(const Tensor& logits, Tensor& out);

struct Conv2DShape {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;   // square kernel
  std::size_t stride = 1;
  std::size_t padding = 0;  // symmetric zero padding

  /// Output spatial extent for an input extent `in`.
  std::size_t out_extent(std::size_t in) const noexcept {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// y(b, oc, oh, ow) = conv(x(b, ic, h, w), w(oc, ic, k, k)) + bias(oc).
/// y must be preallocated; it is overwritten. Implemented as per-sample
/// im2col (patch axis packed in (c, ky, kx) order) + GEMM. `workspace`
/// holds the column buffer; when null a per-thread arena is used. The
/// arena is reset() on entry, so callers must not hold spans across calls.
void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y,
                    Workspace* workspace = nullptr, ThreadPool* pool = nullptr);

/// Multi-model sharing: when k candidate models forward the same activation
/// batch, the im2col + panel pack of the input is identical for every model.
/// These entry points let a caller pack each sample's column operand once
/// (the same bytes conv2d_forward builds internally) and replay the per-model
/// bias-seeded GEMMs against it, bit-identical to conv2d_forward. Callers
/// must check reference_kernels_enabled() themselves — there is no naive
/// fallback for the prepacked form.

/// Floats needed per input sample for conv2d_pack_input's packed operand.
std::size_t conv2d_packed_input_floats(const Conv2DShape& shape, std::size_t h,
                                       std::size_t w);

/// Packs every sample of x(b, ic, h, w): sample i's panels land at
/// packed[i * conv2d_packed_input_floats(...)]. `workspace` holds the
/// intermediate column buffer (per-thread arena when null) and is reset().
void conv2d_pack_input(const Tensor& x, const Conv2DShape& shape,
                       std::span<float> packed, Workspace* workspace = nullptr);

/// conv2d_forward reading the operand packed by conv2d_pack_input; h/w are
/// the spatial dims of the original input. Output bits match conv2d_forward.
void conv2d_forward_prepacked(std::span<const float> packed_x,
                              std::size_t batch, std::size_t h, std::size_t w,
                              const Tensor& weights, const Tensor& bias,
                              const Conv2DShape& shape, Tensor& y,
                              ThreadPool* pool = nullptr);

/// Backward pass: given dy, accumulates into dw / dbias (must be
/// pre-zeroed by the caller or accumulated deliberately) and overwrites dx.
/// GEMM-based: dw via dy x col^T, dx via W^T x dy + col2im.
void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias, Workspace* workspace = nullptr,
                     ThreadPool* pool = nullptr);

/// 2x2-style max pooling with a square window and equal stride. `argmax`
/// records the flat input index of each output maximum for the backward
/// pass; it must have y's element count.
void maxpool2d_forward(const Tensor& x, std::size_t window, std::size_t stride,
                       Tensor& y, std::vector<std::size_t>& argmax);

/// Scatters dy back through the recorded argmax indices; dx is overwritten.
void maxpool2d_backward(const Tensor& dy, const std::vector<std::size_t>& argmax,
                        Tensor& dx);

/// The pre-optimization scalar loops, kept verbatim as the equivalence and
/// benchmark baseline. Never call these from layers directly — use the
/// dispatching entry points above with set_reference_kernels(true).
namespace reference {

void matmul(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c);
void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y);
void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias);

}  // namespace reference

}  // namespace tanglefl::nn::ops
