// Structured tensor operations (GEMM variants, 2-D convolution, pooling,
// softmax). Layers compose these; tests and micro-benchmarks exercise them
// directly. All functions are pure with respect to their inputs and write
// into caller-provided outputs where performance matters.
#pragma once

#include "nn/tensor.hpp"

namespace tanglefl::nn::ops {

/// C = A(m,k) * B(k,n). C must be preallocated to (m,n); it is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T(m,k) * B(m,n) -> (k,n). Used for weight gradients.
void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B^T(n,k) -> (m,n). Used for input gradients.
void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c);

/// Adds bias(n) to every row of x(m,n) in place.
void add_row_bias(Tensor& x, const Tensor& bias);

/// Row-wise softmax of logits(m,n), written into out (may alias logits).
void softmax_rows(const Tensor& logits, Tensor& out);

struct Conv2DShape {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;   // square kernel
  std::size_t stride = 1;
  std::size_t padding = 0;  // symmetric zero padding

  /// Output spatial extent for an input extent `in`.
  std::size_t out_extent(std::size_t in) const noexcept {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// y(b, oc, oh, ow) = conv(x(b, ic, h, w), w(oc, ic, k, k)) + bias(oc).
/// y must be preallocated; it is overwritten.
void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y);

/// Backward pass: given dy, accumulates into dw / dbias (must be
/// pre-zeroed by the caller or accumulated deliberately) and overwrites dx.
void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias);

/// 2x2-style max pooling with a square window and equal stride. `argmax`
/// records the flat input index of each output maximum for the backward
/// pass; it must have y's element count.
void maxpool2d_forward(const Tensor& x, std::size_t window, std::size_t stride,
                       Tensor& y, std::vector<std::size_t>& argmax);

/// Scatters dy back through the recorded argmax indices; dx is overwritten.
void maxpool2d_backward(const Tensor& dy, const std::vector<std::size_t>& argmax,
                        Tensor& dx);

}  // namespace tanglefl::nn::ops
