#include <cassert>
#include <cmath>
#include <cstring>

#include "nn/layer.hpp"
#include "nn/ops.hpp"

namespace tanglefl::nn {
namespace {

inline float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

/// Copies timestep `t` of a (batch, seq, dim) tensor into (batch, dim).
/// Only used by the ops::reference LSTM path; the fused path reads strided
/// views instead.
Tensor slice_timestep(const Tensor& x, std::size_t t) {
  const std::size_t batch = x.dim(0), dim = x.dim(2);
  Tensor out({batch, dim});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t d = 0; d < dim; ++d) out.at(b, d) = x.at(b, t, d);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t vocab_size, std::size_t dim)
    : vocab_size_(vocab_size),
      dim_(dim),
      weight_({vocab_size, dim}),
      dweight_({vocab_size, dim}) {}

void Embedding::init(Rng& rng) {
  for (auto& w : weight_.values()) {
    w = static_cast<float>(rng.normal()) * 0.1f;
  }
}

Tensor Embedding::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 2);
  cached_input_ = input;
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  Tensor output({batch, seq, dim_});
  const float* ids = input.data();
  const float* pw = weight_.data();
  float* out = output.data();
  for (std::size_t i = 0; i < batch * seq; ++i) {
    const auto token = static_cast<std::size_t>(ids[i]);
    assert(token < vocab_size_);
    std::memcpy(out + i * dim_, pw + token * dim_, dim_ * sizeof(float));
  }
  return output;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
  const float* ids = cached_input_.data();
  const float* grad = grad_output.data();
  float* pdw = dweight_.data();
  for (std::size_t i = 0; i < batch * seq; ++i) {
    const auto token = static_cast<std::size_t>(ids[i]);
    float* dst = pdw + token * dim_;
    const float* src = grad + i * dim_;
    for (std::size_t d = 0; d < dim_; ++d) dst[d] += src[d];
  }
  // Token ids are not differentiable; propagate zeros of the input shape.
  return Tensor(cached_input_.shape());
}

std::unique_ptr<Layer> Embedding::clone() const {
  auto copy = std::make_unique<Embedding>(vocab_size_, dim_);
  copy->weight_ = weight_;
  return copy;
}

// ------------------------------------------------------------------ LSTM

LSTM::LSTM(std::size_t input_dim, std::size_t hidden_dim)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_input_({input_dim, 4 * hidden_dim}),
      w_hidden_({hidden_dim, 4 * hidden_dim}),
      bias_({4 * hidden_dim}),
      dw_input_({input_dim, 4 * hidden_dim}),
      dw_hidden_({hidden_dim, 4 * hidden_dim}),
      dbias_({4 * hidden_dim}) {}

void LSTM::init(Rng& rng) {
  const float scale_x = std::sqrt(1.0f / static_cast<float>(input_dim_));
  const float scale_h = std::sqrt(1.0f / static_cast<float>(hidden_dim_));
  for (auto& w : w_input_.values()) {
    w = static_cast<float>(rng.normal()) * scale_x;
  }
  for (auto& w : w_hidden_.values()) {
    w = static_cast<float>(rng.normal()) * scale_h;
  }
  bias_.zero();
  // Forget-gate bias of 1 is the standard trick for stable early training.
  for (std::size_t h = 0; h < hidden_dim_; ++h) {
    bias_[hidden_dim_ + h] = 1.0f;
  }
}

void LSTM::ensure_cache_shapes(std::size_t batch, std::size_t seq) {
  const std::size_t h4 = 4 * hidden_dim_;
  if (gates_.rank() != 3 || gates_.dim(0) != batch || gates_.dim(1) != seq ||
      gates_.dim(2) != h4) {
    gates_ = Tensor({batch, seq, h4});
    hidden_ = Tensor({batch, seq, hidden_dim_});
    cell_ = Tensor({batch, seq, hidden_dim_});
  }
}

Tensor LSTM::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 3 && input.dim(2) == input_dim_);
  cached_input_ = input;
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  ensure_cache_shapes(batch, seq);
  if (ops::reference_kernels_enabled()) return forward_reference(input);

  const std::size_t h4 = 4 * hidden_dim_;
  const std::size_t rows = batch * seq;
  workspace_.reset();
  const std::span<float> pre_x = workspace_.take(rows * h4);
  const std::span<float> pre_h = workspace_.take(batch * h4);

  // Step fusion part 1: the input projection has no timestep recurrence, so
  // hoist it out of the loop as one (batch*seq, input_dim) x (input_dim, 4H)
  // GEMM over the whole sequence.
  ops::gemm(input.data(), input_dim_, w_input_.data(), h4, pre_x.data(), h4,
            rows, input_dim_, h4, ops::Accumulate::kOverwrite, kernel_pool_);

  const float* pb = bias_.data();
  for (std::size_t t = 0; t < seq; ++t) {
    if (t == 0) {
      std::fill(pre_h.begin(), pre_h.end(), 0.0f);
    } else {
      // h_{t-1} is a strided view into the hidden cache (row stride
      // seq*hidden), so no per-timestep slice copy is needed.
      ops::gemm(hidden_.data() + (t - 1) * hidden_dim_, seq * hidden_dim_,
                w_hidden_.data(), h4, pre_h.data(), h4, batch, hidden_dim_,
                h4, ops::Accumulate::kOverwrite, kernel_pool_);
    }
    // Step fusion part 2: gate nonlinearities and the cell update in one
    // pass per (b, t), writing directly into the sequence caches.
    for (std::size_t b = 0; b < batch; ++b) {
      const float* px = pre_x.data() + (b * seq + t) * h4;
      const float* ph = pre_h.data() + b * h4;
      float* g = gates_.data() + (b * seq + t) * h4;
      for (std::size_t j = 0; j < h4; ++j) {
        const float pre = px[j] + ph[j] + pb[j];
        // Gate layout: [input | forget | cell | output].
        g[j] = (j / hidden_dim_ == 2) ? std::tanh(pre) : sigmoid(pre);
      }
      const float* c_prev =
          t == 0 ? nullptr : cell_.data() + (b * seq + t - 1) * hidden_dim_;
      float* c_t = cell_.data() + (b * seq + t) * hidden_dim_;
      float* h_t = hidden_.data() + (b * seq + t) * hidden_dim_;
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = g[h];
        const float f_g = g[hidden_dim_ + h];
        const float c_g = g[2 * hidden_dim_ + h];
        const float o_g = g[3 * hidden_dim_ + h];
        const float c_new =
            f_g * (c_prev != nullptr ? c_prev[h] : 0.0f) + i_g * c_g;
        c_t[h] = c_new;
        h_t[h] = o_g * std::tanh(c_new);
      }
    }
  }
  // The hidden cache is the output, in the output's exact layout.
  return hidden_;
}

Tensor LSTM::backward(const Tensor& grad_output) {
  if (ops::reference_kernels_enabled()) return backward_reference(grad_output);
  const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_dim_;
  assert(grad_output.rank() == 3 && grad_output.dim(1) == seq &&
         grad_output.dim(2) == hidden_dim_);
  const std::size_t rows = batch * seq;

  workspace_.reset();  // forward's spans are dead by now
  const std::span<float> dgates = workspace_.take(rows * h4);
  std::span<float> dh_next = workspace_.take(batch * hidden_dim_);
  std::span<float> dh_prev = workspace_.take(batch * hidden_dim_);
  const std::span<float> dc_next = workspace_.take(batch * hidden_dim_);
  std::fill(dh_next.begin(), dh_next.end(), 0.0f);
  std::fill(dc_next.begin(), dc_next.end(), 0.0f);

  float* pdb = dbias_.data();
  for (std::size_t tt = seq; tt > 0; --tt) {
    const std::size_t t = tt - 1;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* g = gates_.data() + (b * seq + t) * h4;
      const float* c_t = cell_.data() + (b * seq + t) * hidden_dim_;
      const float* c_prev =
          t == 0 ? nullptr : cell_.data() + (b * seq + t - 1) * hidden_dim_;
      const float* go = grad_output.data() + (b * seq + t) * hidden_dim_;
      float* dg = dgates.data() + (b * seq + t) * h4;
      float* dhn = dh_next.data() + b * hidden_dim_;
      float* dcn = dc_next.data() + b * hidden_dim_;
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = g[h];
        const float f_g = g[hidden_dim_ + h];
        const float c_g = g[2 * hidden_dim_ + h];
        const float o_g = g[3 * hidden_dim_ + h];
        const float tanh_c = std::tanh(c_t[h]);

        const float dh = go[h] + dhn[h];
        const float dc = dcn[h] + dh * o_g * (1.0f - tanh_c * tanh_c);

        // Derivatives through the gate nonlinearities.
        dg[h] = dc * c_g * i_g * (1.0f - i_g);
        dg[hidden_dim_ + h] =
            dc * (c_prev != nullptr ? c_prev[h] : 0.0f) * f_g * (1.0f - f_g);
        dg[2 * hidden_dim_ + h] = dc * i_g * (1.0f - c_g * c_g);
        dg[3 * hidden_dim_ + h] = dh * tanh_c * o_g * (1.0f - o_g);

        dcn[h] = dc * f_g;
      }
    }
    for (std::size_t b = 0; b < batch; ++b) {
      const float* dg = dgates.data() + (b * seq + t) * h4;
      for (std::size_t j = 0; j < h4; ++j) pdb[j] += dg[j];
    }
    // dh_{t-1} = dgates_t x w_hidden_^T over strided timestep views.
    ops::gemm_trans_b(dgates.data() + t * h4, seq * h4, w_hidden_.data(), h4,
                      dh_prev.data(), hidden_dim_, batch, h4, hidden_dim_,
                      ops::Accumulate::kOverwrite, kernel_pool_);
    std::swap(dh_next, dh_prev);
  }

  // Step fusion for the weight gradients: instead of one small GEMM pair
  // per timestep, accumulate over the whole sequence at once.
  ops::gemm_trans_a(cached_input_.data(), input_dim_, dgates.data(), h4,
                    dw_input_.data(), h4, rows, input_dim_, h4,
                    ops::Accumulate::kAdd, kernel_pool_);
  // h_{t-1} matrix: per sample, a zero row then the hidden rows shifted by
  // one timestep (a single contiguous copy per sample).
  const std::span<float> h_prev_all = workspace_.take(rows * hidden_dim_);
  for (std::size_t b = 0; b < batch; ++b) {
    float* dst = h_prev_all.data() + b * seq * hidden_dim_;
    std::fill_n(dst, hidden_dim_, 0.0f);
    if (seq > 1) {
      std::memcpy(dst + hidden_dim_, hidden_.data() + b * seq * hidden_dim_,
                  (seq - 1) * hidden_dim_ * sizeof(float));
    }
  }
  ops::gemm_trans_a(h_prev_all.data(), hidden_dim_, dgates.data(), h4,
                    dw_hidden_.data(), h4, rows, hidden_dim_, h4,
                    ops::Accumulate::kAdd, kernel_pool_);
  Tensor dx(cached_input_.shape());
  ops::gemm_trans_b(dgates.data(), h4, w_input_.data(), h4, dx.data(),
                    input_dim_, rows, h4, input_dim_,
                    ops::Accumulate::kOverwrite, kernel_pool_);
  return dx;
}

// Legacy per-timestep implementation, selected by set_reference_kernels():
// the pre-fusion numerics the fused path is benchmarked and equivalence-
// tested against. Shares the sequence-shaped caches with the fused path.

Tensor LSTM::forward_reference(const Tensor& input) {
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  const std::size_t h4 = 4 * hidden_dim_;

  Tensor h_prev({batch, hidden_dim_});
  Tensor c_prev({batch, hidden_dim_});
  Tensor pre_x({batch, h4});
  Tensor pre_h({batch, h4});
  Tensor output({batch, seq, hidden_dim_});

  for (std::size_t t = 0; t < seq; ++t) {
    const Tensor x_t = slice_timestep(input, t);
    ops::matmul(x_t, w_input_, pre_x);
    ops::matmul(h_prev, w_hidden_, pre_h);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < h4; ++j) {
        const float pre = pre_x.at(b, j) + pre_h.at(b, j) + bias_[j];
        // Gate layout: [input | forget | cell | output].
        gates_.at(b, t, j) =
            (j / hidden_dim_ == 2) ? std::tanh(pre) : sigmoid(pre);
      }
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = gates_.at(b, t, h);
        const float f_g = gates_.at(b, t, hidden_dim_ + h);
        const float c_g = gates_.at(b, t, 2 * hidden_dim_ + h);
        const float o_g = gates_.at(b, t, 3 * hidden_dim_ + h);
        const float c_new = f_g * c_prev.at(b, h) + i_g * c_g;
        cell_.at(b, t, h) = c_new;
        const float h_new = o_g * std::tanh(c_new);
        hidden_.at(b, t, h) = h_new;
        output.at(b, t, h) = h_new;
      }
    }
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        h_prev.at(b, h) = hidden_.at(b, t, h);
        c_prev.at(b, h) = cell_.at(b, t, h);
      }
    }
  }
  return output;
}

Tensor LSTM::backward_reference(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_dim_;
  assert(grad_output.rank() == 3 && grad_output.dim(1) == seq &&
         grad_output.dim(2) == hidden_dim_);

  Tensor dx(cached_input_.shape());
  Tensor dh_next({batch, hidden_dim_});
  Tensor dc_next({batch, hidden_dim_});
  Tensor dgates({batch, h4});
  Tensor dx_t({batch, input_dim_});
  Tensor dh_prev({batch, hidden_dim_});
  Tensor dwx({input_dim_, h4});
  Tensor dwh({hidden_dim_, h4});
  Tensor h_prev({batch, hidden_dim_});

  for (std::size_t tt = seq; tt > 0; --tt) {
    const std::size_t t = tt - 1;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = gates_.at(b, t, h);
        const float f_g = gates_.at(b, t, hidden_dim_ + h);
        const float c_g = gates_.at(b, t, 2 * hidden_dim_ + h);
        const float o_g = gates_.at(b, t, 3 * hidden_dim_ + h);
        const float tanh_c = std::tanh(cell_.at(b, t, h));
        const float c_prev_v = t == 0 ? 0.0f : cell_.at(b, t - 1, h);

        const float dh = grad_output.at(b, t, h) + dh_next.at(b, h);
        const float dc =
            dc_next.at(b, h) + dh * o_g * (1.0f - tanh_c * tanh_c);

        // Derivatives through the gate nonlinearities.
        dgates.at(b, h) = dc * c_g * i_g * (1.0f - i_g);
        dgates.at(b, hidden_dim_ + h) =
            dc * c_prev_v * f_g * (1.0f - f_g);
        dgates.at(b, 2 * hidden_dim_ + h) = dc * i_g * (1.0f - c_g * c_g);
        dgates.at(b, 3 * hidden_dim_ + h) =
            dh * tanh_c * o_g * (1.0f - o_g);

        dc_next.at(b, h) = dc * f_g;
        h_prev.at(b, h) = t == 0 ? 0.0f : hidden_.at(b, t - 1, h);
      }
    }

    const Tensor x_t = slice_timestep(cached_input_, t);
    ops::matmul_trans_a(x_t, dgates, dwx);
    dw_input_.add(dwx);
    ops::matmul_trans_a(h_prev, dgates, dwh);
    dw_hidden_.add(dwh);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < h4; ++j) dbias_[j] += dgates.at(b, j);
    }
    ops::matmul_trans_b(dgates, w_input_, dx_t);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t d = 0; d < input_dim_; ++d) {
        dx.at(b, t, d) = dx_t.at(b, d);
      }
    }
    ops::matmul_trans_b(dgates, w_hidden_, dh_prev);
    dh_next = dh_prev;
  }
  return dx;
}

std::unique_ptr<Layer> LSTM::clone() const {
  auto copy = std::make_unique<LSTM>(input_dim_, hidden_dim_);
  copy->w_input_ = w_input_;
  copy->w_hidden_ = w_hidden_;
  copy->bias_ = bias_;
  return copy;
}

}  // namespace tanglefl::nn
