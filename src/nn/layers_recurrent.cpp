#include <cassert>
#include <cmath>

#include "nn/layer.hpp"
#include "nn/ops.hpp"

namespace tanglefl::nn {
namespace {

inline float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

/// Copies timestep `t` of a (batch, seq, dim) tensor into (batch, dim).
Tensor slice_timestep(const Tensor& x, std::size_t t) {
  const std::size_t batch = x.dim(0), dim = x.dim(2);
  Tensor out({batch, dim});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t d = 0; d < dim; ++d) out.at(b, d) = x.at(b, t, d);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t vocab_size, std::size_t dim)
    : vocab_size_(vocab_size),
      dim_(dim),
      weight_({vocab_size, dim}),
      dweight_({vocab_size, dim}) {}

void Embedding::init(Rng& rng) {
  for (auto& w : weight_.values()) {
    w = static_cast<float>(rng.normal()) * 0.1f;
  }
}

Tensor Embedding::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 2);
  cached_input_ = input;
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  Tensor output({batch, seq, dim_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const auto token = static_cast<std::size_t>(input.at(b, t));
      assert(token < vocab_size_);
      for (std::size_t d = 0; d < dim_; ++d) {
        output.at(b, t, d) = weight_.at(token, d);
      }
    }
  }
  return output;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const auto token = static_cast<std::size_t>(cached_input_.at(b, t));
      for (std::size_t d = 0; d < dim_; ++d) {
        dweight_.at(token, d) += grad_output.at(b, t, d);
      }
    }
  }
  // Token ids are not differentiable; propagate zeros of the input shape.
  return Tensor(cached_input_.shape());
}

std::unique_ptr<Layer> Embedding::clone() const {
  auto copy = std::make_unique<Embedding>(vocab_size_, dim_);
  copy->weight_ = weight_;
  return copy;
}

// ------------------------------------------------------------------ LSTM

LSTM::LSTM(std::size_t input_dim, std::size_t hidden_dim)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_input_({input_dim, 4 * hidden_dim}),
      w_hidden_({hidden_dim, 4 * hidden_dim}),
      bias_({4 * hidden_dim}),
      dw_input_({input_dim, 4 * hidden_dim}),
      dw_hidden_({hidden_dim, 4 * hidden_dim}),
      dbias_({4 * hidden_dim}) {}

void LSTM::init(Rng& rng) {
  const float scale_x = std::sqrt(1.0f / static_cast<float>(input_dim_));
  const float scale_h = std::sqrt(1.0f / static_cast<float>(hidden_dim_));
  for (auto& w : w_input_.values()) {
    w = static_cast<float>(rng.normal()) * scale_x;
  }
  for (auto& w : w_hidden_.values()) {
    w = static_cast<float>(rng.normal()) * scale_h;
  }
  bias_.zero();
  // Forget-gate bias of 1 is the standard trick for stable early training.
  for (std::size_t h = 0; h < hidden_dim_; ++h) {
    bias_[hidden_dim_ + h] = 1.0f;
  }
}

Tensor LSTM::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 3 && input.dim(2) == input_dim_);
  cached_input_ = input;
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  const std::size_t h4 = 4 * hidden_dim_;

  gates_.assign(seq, Tensor({batch, h4}));
  hidden_.assign(seq, Tensor({batch, hidden_dim_}));
  cell_.assign(seq, Tensor({batch, hidden_dim_}));

  Tensor h_prev({batch, hidden_dim_});
  Tensor c_prev({batch, hidden_dim_});
  Tensor pre_x({batch, h4});
  Tensor pre_h({batch, h4});
  Tensor output({batch, seq, hidden_dim_});

  for (std::size_t t = 0; t < seq; ++t) {
    const Tensor x_t = slice_timestep(input, t);
    ops::matmul(x_t, w_input_, pre_x);
    ops::matmul(h_prev, w_hidden_, pre_h);
    Tensor& g = gates_[t];
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < h4; ++j) {
        const float pre = pre_x.at(b, j) + pre_h.at(b, j) + bias_[j];
        // Gate layout: [input | forget | cell | output].
        g.at(b, j) =
            (j / hidden_dim_ == 2) ? std::tanh(pre) : sigmoid(pre);
      }
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = g.at(b, h);
        const float f_g = g.at(b, hidden_dim_ + h);
        const float c_g = g.at(b, 2 * hidden_dim_ + h);
        const float o_g = g.at(b, 3 * hidden_dim_ + h);
        const float c_new = f_g * c_prev.at(b, h) + i_g * c_g;
        cell_[t].at(b, h) = c_new;
        const float h_new = o_g * std::tanh(c_new);
        hidden_[t].at(b, h) = h_new;
        output.at(b, t, h) = h_new;
      }
    }
    h_prev = hidden_[t];
    c_prev = cell_[t];
  }
  return output;
}

Tensor LSTM::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_dim_;
  assert(grad_output.rank() == 3 && grad_output.dim(1) == seq &&
         grad_output.dim(2) == hidden_dim_);

  Tensor dx(cached_input_.shape());
  Tensor dh_next({batch, hidden_dim_});
  Tensor dc_next({batch, hidden_dim_});
  Tensor dgates({batch, h4});
  Tensor dx_t({batch, input_dim_});
  Tensor dh_prev({batch, hidden_dim_});
  Tensor dwx({input_dim_, h4});
  Tensor dwh({hidden_dim_, h4});
  const Tensor zero_state({batch, hidden_dim_});

  for (std::size_t tt = seq; tt > 0; --tt) {
    const std::size_t t = tt - 1;
    const Tensor& g = gates_[t];
    const Tensor& c_t = cell_[t];
    const Tensor& c_prev = (t == 0) ? zero_state : cell_[t - 1];
    const Tensor& h_prev = (t == 0) ? zero_state : hidden_[t - 1];

    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        const float i_g = g.at(b, h);
        const float f_g = g.at(b, hidden_dim_ + h);
        const float c_g = g.at(b, 2 * hidden_dim_ + h);
        const float o_g = g.at(b, 3 * hidden_dim_ + h);
        const float tanh_c = std::tanh(c_t.at(b, h));

        const float dh = grad_output.at(b, t, h) + dh_next.at(b, h);
        const float dc =
            dc_next.at(b, h) + dh * o_g * (1.0f - tanh_c * tanh_c);

        // Derivatives through the gate nonlinearities.
        dgates.at(b, h) = dc * c_g * i_g * (1.0f - i_g);
        dgates.at(b, hidden_dim_ + h) =
            dc * c_prev.at(b, h) * f_g * (1.0f - f_g);
        dgates.at(b, 2 * hidden_dim_ + h) = dc * i_g * (1.0f - c_g * c_g);
        dgates.at(b, 3 * hidden_dim_ + h) =
            dh * tanh_c * o_g * (1.0f - o_g);

        dc_next.at(b, h) = dc * f_g;
      }
    }

    const Tensor x_t = slice_timestep(cached_input_, t);
    ops::matmul_trans_a(x_t, dgates, dwx);
    dw_input_.add(dwx);
    ops::matmul_trans_a(h_prev, dgates, dwh);
    dw_hidden_.add(dwh);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < h4; ++j) dbias_[j] += dgates.at(b, j);
    }
    ops::matmul_trans_b(dgates, w_input_, dx_t);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t d = 0; d < input_dim_; ++d) {
        dx.at(b, t, d) = dx_t.at(b, d);
      }
    }
    ops::matmul_trans_b(dgates, w_hidden_, dh_prev);
    dh_next = dh_prev;
  }
  return dx;
}

std::unique_ptr<Layer> LSTM::clone() const {
  auto copy = std::make_unique<LSTM>(input_dim_, hidden_dim_);
  copy->w_input_ = w_input_;
  copy->w_hidden_ = w_hidden_;
  copy->bias_ = bias_;
  return copy;
}

}  // namespace tanglefl::nn
