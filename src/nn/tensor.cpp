#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

namespace tanglefl::nn {

std::size_t Tensor::element_count(std::span<const std::size_t> shape) noexcept {
  std::size_t count = 1;
  for (const std::size_t d : shape) count *= d;
  return count;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  assert(data_.size() == element_count(shape_));
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  assert(element_count(new_shape) == data_.size());
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor copy = *this;
  copy.reshape(std::move(new_shape));
  return copy;
}

void Tensor::fill(float value) noexcept {
  for (auto& v : data_) v = value;
}

void Tensor::add(const Tensor& other) {
  assert(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  assert(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::scale(float factor) noexcept {
  for (auto& v : data_) v *= factor;
}

float Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

std::size_t Tensor::argmax_row(std::size_t row) const {
  assert(rank() == 2 && row < shape_[0]);
  const std::size_t cols = shape_[1];
  const float* begin = data_.data() + row * cols;
  std::size_t best = 0;
  for (std::size_t c = 1; c < cols; ++c) {
    if (begin[c] > begin[best]) best = c;
  }
  return best;
}

float Tensor::l2_norm() const noexcept {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool Tensor::equals(const Tensor& other) const noexcept {
  return shape_ == other.shape_ && data_ == other.data_;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace tanglefl::nn
