#include "nn/optimizer.hpp"

#include <cmath>

namespace tanglefl::nn {

void SgdOptimizer::step(Model& model) {
  const auto params = model.parameter_tensors();
  const auto grads = model.gradient_tensors();

  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0) {
    double norm_sq = 0.0;
    for (const Tensor* g : grads) {
      for (const float v : g->values()) {
        norm_sq += static_cast<double>(v) * v;
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip) {
      clip_scale = static_cast<float>(config_.grad_clip / norm);
    }
  }

  if (config_.momentum > 0.0 && velocity_.size() != params.size()) {
    velocity_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i].assign(params[i]->size(), 0.0f);
    }
  }

  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->values();
    const auto g = grads[i]->values();
    if (mu > 0.0f) {
      auto& vel = velocity_[i];
      for (std::size_t j = 0; j < p.size(); ++j) {
        const float grad = g[j] * clip_scale + wd * p[j];
        vel[j] = mu * vel[j] + grad;
        p[j] -= lr * vel[j];
      }
    } else {
      for (std::size_t j = 0; j < p.size(); ++j) {
        const float grad = g[j] * clip_scale + wd * p[j];
        p[j] -= lr * grad;
      }
    }
  }
}

void AdamOptimizer::step(Model& model) {
  const auto params = model.parameter_tensors();
  const auto grads = model.gradient_tensors();

  if (first_moment_.size() != params.size()) {
    first_moment_.resize(params.size());
    second_moment_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      first_moment_[i].assign(params[i]->size(), 0.0f);
      second_moment_[i].assign(params[i]->size(), 0.0f);
    }
  }

  ++steps_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(steps_));
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const auto eps = static_cast<float>(config_.epsilon);
  const auto wd = static_cast<float>(config_.weight_decay);

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->values();
    const auto g = grads[i]->values();
    auto& m = first_moment_[i];
    auto& v = second_moment_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const float grad = g[j] + wd * p[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      const auto m_hat = static_cast<float>(m[j] / bias1);
      const auto v_hat = static_cast<float>(v[j] / bias2);
      p[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

}  // namespace tanglefl::nn
