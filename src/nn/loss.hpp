// Classification loss and metrics. Softmax is fused with cross-entropy so
// the backward pass is the numerically stable (softmax - onehot) / batch.
#pragma once

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace tanglefl::nn {

struct LossResult {
  float loss = 0.0f;   // mean negative log-likelihood over the batch
  Tensor grad;         // d(loss)/d(logits), same shape as logits
};

/// Mean softmax cross-entropy of logits(batch, classes) against integer
/// labels. Labels must be in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Loss only (no gradient allocation); used on validation paths.
float softmax_cross_entropy_loss(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const std::int32_t> labels);

}  // namespace tanglefl::nn
