#include "nn/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tanglefl::nn::ops {

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == m && c.dim(0) == k && c.dim(1) == n);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  assert(b.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  assert(x.rank() == 2 && bias.rank() == 1 && bias.dim(0) == x.dim(1));
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  float* px = x.data();
  const float* pb = bias.data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) px[r * cols + c] += pb[c];
  }
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  assert(logits.rank() == 2);
  if (&out != &logits) out = logits;
  const std::size_t rows = out.dim(0), cols = out.dim(1);
  float* p = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = p + r * cols;
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < cols; ++c) max_v = std::max(max_v, row[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      total += row[c];
    }
    const float inv = 1.0f / total;
    for (std::size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y) {
  assert(x.rank() == 4 && weights.rank() == 4 && y.rank() == 4);
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride, pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  assert(x.dim(1) == ic && weights.dim(0) == oc && weights.dim(1) == ic);
  assert(y.dim(0) == batch && y.dim(1) == oc && y.dim(2) == oh && y.dim(3) == ow);

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < oc; ++o) {
      const float bo = bias[o];
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          float acc = bo;
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t in_y =
                  static_cast<std::ptrdiff_t>(yy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t in_x =
                    static_cast<std::ptrdiff_t>(xx * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += x.at(b, c, static_cast<std::size_t>(in_y),
                            static_cast<std::size_t>(in_x)) *
                       weights.at(o, c, ky, kx);
              }
            }
          }
          y.at(b, o, yy, xx) = acc;
        }
      }
    }
  }
}

void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias) {
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride, pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  dx.zero();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < oc; ++o) {
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          const float g = dy.at(b, o, yy, xx);
          if (g == 0.0f) continue;
          dbias[o] += g;
          for (std::size_t c = 0; c < ic; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t in_y =
                  static_cast<std::ptrdiff_t>(yy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t in_x =
                    static_cast<std::ptrdiff_t>(xx * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w)) continue;
                const auto iy = static_cast<std::size_t>(in_y);
                const auto ix = static_cast<std::size_t>(in_x);
                dw.at(o, c, ky, kx) += g * x.at(b, c, iy, ix);
                dx.at(b, c, iy, ix) += g * weights.at(o, c, ky, kx);
              }
            }
          }
        }
      }
    }
  }
}

void maxpool2d_forward(const Tensor& x, std::size_t window, std::size_t stride,
                       Tensor& y, std::vector<std::size_t>& argmax) {
  assert(x.rank() == 4 && y.rank() == 4);
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t oh = (h - window) / stride + 1;
  const std::size_t ow = (w - window) / stride + 1;
  assert(y.dim(0) == batch && y.dim(1) == ch && y.dim(2) == oh && y.dim(3) == ow);
  argmax.assign(y.size(), 0);

  std::size_t out_index = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t wy = 0; wy < window; ++wy) {
            for (std::size_t wx = 0; wx < window; ++wx) {
              const std::size_t iy = yy * stride + wy;
              const std::size_t ix = xx * stride + wx;
              const std::size_t flat = ((b * ch + c) * h + iy) * w + ix;
              const float v = x[flat];
              if (v > best) {
                best = v;
                best_index = flat;
              }
            }
          }
          y[out_index] = best;
          argmax[out_index] = best_index;
          ++out_index;
        }
      }
    }
  }
}

void maxpool2d_backward(const Tensor& dy, const std::vector<std::size_t>& argmax,
                        Tensor& dx) {
  assert(argmax.size() == dy.size());
  dx.zero();
  for (std::size_t i = 0; i < dy.size(); ++i) dx[argmax[i]] += dy[i];
}

}  // namespace tanglefl::nn::ops
