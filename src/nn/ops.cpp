// Blocked, register-tiled kernel family behind the ops:: API.
//
// Every kernel accumulates each output element in strictly ascending
// reduction-index order: a register tile carries the full reduction for its
// output block, so no k-splitting ever re-associates floating-point adds,
// and the optional ThreadPool only partitions *output rows* into fixed-size
// chunks. Results are therefore bit-identical for any pool size (including
// none) and identical to a serial run. See DESIGN.md "Compute kernels".
//
// Allocation policy (enforced by tools/lint.py rule ops-allocation): no
// Tensor construction and no raw new/malloc in this file — scratch memory
// comes from a caller-provided or per-thread ops::Workspace so steady-state
// training steps do not allocate.
#include "nn/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::nn::ops {
namespace {

// ------------------------------------------------------------ observability

obs::Counter& gemm_flop_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("nn.gemm.flops");
  return counter;
}

obs::Histogram& gemm_time_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "nn.gemm.us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Counter& conv_flop_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("nn.conv.flops");
  return counter;
}

obs::Histogram& conv_time_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "nn.conv.us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

// Records elapsed microseconds into `hist` on destruction, but only when
// timing collection is on: a TraceScope here would flood trace sinks with
// one span per GEMM, so the hot path reads the clock directly instead.
class KernelTimer {
 public:
  explicit KernelTimer(obs::Histogram& hist) noexcept
      : hist_(obs::timing_enabled() ? &hist : nullptr),
        start_(hist_ != nullptr ? Stopwatch::now_micros() : 0) {}
  ~KernelTimer() {
    if (hist_ != nullptr) {
      hist_->record(static_cast<double>(Stopwatch::now_micros() - start_));
    }
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  obs::Histogram* hist_;
  std::uint64_t start_;
};

// Fallback arena for callers that pass no Workspace (one-off tests, direct
// ops usage). Thread-local so concurrent node steps never share scratch.
Workspace& thread_workspace() {
  thread_local Workspace workspace;
  return workspace;
}

// Separate arena for GEMM operand packing. It must not be the conv fallback
// arena above: conv2d builds its im2col buffer there and then calls gemm,
// which resets its pack arena per call — sharing one arena would clobber
// the im2col buffer mid-convolution.
Workspace& pack_workspace() {
  thread_local Workspace workspace;
  return workspace;
}

std::atomic<bool> g_reference_kernels{false};

// ------------------------------------------------------- register microtiles
//
// The register tile is kRowTile output rows x kColTile output columns; the
// full reduction for the tile is carried in the `acc` array (which the
// compiler keeps in vector registers for the constant-bound variants), so
// each output element is one ascending-index chain — the same order as the
// naive reference loops, just batched for locality and ILP.

// 4x8 keeps the accumulator tile (8 XMM registers) plus the B strip and
// the broadcast lane inside the 16 XMM registers of baseline x86-64 SSE2;
// a wider tile spills to the stack every iteration on builds without
// TANGLEFL_NATIVE_ARCH.
constexpr std::size_t kRowTile = 4;
constexpr std::size_t kColTile = 8;

// The hot tile uses GCC/Clang vector extensions rather than relying on the
// auto-vectorizer: depending on inlining context and which strides constant-
// propagate, GCC's SLP pass sometimes re-vectorizes the accumulator across
// the depth axis (a horizontal-shuffle storm ~5x slower than the broadcast
// form). Explicit lane vectors pin the good shape. Every vector op below is
// element-wise, so each acc lane remains a single ascending-depth scalar
// chain — bit-identical to the scalar fallback (and -ffp-contract=off keeps
// fused multiply-adds out of both).
#if defined(__GNUC__) || defined(__clang__)
#define TANGLEFL_SIMD_TILE 1
using v4f [[gnu::may_alias]] = float __attribute__((vector_size(16), aligned(4)));
static_assert(kColTile % 4 == 0);
#endif

// A is addressed as a[row * a_row_stride + p * a_depth_stride]: plain GEMM
// passes (lda, 1); trans-A passes (1, lda) so the same tile serves both.
//
// noinline is load-bearing for throughput, not a style choice: when the
// tile body is inlined into the surrounding blocked loops, GCC's SLP
// vectorizer re-associates the accumulator across the depth axis and emits
// a horizontal-shuffle storm that runs ~5x slower than the broadcast form
// it produces when the function is compiled in isolation.
template <bool kAccumulate>
[[gnu::noinline]] void tile_full(const float* a, std::size_t a_row_stride,
                      std::size_t a_depth_stride, const float* b,
                      std::size_t ldb, float* c, std::size_t ldc,
                      std::size_t depth) {
#if defined(TANGLEFL_SIMD_TILE)
  constexpr std::size_t kLanes = kColTile / 4;
  v4f acc[kRowTile][kLanes] = {};
  for (std::size_t p = 0; p < depth; ++p) {
    const float* brow = b + p * ldb;
    v4f bv[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      bv[l] = *reinterpret_cast<const v4f*>(brow + 4 * l);
    }
    const float* ap = a + p * a_depth_stride;
    for (std::size_t r = 0; r < kRowTile; ++r) {
      const float av = ap[r * a_row_stride];
      const v4f avv = {av, av, av, av};
      for (std::size_t l = 0; l < kLanes; ++l) acc[r][l] += avv * bv[l];
    }
  }
  for (std::size_t r = 0; r < kRowTile; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t l = 0; l < kLanes; ++l) {
      v4f* cv = reinterpret_cast<v4f*>(crow + 4 * l);
      if constexpr (kAccumulate) {
        *cv += acc[r][l];
      } else {
        *cv = acc[r][l];
      }
    }
  }
#else
  float acc[kRowTile][kColTile] = {};
  for (std::size_t p = 0; p < depth; ++p) {
    const float* brow = b + p * ldb;
    float bv[kColTile];
    for (std::size_t j = 0; j < kColTile; ++j) bv[j] = brow[j];
    const float* ap = a + p * a_depth_stride;
    for (std::size_t r = 0; r < kRowTile; ++r) {
      const float av = ap[r * a_row_stride];
      for (std::size_t j = 0; j < kColTile; ++j) acc[r][j] += av * bv[j];
    }
  }
  for (std::size_t r = 0; r < kRowTile; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t j = 0; j < kColTile; ++j) {
      if constexpr (kAccumulate) {
        crow[j] += acc[r][j];
      } else {
        crow[j] = acc[r][j];
      }
    }
  }
#endif
}

// Runtime-bound edge tile for the <kRowTile x <kColTile remainders.
template <bool kAccumulate>
inline void tile_edge(const float* a, std::size_t a_row_stride,
                      std::size_t a_depth_stride, const float* b,
                      std::size_t ldb, float* c, std::size_t ldc,
                      std::size_t depth, std::size_t rows, std::size_t cols) {
  float acc[kRowTile][kColTile] = {};
  for (std::size_t p = 0; p < depth; ++p) {
    const float* brow = b + p * ldb;
    const float* ap = a + p * a_depth_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      const float av = ap[r * a_row_stride];
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t j = 0; j < cols; ++j) {
      if constexpr (kAccumulate) {
        crow[j] += acc[r][j];
      } else {
        crow[j] = acc[r][j];
      }
    }
  }
}

// ---------------------------------------------------------- operand packing
//
// B is copied into kColTile-wide depth-major panels before the tile loops
// run: panel jb holds B columns [jb*kColTile, jb*kColTile + kColTile) as
// `depth` consecutive kColTile-float strips. Two effects: the tile's B
// loads become a sequential stream (the raw layout walks B with an ldb*4
// byte stride — 4 KiB for the LSTM's 1024-wide gate matrices, which maps
// every load to the same L1 set and thrashes it), and each row tile's A
// block then stays L1-resident across all column strips. Packing is pure
// data movement, so every output element keeps its exact ascending-depth
// reduction chain — results are bit-identical to the unpacked loops.

// Panel floats needed for a (depth x n) B operand, tail panel included.
std::size_t packed_b_floats(std::size_t depth, std::size_t n) {
  return ((n + kColTile - 1) / kColTile) * depth * kColTile;
}

// Packs row-major B(depth, n): panel[jb][p][l] = B(p, jb*kColTile + l).
// Tail lanes of the last panel are zero-filled; only tile_edge reads that
// panel and it stops at the valid column count, but the fill keeps the
// buffer fully initialised.
void pack_b(const float* b, std::size_t ldb, std::size_t depth, std::size_t n,
            float* packed) {
  for (std::size_t p = 0; p < depth; ++p) {
    const float* brow = b + p * ldb;
    float* out = packed + p * kColTile;
    std::size_t j = 0;
    for (; j + kColTile <= n; j += kColTile) {
      std::memcpy(out, brow + j, kColTile * sizeof(float));
      out += depth * kColTile;
    }
    if (j < n) {
      std::memcpy(out, brow + j, (n - j) * sizeof(float));
      std::fill(out + (n - j), out + kColTile, 0.0f);
    }
  }
}

// Packs column-major-read B for gemm_trans_b: the operand is row-major
// B(n, k) used as B^T, so panel[jb][p][l] = B(jb*kColTile + l, p). Each
// source row is contiguous, so this is n strided scatter passes.
void pack_b_transposed(const float* b, std::size_t ldb, std::size_t depth,
                       std::size_t n, float* packed) {
  for (std::size_t j = 0; j < n; j += kColTile) {
    const std::size_t cols = std::min(kColTile, n - j);
    float* panel = packed + (j / kColTile) * depth * kColTile;
    for (std::size_t l = 0; l < cols; ++l) {
      const float* brow = b + (j + l) * ldb;
      for (std::size_t p = 0; p < depth; ++p) {
        panel[p * kColTile + l] = brow[p];
      }
    }
    if (cols < kColTile) {
      for (std::size_t p = 0; p < depth; ++p) {
        std::fill(panel + p * kColTile + cols, panel + (p + 1) * kColTile,
                  0.0f);
      }
    }
  }
}

// Transposes A(m, k) into At(k, m) so gemm_trans_a's output-row tiles read
// contiguous At rows instead of striding lda floats per reduction step.
void pack_a_transposed(const float* a, std::size_t lda, std::size_t m,
                       std::size_t k, float* at) {
  for (std::size_t p = 0; p < m; ++p) {
    const float* arow = a + p * lda;
    for (std::size_t i = 0; i < k; ++i) at[i * m + p] = arow[i];
  }
}

// Computes output rows [r0, r1) of an (m, n) product whose reduction length
// is `depth`, reading B from packed panels. Shared by all three GEMM
// variants (trans-A packs A^T first so its strides look like plain GEMM).
template <bool kAccumulate>
void product_rows(const float* a, std::size_t a_row_stride,
                  std::size_t a_depth_stride, const float* packed_b, float* c,
                  std::size_t ldc, std::size_t depth, std::size_t r0,
                  std::size_t r1, std::size_t n) {
  const std::size_t panel_stride = depth * kColTile;
  std::size_t i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    const float* ai = a + i * a_row_stride;
    float* ci = c + i * ldc;
    std::size_t j = 0;
    for (; j + kColTile <= n; j += kColTile) {
      tile_full<kAccumulate>(ai, a_row_stride, a_depth_stride,
                             packed_b + (j / kColTile) * panel_stride,
                             kColTile, ci + j, ldc, depth);
    }
    if (j < n) {
      tile_edge<kAccumulate>(ai, a_row_stride, a_depth_stride,
                             packed_b + (j / kColTile) * panel_stride,
                             kColTile, ci + j, ldc, depth, kRowTile, n - j);
    }
  }
  if (i < r1) {
    const float* ai = a + i * a_row_stride;
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < n; j += kColTile) {
      tile_edge<kAccumulate>(ai, a_row_stride, a_depth_stride,
                             packed_b + (j / kColTile) * panel_stride,
                             kColTile, ci + j, ldc, depth, r1 - i,
                             std::min(kColTile, n - j));
    }
  }
}

// --------------------------------------------------------- row partitioning

// Output-row chunk handed to each pool task. Fixed (never derived from the
// pool size) so the work decomposition itself is scheduling-independent;
// row results are disjoint, so any assignment of chunks to threads yields
// the same bits anyway.
constexpr std::size_t kParallelRowChunk = 8;
// Below this many flops the parallel_for bookkeeping costs more than the
// kernel; run serially on the calling thread.
constexpr std::size_t kParallelMinFlops = std::size_t{1} << 18;

template <typename SerialRows>
void partition_rows(ThreadPool* pool, std::size_t m, std::size_t flops,
                    const SerialRows& serial_rows) {
  if (pool == nullptr || m <= kParallelRowChunk ||
      flops < kParallelMinFlops) {
    serial_rows(std::size_t{0}, m);
    return;
  }
  const std::size_t tasks = (m + kParallelRowChunk - 1) / kParallelRowChunk;
  pool->parallel_for(tasks, [&](std::size_t task) {
    const std::size_t r0 = task * kParallelRowChunk;
    serial_rows(r0, std::min(m, r0 + kParallelRowChunk));
  });
}

// ------------------------------------------------------------ im2col/col2im

// Packs one sample (ic, h, w) into col(ic*k*k, oh*ow) with the patch axis
// in (c, ky, kx) order — the reduction order of the naive conv loops — so
// the GEMM accumulates weight-patch products in the same sequence.
void im2col(const float* x, std::size_t ic, std::size_t h, std::size_t w,
            std::size_t k, std::size_t stride, std::size_t pad, std::size_t oh,
            std::size_t ow, float* col) {
  for (std::size_t c = 0; c < ic; ++c) {
    const float* xc = x + c * h * w;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        float* row = col + ((c * k + ky) * k + kx) * (oh * ow);
        for (std::size_t yy = 0; yy < oh; ++yy) {
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(yy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          float* out = row + yy * ow;
          if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) {
            std::fill_n(out, ow, 0.0f);
            continue;
          }
          const float* xrow = xc + static_cast<std::size_t>(in_y) * w;
          if (stride == 1) {
            // in_x = xx + kx - pad stays contiguous: zero the out-of-bounds
            // edges and memcpy the valid middle.
            const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kx) -
                                         static_cast<std::ptrdiff_t>(pad);
            const std::size_t x_begin =
                shift < 0 ? static_cast<std::size_t>(-shift) : 0;
            const std::ptrdiff_t x_limit = std::min<std::ptrdiff_t>(
                static_cast<std::ptrdiff_t>(ow),
                static_cast<std::ptrdiff_t>(w) - shift);
            const std::size_t x_end =
                x_limit < static_cast<std::ptrdiff_t>(x_begin)
                    ? x_begin
                    : static_cast<std::size_t>(x_limit);
            std::fill(out, out + x_begin, 0.0f);
            if (x_end > x_begin) {
              std::memcpy(out + x_begin,
                          xrow + static_cast<std::size_t>(
                                     static_cast<std::ptrdiff_t>(x_begin) +
                                     shift),
                          (x_end - x_begin) * sizeof(float));
            }
            std::fill(out + x_end, out + ow, 0.0f);
          } else {
            for (std::size_t xx = 0; xx < ow; ++xx) {
              const std::ptrdiff_t in_x =
                  static_cast<std::ptrdiff_t>(xx * stride + kx) -
                  static_cast<std::ptrdiff_t>(pad);
              out[xx] = (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w))
                            ? 0.0f
                            : xrow[static_cast<std::size_t>(in_x)];
            }
          }
        }
      }
    }
  }
}

// Scatter-adds dcol(ic*k*k, oh*ow) back into one sample's dx(ic, h, w);
// padding positions are simply dropped.
void col2im_add(const float* col, std::size_t ic, std::size_t h, std::size_t w,
                std::size_t k, std::size_t stride, std::size_t pad,
                std::size_t oh, std::size_t ow, float* dx) {
  for (std::size_t c = 0; c < ic; ++c) {
    float* xc = dx + c * h * w;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        const float* row = col + ((c * k + ky) * k + kx) * (oh * ow);
        for (std::size_t yy = 0; yy < oh; ++yy) {
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(yy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(h)) continue;
          float* xrow = xc + static_cast<std::size_t>(in_y) * w;
          const float* src = row + yy * ow;
          for (std::size_t xx = 0; xx < ow; ++xx) {
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(xx * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            if (in_x < 0 || in_x >= static_cast<std::ptrdiff_t>(w)) continue;
            xrow[static_cast<std::size_t>(in_x)] += src[xx];
          }
        }
      }
    }
  }
}

}  // namespace

// --------------------------------------------------------------- Workspace

std::span<float> Workspace::take(std::size_t count) {
  for (Chunk& chunk : chunks_) {
    if (chunk.data.size() - chunk.used >= count) {
      const std::span<float> span(chunk.data.data() + chunk.used, count);
      chunk.used += count;
      return span;
    }
  }
  // Grow by a fresh chunk: existing chunks never resize, so spans handed
  // out earlier stay valid.
  constexpr std::size_t kMinChunkFloats = 4096;
  chunks_.emplace_back();
  Chunk& chunk = chunks_.back();
  chunk.data.resize(std::max(count, kMinChunkFloats));
  chunk.used = count;
  return {chunk.data.data(), count};
}

void Workspace::reset() noexcept {
  for (Chunk& chunk : chunks_) chunk.used = 0;
}

std::size_t Workspace::capacity() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.data.size();
  return total;
}

// ---------------------------------------------------------------- dispatch

void set_reference_kernels(bool enabled) noexcept {
  g_reference_kernels.store(enabled, std::memory_order_relaxed);
}

bool reference_kernels_enabled() noexcept {
  return g_reference_kernels.load(std::memory_order_relaxed);
}

// --------------------------------------------------------------- raw GEMMs

// Packing happens on the calling thread before rows are partitioned, so
// pool tasks only ever read the packed panels (and the caller blocks in
// parallel_for while they do, keeping the thread-local arena alive).

void gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, std::size_t m, std::size_t k,
          std::size_t n, Accumulate accumulate, ThreadPool* pool) {
  KernelTimer timer(gemm_time_histogram());
  const std::size_t flops = 2 * m * k * n;
  Workspace& arena = pack_workspace();
  arena.reset();
  const std::span<float> packed = arena.take(packed_b_floats(k, n));
  pack_b(b, ldb, k, n, packed.data());
  const float* bp = packed.data();
  if (accumulate == Accumulate::kAdd) {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<true>(a, lda, 1, bp, c, ldc, k, r0, r1, n);
    });
  } else {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<false>(a, lda, 1, bp, c, ldc, k, r0, r1, n);
    });
  }
  gemm_flop_counter().add(flops);
}

std::size_t gemm_packed_b_floats(std::size_t depth, std::size_t n) {
  return packed_b_floats(depth, n);
}

void gemm_pack_b(const float* b, std::size_t ldb, std::size_t depth,
                 std::size_t n, float* packed) {
  pack_b(b, ldb, depth, n, packed);
}

void gemm_prepacked_b(const float* a, std::size_t lda, const float* packed_b,
                      float* c, std::size_t ldc, std::size_t m, std::size_t k,
                      std::size_t n, Accumulate accumulate, ThreadPool* pool) {
  KernelTimer timer(gemm_time_histogram());
  const std::size_t flops = 2 * m * k * n;
  if (accumulate == Accumulate::kAdd) {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<true>(a, lda, 1, packed_b, c, ldc, k, r0, r1, n);
    });
  } else {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<false>(a, lda, 1, packed_b, c, ldc, k, r0, r1, n);
    });
  }
  gemm_flop_counter().add(flops);
}

void gemm_trans_a(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t m,
                  std::size_t k, std::size_t n, Accumulate accumulate,
                  ThreadPool* pool) {
  KernelTimer timer(gemm_time_histogram());
  const std::size_t flops = 2 * m * k * n;
  // Output rows are A's columns; transposing A up front turns the column
  // walk (lda floats per reduction step) into contiguous row reads. The
  // reduction over A/B rows stays ascending.
  Workspace& arena = pack_workspace();
  arena.reset();
  const std::span<float> at = arena.take(m * k);
  pack_a_transposed(a, lda, m, k, at.data());
  const std::span<float> packed = arena.take(packed_b_floats(m, n));
  pack_b(b, ldb, m, n, packed.data());
  const float* ap = at.data();
  const float* bp = packed.data();
  if (accumulate == Accumulate::kAdd) {
    partition_rows(pool, k, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<true>(ap, m, 1, bp, c, ldc, m, r0, r1, n);
    });
  } else {
    partition_rows(pool, k, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<false>(ap, m, 1, bp, c, ldc, m, r0, r1, n);
    });
  }
  gemm_flop_counter().add(flops);
}

void gemm_trans_b(const float* a, std::size_t lda, const float* b,
                  std::size_t ldb, float* c, std::size_t ldc, std::size_t m,
                  std::size_t k, std::size_t n, Accumulate accumulate,
                  ThreadPool* pool) {
  KernelTimer timer(gemm_time_histogram());
  const std::size_t flops = 2 * m * k * n;
  // C(m,n) = A(m,k) * B(n,k)^T: packing B's rows as depth-major panels
  // makes this the same broadcast-tile product as plain gemm, and each
  // output element is still one ascending-k dot-product chain.
  Workspace& arena = pack_workspace();
  arena.reset();
  const std::span<float> packed = arena.take(packed_b_floats(k, n));
  pack_b_transposed(b, ldb, k, n, packed.data());
  const float* bp = packed.data();
  if (accumulate == Accumulate::kAdd) {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<true>(a, lda, 1, bp, c, ldc, k, r0, r1, n);
    });
  } else {
    partition_rows(pool, m, flops, [&](std::size_t r0, std::size_t r1) {
      product_rows<false>(a, lda, 1, bp, c, ldc, k, r0, r1, n);
    });
  }
  gemm_flop_counter().add(flops);
}

// ------------------------------------------------------ tensor entry points

void matmul(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  assert(b.dim(0) == a.dim(1) && c.dim(0) == a.dim(0) && c.dim(1) == b.dim(1));
  if (reference_kernels_enabled()) {
    reference::matmul(a, b, c);
    return;
  }
  gemm(a.data(), a.dim(1), b.data(), b.dim(1), c.data(), c.dim(1), a.dim(0),
       a.dim(1), b.dim(1), Accumulate::kOverwrite, pool);
}

void matmul_trans_a(const Tensor& a, const Tensor& b, Tensor& c,
                    ThreadPool* pool) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  assert(b.dim(0) == a.dim(0) && c.dim(0) == a.dim(1) && c.dim(1) == b.dim(1));
  if (reference_kernels_enabled()) {
    reference::matmul_trans_a(a, b, c);
    return;
  }
  gemm_trans_a(a.data(), a.dim(1), b.data(), b.dim(1), c.data(), c.dim(1),
               a.dim(0), a.dim(1), b.dim(1), Accumulate::kOverwrite, pool);
}

void matmul_trans_b(const Tensor& a, const Tensor& b, Tensor& c,
                    ThreadPool* pool) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  assert(b.dim(1) == a.dim(1) && c.dim(0) == a.dim(0) && c.dim(1) == b.dim(0));
  if (reference_kernels_enabled()) {
    reference::matmul_trans_b(a, b, c);
    return;
  }
  gemm_trans_b(a.data(), a.dim(1), b.data(), b.dim(1), c.data(), c.dim(1),
               a.dim(0), a.dim(1), b.dim(0), Accumulate::kOverwrite, pool);
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  assert(x.rank() == 2 && bias.rank() == 1 && bias.dim(0) == x.dim(1));
  const std::size_t rows = x.dim(0), cols = x.dim(1);
  float* px = x.data();
  const float* pb = bias.data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) px[r * cols + c] += pb[c];
  }
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  assert(logits.rank() == 2);
  if (&out != &logits) out = logits;
  const std::size_t rows = out.dim(0), cols = out.dim(1);
  float* p = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = p + r * cols;
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < cols; ++c) max_v = std::max(max_v, row[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      total += row[c];
    }
    const float inv = 1.0f / total;
    for (std::size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

// ------------------------------------------------------------- convolution

void conv2d_forward(const Tensor& x, const Tensor& weights, const Tensor& bias,
                    const Conv2DShape& shape, Tensor& y, Workspace* workspace,
                    ThreadPool* pool) {
  assert(x.rank() == 4 && weights.rank() == 4 && y.rank() == 4);
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride,
                    pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  assert(x.dim(1) == ic && weights.dim(0) == oc && weights.dim(1) == ic);
  assert(y.dim(0) == batch && y.dim(1) == oc && y.dim(2) == oh &&
         y.dim(3) == ow);
  if (reference_kernels_enabled()) {
    reference::conv2d_forward(x, weights, bias, shape, y);
    return;
  }

  KernelTimer timer(conv_time_histogram());
  const std::size_t ckk = ic * k * k;
  const std::size_t ohow = oh * ow;
  Workspace& arena = workspace != nullptr ? *workspace : thread_workspace();
  arena.reset();
  const std::span<float> col = arena.take(ckk * ohow);

  const float* pw = weights.data();  // (oc, ckk) row-major
  const float* pb = bias.data();
  float* py = y.data();
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(x.data() + b * ic * h * w, ic, h, w, k, stride, pad, oh, ow,
           col.data());
    float* yb = py + b * oc * ohow;
    // Seed each output row with its bias, then accumulate the GEMM on top —
    // the same acc-starts-at-bias order as the naive loop.
    for (std::size_t o = 0; o < oc; ++o) std::fill_n(yb + o * ohow, ohow, pb[o]);
    gemm(pw, ckk, col.data(), ohow, yb, ohow, oc, ckk, ohow, Accumulate::kAdd,
         pool);
  }
  conv_flop_counter().add(2 * batch * oc * ckk * ohow);
}

std::size_t conv2d_packed_input_floats(const Conv2DShape& shape, std::size_t h,
                                       std::size_t w) {
  const std::size_t ckk = shape.in_channels * shape.kernel * shape.kernel;
  return packed_b_floats(ckk, shape.out_extent(h) * shape.out_extent(w));
}

void conv2d_pack_input(const Tensor& x, const Conv2DShape& shape,
                       std::span<float> packed, Workspace* workspace) {
  assert(x.rank() == 4 && x.dim(1) == shape.in_channels);
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride,
                    pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  const std::size_t ckk = ic * k * k;
  const std::size_t ohow = oh * ow;
  const std::size_t per_sample = packed_b_floats(ckk, ohow);
  assert(packed.size() >= batch * per_sample);
  Workspace& arena = workspace != nullptr ? *workspace : thread_workspace();
  arena.reset();
  const std::span<float> col = arena.take(ckk * ohow);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(x.data() + b * ic * h * w, ic, h, w, k, stride, pad, oh, ow,
           col.data());
    pack_b(col.data(), ohow, ckk, ohow, packed.data() + b * per_sample);
  }
}

void conv2d_forward_prepacked(std::span<const float> packed_x,
                              std::size_t batch, std::size_t h, std::size_t w,
                              const Tensor& weights, const Tensor& bias,
                              const Conv2DShape& shape, Tensor& y,
                              ThreadPool* pool) {
  assert(weights.rank() == 4 && y.rank() == 4);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t k = shape.kernel;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  assert(weights.dim(0) == oc && weights.dim(1) == ic);
  assert(y.dim(0) == batch && y.dim(1) == oc && y.dim(2) == oh &&
         y.dim(3) == ow);
  KernelTimer timer(conv_time_histogram());
  const std::size_t ckk = ic * k * k;
  const std::size_t ohow = oh * ow;
  const std::size_t per_sample = packed_b_floats(ckk, ohow);
  assert(packed_x.size() >= batch * per_sample);
  const float* pw = weights.data();  // (oc, ckk) row-major
  const float* pb = bias.data();
  float* py = y.data();
  for (std::size_t b = 0; b < batch; ++b) {
    float* yb = py + b * oc * ohow;
    for (std::size_t o = 0; o < oc; ++o) std::fill_n(yb + o * ohow, ohow, pb[o]);
    gemm_prepacked_b(pw, ckk, packed_x.data() + b * per_sample, yb, ohow, oc,
                     ckk, ohow, Accumulate::kAdd, pool);
  }
  conv_flop_counter().add(2 * batch * oc * ckk * ohow);
}

void conv2d_backward(const Tensor& x, const Tensor& weights,
                     const Conv2DShape& shape, const Tensor& dy, Tensor& dx,
                     Tensor& dw, Tensor& dbias, Workspace* workspace,
                     ThreadPool* pool) {
  const std::size_t batch = x.dim(0);
  const std::size_t ic = shape.in_channels, oc = shape.out_channels;
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t k = shape.kernel, stride = shape.stride,
                    pad = shape.padding;
  const std::size_t oh = shape.out_extent(h), ow = shape.out_extent(w);
  // A mismatched dy (or gradient buffers) would silently corrupt memory in
  // release builds; fail loudly under the debug-check presets instead.
  TANGLEFL_DCHECK_MSG(
      x.rank() == 4 && weights.rank() == 4 && dy.rank() == 4 &&
          dx.rank() == 4 && dw.rank() == 4,
      "conv2d_backward: all tensor arguments must be rank 4");
  TANGLEFL_DCHECK_MSG(x.dim(1) == ic, "conv2d_backward: x channel mismatch");
  TANGLEFL_DCHECK_MSG(
      weights.dim(0) == oc && weights.dim(1) == ic && weights.dim(2) == k &&
          weights.dim(3) == k,
      "conv2d_backward: weight shape mismatch");
  TANGLEFL_DCHECK_MSG(dy.dim(0) == batch && dy.dim(1) == oc &&
                          dy.dim(2) == oh && dy.dim(3) == ow,
                      "conv2d_backward: dy shape mismatch");
  TANGLEFL_DCHECK_MSG(dx.dim(0) == batch && dx.dim(1) == ic &&
                          dx.dim(2) == h && dx.dim(3) == w,
                      "conv2d_backward: dx shape mismatch");
  TANGLEFL_DCHECK_MSG(dw.dim(0) == oc && dw.dim(1) == ic && dw.dim(2) == k &&
                          dw.dim(3) == k,
                      "conv2d_backward: dw shape mismatch");
  TANGLEFL_DCHECK_MSG(dbias.size() == oc,
                      "conv2d_backward: dbias size mismatch");
  if (reference_kernels_enabled()) {
    reference::conv2d_backward(x, weights, shape, dy, dx, dw, dbias);
    return;
  }

  KernelTimer timer(conv_time_histogram());
  const std::size_t ckk = ic * k * k;
  const std::size_t ohow = oh * ow;
  Workspace& arena = workspace != nullptr ? *workspace : thread_workspace();
  arena.reset();
  const std::span<float> col = arena.take(ckk * ohow);
  const std::span<float> dcol = arena.take(ckk * ohow);

  dx.zero();
  const float* pdy = dy.data();
  float* pdb = dbias.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* dyb = pdy + b * oc * ohow;
    // dbias: per-channel row sums in the naive (o, yy, xx) order.
    for (std::size_t o = 0; o < oc; ++o) {
      const float* row = dyb + o * ohow;
      float acc = pdb[o];
      for (std::size_t i = 0; i < ohow; ++i) acc += row[i];
      pdb[o] = acc;
    }
    im2col(x.data() + b * ic * h * w, ic, h, w, k, stride, pad, oh, ow,
           col.data());
    // dw(oc, ckk) += dy_b(oc, ohow) x col_b(ckk, ohow)^T
    gemm_trans_b(dyb, ohow, col.data(), ohow, dw.data(), ckk, oc, ohow, ckk,
                 Accumulate::kAdd, pool);
    // dcol(ckk, ohow) = W(oc, ckk)^T x dy_b(oc, ohow), then scatter back.
    gemm_trans_a(weights.data(), ckk, dyb, ohow, dcol.data(), ohow, oc, ckk,
                 ohow, Accumulate::kOverwrite, pool);
    col2im_add(dcol.data(), ic, h, w, k, stride, pad, oh, ow,
               dx.data() + b * ic * h * w);
  }
  conv_flop_counter().add(4 * batch * oc * ckk * ohow);
}

// ----------------------------------------------------------------- pooling

void maxpool2d_forward(const Tensor& x, std::size_t window, std::size_t stride,
                       Tensor& y, std::vector<std::size_t>& argmax) {
  assert(x.rank() == 4 && y.rank() == 4);
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t oh = (h - window) / stride + 1;
  const std::size_t ow = (w - window) / stride + 1;
  assert(y.dim(0) == batch && y.dim(1) == ch && y.dim(2) == oh && y.dim(3) == ow);
  argmax.assign(y.size(), 0);

  std::size_t out_index = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t yy = 0; yy < oh; ++yy) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t wy = 0; wy < window; ++wy) {
            for (std::size_t wx = 0; wx < window; ++wx) {
              const std::size_t iy = yy * stride + wy;
              const std::size_t ix = xx * stride + wx;
              const std::size_t flat = ((b * ch + c) * h + iy) * w + ix;
              const float v = x[flat];
              if (v > best) {
                best = v;
                best_index = flat;
              }
            }
          }
          y[out_index] = best;
          argmax[out_index] = best_index;
          ++out_index;
        }
      }
    }
  }
}

void maxpool2d_backward(const Tensor& dy, const std::vector<std::size_t>& argmax,
                        Tensor& dx) {
  assert(argmax.size() == dy.size());
  dx.zero();
  for (std::size_t i = 0; i < dy.size(); ++i) dx[argmax[i]] += dy[i];
}

}  // namespace tanglefl::nn::ops
