// Stochastic gradient descent with optional momentum and weight decay —
// the optimizer used by both LEAF reference models the paper builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.hpp"

namespace tanglefl::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.0;      // 0 disables the velocity buffers
  double weight_decay = 0.0;  // L2 penalty coefficient
  double grad_clip = 0.0;     // 0 disables; otherwise clip global L2 norm
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config = {}) : config_(config) {}

  /// Applies one update using the gradients currently accumulated in the
  /// model, then leaves the gradients untouched (call zero_gradients()
  /// between steps). Velocity buffers are sized lazily on first use.
  void step(Model& model);

  const SgdConfig& config() const noexcept { return config_; }
  void set_learning_rate(double lr) noexcept { config_.learning_rate = lr; }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — useful when tuning the
/// harder recurrent tasks; the paper's experiments use plain SGD.
struct AdamConfig {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamConfig config = {}) : config_(config) {}

  /// One Adam update from the model's accumulated gradients. Moment
  /// buffers are sized lazily; the step counter drives bias correction.
  void step(Model& model);

  const AdamConfig& config() const noexcept { return config_; }
  std::uint64_t steps_taken() const noexcept { return steps_; }

 private:
  AdamConfig config_;
  std::uint64_t steps_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace tanglefl::nn
