#include <cassert>
#include <cmath>

#include "nn/layer.hpp"
#include "nn/ops.hpp"

namespace tanglefl::nn {

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}),
      dweight_({in_features, out_features}),
      dbias_({out_features}) {}

void Linear::init(Rng& rng) {
  // He initialization; suits the ReLU networks we build.
  const float scale =
      std::sqrt(2.0f / static_cast<float>(in_features_));
  for (auto& w : weight_.values()) {
    w = static_cast<float>(rng.normal()) * scale;
  }
  bias_.zero();
}

Tensor Linear::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 2 && input.dim(1) == in_features_);
  cached_input_ = input;
  Tensor output({input.dim(0), out_features_});
  ops::matmul(input, weight_, output, kernel_pool_);
  ops::add_row_bias(output, bias_);
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  assert(grad_output.rank() == 2 && grad_output.dim(1) == out_features_);
  const std::size_t batch = grad_output.dim(0);
  if (ops::reference_kernels_enabled()) {
    // Legacy two-step accumulation, kept as the baseline numerics.
    Tensor dw({in_features_, out_features_});
    ops::matmul_trans_a(cached_input_, grad_output, dw);
    dweight_.add(dw);
  } else {
    // Accumulate straight into dweight_ — no per-batch temporary.
    ops::gemm_trans_a(cached_input_.data(), in_features_, grad_output.data(),
                      out_features_, dweight_.data(), out_features_, batch,
                      in_features_, out_features_, ops::Accumulate::kAdd,
                      kernel_pool_);
  }
  const float* pg = grad_output.data();
  float* pdb = dbias_.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = pg + b * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) pdb[o] += row[o];
  }
  Tensor dx({batch, in_features_});
  ops::matmul_trans_b(grad_output, weight_, dx, kernel_pool_);
  return dx;
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_features_, out_features_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input, bool training) {
  (void)training;
  cached_input_ = input;
  Tensor output = input;
  for (auto& v : output.values()) v = v > 0.0f ? v : 0.0f;
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  assert(grad_output.size() == cached_input_.size());
  Tensor dx = grad_output;
  const auto in = cached_input_.values();
  auto out = dx.values();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (in[i] <= 0.0f) out[i] = 0.0f;
  }
  return dx;
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(double drop_probability)
    : drop_probability_(drop_probability) {
  assert(drop_probability_ >= 0.0 && drop_probability_ < 1.0);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || drop_probability_ == 0.0) {
    mask_.clear();
    return input;
  }
  Tensor output = input;
  mask_.resize(input.size());
  const float keep = 1.0f - static_cast<float>(drop_probability_);
  const float inv_keep = 1.0f / keep;
  auto values = output.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Inverted dropout: surviving activations are rescaled so evaluation
    // needs no correction factor.
    mask_[i] = rng_.bernoulli(drop_probability_) ? 0.0f : inv_keep;
    values[i] *= mask_[i];
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  assert(mask_.size() == grad_output.size());
  Tensor dx = grad_output;
  auto values = dx.values();
  for (std::size_t i = 0; i < values.size(); ++i) values[i] *= mask_[i];
  return dx;
}

std::unique_ptr<Layer> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>(drop_probability_);
  copy->rng_ = rng_;
  return copy;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() >= 2);
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

// ---------------------------------------------------------- LastTimestep

Tensor LastTimestep::forward(const Tensor& input, bool training) {
  (void)training;
  assert(input.rank() == 3);
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), seq = input.dim(1), dim = input.dim(2);
  Tensor output({batch, dim});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t d = 0; d < dim; ++d) {
      output.at(b, d) = input.at(b, seq - 1, d);
    }
  }
  return output;
}

Tensor LastTimestep::backward(const Tensor& grad_output) {
  Tensor dx(input_shape_);
  const std::size_t batch = input_shape_[0], seq = input_shape_[1],
                    dim = input_shape_[2];
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t d = 0; d < dim; ++d) {
      dx.at(b, seq - 1, d) = grad_output.at(b, d);
    }
  }
  return dx;
}

}  // namespace tanglefl::nn
