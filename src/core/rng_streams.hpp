// Named RNG stream constants for every purpose-keyed Rng::split in the
// simulation engines and node behaviours. Collecting them in one place
// serves two goals:
//
//   * every (engine, purpose) pair provably gets its own stream — the
//     regression tests assert pairwise distinctness, which would have
//     caught the consensus/eval stream collision this header fixes:
//     consensus_params() used to derive from kEval.split(tangle_size)
//     while evaluate() derived from kEval.split(round), so whenever
//     tangle_size == round the eval-user sampling was perfectly
//     correlated with the reference confidence walks;
//   * the constants keep their historical values, so same-seed runs stay
//     bit-identical with earlier builds everywhere except the fixed
//     consensus stream.
#pragma once

#include <array>
#include <cstdint>

namespace tanglefl::core::streams {

// Engine-level streams, split directly off the master seed.
inline constexpr std::uint64_t kParticipant = 0x9a57;  // per-round user sampling
inline constexpr std::uint64_t kNode = 0x40de;         // per-(round, user) node step
inline constexpr std::uint64_t kEval = 0xe7a1;         // eval-user sampling
inline constexpr std::uint64_t kConsensus = 0xc0f5;    // reference/consensus walks
inline constexpr std::uint64_t kGenesis = 0x6e51;      // genesis model init
inline constexpr std::uint64_t kMalicious = 0x3a11;    // malicious-user selection
inline constexpr std::uint64_t kWake = 0xa57c;         // async Poisson wakeups
inline constexpr std::uint64_t kLoss = 0x105e;         // async publish loss trials
inline constexpr std::uint64_t kTopology = 0x70b0;     // gossip peer graph
inline constexpr std::uint64_t kPull = 0x9055;         // gossip pull failures
inline constexpr std::uint64_t kHealth = 0x6ea7;       // DAG health-probe walks

// Node-internal streams, split off the per-step NodeContext rng.
inline constexpr std::uint64_t kWalk = 0x71b5;          // tip-selection walks
inline constexpr std::uint64_t kReference = 0x3ef5;     // per-node reference walks
inline constexpr std::uint64_t kTrain = 0x7a19;         // local SGD shuffling
inline constexpr std::uint64_t kDp = 0xd9a1;            // DP sanitization noise
inline constexpr std::uint64_t kPoisonNoise = 0xbad5;   // random-poison payloads
inline constexpr std::uint64_t kBackdoorData = 0xbd00;  // backdoor split sampling
inline constexpr std::uint64_t kTiming = 0x717e;        // async training durations

/// Every stream constant above, for the pairwise-distinctness regression
/// test. Keep in sync when adding a stream.
inline constexpr std::array<std::uint64_t, 18> kAllStreams = {
    kParticipant, kNode,  kEval,     kConsensus, kGenesis,     kMalicious,
    kWake,        kLoss,  kTopology, kPull,      kHealth,      kWalk,
    kReference,   kTrain, kDp,       kPoisonNoise, kBackdoorData, kTiming,
};

}  // namespace tanglefl::core::streams
