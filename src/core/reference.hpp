// Algorithm 1: choosing the reference (consensus) model from the tangle.
// Every transaction is scored by confidence(t) * rating(t); the
// highest-priority transaction's payload is the consensus model. As a
// smoothing variation, the top-n payloads can be averaged (Section III-A),
// which Table II probes as "# transactions chosen as reference model".
#pragma once

#include <vector>

#include "nn/params.hpp"
#include "support/rng.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::core {

struct ReferenceConfig {
  std::size_t num_reference_models = 1;  // top-n payloads to average
  tangle::ConfidenceConfig confidence;
};

struct ReferenceResult {
  // Transactions in descending priority order (as many as were averaged).
  std::vector<tangle::TxIndex> transactions;
  // Averaged payload of those transactions.
  nn::ParamVector params;
};

/// Runs Algorithm 1 over `view`. The view always contains at least the
/// genesis transaction, so a result always exists.
ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store, Rng& rng,
                                 const ReferenceConfig& config);

/// Same, scoring against a shared cone cache entry instead of recomputing
/// the view's cones (see tangle/view_cache.hpp). Bit-identical to the
/// direct overload for the same RNG state.
ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store,
                                 const tangle::ViewCacheEntry& cones, Rng& rng,
                                 const ReferenceConfig& config);

}  // namespace tanglefl::core
