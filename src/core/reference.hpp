// Algorithm 1: choosing the reference (consensus) model from the tangle.
// Every transaction is scored by confidence(t) * rating(t); the
// highest-priority transaction's payload is the consensus model. As a
// smoothing variation, the top-n payloads can be averaged (Section III-A),
// which Table II probes as "# transactions chosen as reference model".
#pragma once

#include <span>
#include <vector>

#include "nn/params.hpp"
#include "support/rng.hpp"
#include "tangle/confidence.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::core {

struct ReferenceConfig {
  std::size_t num_reference_models = 1;  // top-n payloads to average
  tangle::ConfidenceConfig confidence;
};

struct ReferenceResult {
  // Transactions in descending priority order (as many as were averaged).
  std::vector<tangle::TxIndex> transactions;
  // Store payload ids of those transactions, in the same order. Together
  // they identify `params` exactly (payloads are content-deduplicated), so
  // evaluation results on the averaged model can be cached by this list.
  std::vector<tangle::PayloadId> payloads;
  // Averaged payload of those transactions.
  nn::ParamVector params;
};

/// Indices of the `take` highest-priority entries, in descending
/// (priority, index) order — ties resolve to the newest (highest) index.
/// O(V + k log k) via nth_element instead of a full priority queue.
/// Exposed for the regression test against the heap-based selection.
std::vector<tangle::TxIndex> top_priority_indices(
    std::span<const double> priorities, std::size_t take);

/// Runs Algorithm 1 over `view`. The view always contains at least the
/// genesis transaction, so a result always exists.
ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store, Rng& rng,
                                 const ReferenceConfig& config);

/// Same, scoring against a shared cone cache entry instead of recomputing
/// the view's cones (see tangle/view_cache.hpp). Bit-identical to the
/// direct overload for the same RNG state.
ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store,
                                 const tangle::ViewCacheEntry& cones, Rng& rng,
                                 const ReferenceConfig& config);

}  // namespace tanglefl::core
