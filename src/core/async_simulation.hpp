// Event-driven asynchronous simulation — the Section VI outlook item: the
// round barrier of Section IV exists only to ease comparison with FedAvg;
// a deployed learning tangle is asynchronous. Here nodes wake according to
// independent Poisson processes, train for a sampled duration, and publish
// into a ledger whose visibility respects network propagation delay and
// message loss:
//
//   * a node starting to train at time t sees exactly the transactions
//     published at or before t - network_delay,
//   * a finished transaction enters the ledger at its publish time,
//   * each publish is lost with probability publish_loss.
//
// Transactions are appended in publish-time order, so the prefix-view
// machinery of the round-based engine carries over unchanged: the `round`
// field of a transaction stores its publish time in microseconds.
#pragma once

#include <cstdint>

#include "core/metrics.hpp"
#include "core/node.hpp"
#include "core/simulation.hpp"
#include "data/poison.hpp"

namespace tanglefl::core {

struct AsyncSimulationConfig {
  double duration_seconds = 60.0;      // simulated wall-clock horizon
  double wake_rate_per_node = 0.2;     // Poisson rate [1/s] per node
  double mean_training_seconds = 1.0;  // exponential training duration
  double network_delay_seconds = 0.5;  // propagation delay to all peers
  double publish_loss = 0.0;           // probability a publish never lands

  NodeConfig node;

  AttackType attack = AttackType::kNone;
  double malicious_fraction = 0.0;
  double attack_start_seconds = 0.0;
  data::LabelFlip flip{3, 8};
  data::BackdoorTrigger trigger;
  double backdoor_boost = 3.0;
  double backdoor_data_fraction = 0.5;

  double eval_every_seconds = 10.0;
  double eval_nodes_fraction = 0.1;

  std::uint64_t seed = 1;

  // Reuse cone computations across wakeups that see the same ledger prefix
  // (common when wakes cluster between publishes). Bit-identical results
  // either way; see tangle/view_cache.hpp.
  bool use_view_cache = true;

  // Cache loss-probe results across probes and wakeups in the shared eval
  // engine; byte-identical outputs either way (core/eval_engine.hpp).
  bool use_eval_cache = true;
  // Batched multi-model candidate probes (EvalEngineConfig::use_batched):
  // off replays the exact per-probe serial path. Outputs are byte-identical
  // either way.
  bool use_eval_batch = true;

  // Publish-path payload codec (tangle/payload_codec.hpp); all stages
  // default off, keeping outputs byte-identical to prior versions.
  tangle::PayloadCodecConfig codec;

  // Milestone pruning, checked at evaluation instants and clamped so the
  // frontier never outruns the slowest in-flight view horizon (see
  // tangle/milestones.hpp). Requires use_view_cache; disabled (the
  // default), outputs are byte-identical to prior versions.
  tangle::MilestoneConfig prune;

  // Optional per-round time-series sink; rows are keyed by whole simulated
  // seconds and sampled at every evaluation instant. Ledger time here is
  // microseconds, so HealthConfig::orphan_age is overridden from
  // health_orphan_age_seconds at construction.
  obs::Timeline* timeline = nullptr;
  tangle::HealthConfig health;
  double health_orphan_age_seconds = 5.0;
};

struct AsyncStats {
  std::size_t wakeups = 0;            // node training sessions started
  std::size_t published = 0;          // transactions that landed
  std::size_t lost = 0;               // publishes dropped by the network
  std::size_t abstained = 0;          // training finished, no improvement
  std::size_t in_flight = 0;          // still propagating at the horizon
};

class AsyncTangleSimulation {
 public:
  AsyncTangleSimulation(const data::FederatedDataset& dataset,
                        nn::ModelFactory factory,
                        AsyncSimulationConfig config);

  /// Runs the event loop over the full horizon; the returned history has
  /// one record per evaluation instant (RoundRecord::round holds whole
  /// simulated seconds).
  RunResult run();

  const tangle::Tangle& tangle() const noexcept { return tangle_; }
  const tangle::ModelStore& store() const noexcept { return store_; }
  const AsyncStats& stats() const noexcept { return stats_; }

  /// Consensus accuracy as seen at simulated time `now`.
  RoundRecord evaluate(double now);

 private:
  static std::uint64_t to_micros(double seconds) noexcept {
    return static_cast<std::uint64_t>(seconds * 1e6);
  }

  bool is_malicious(std::size_t user) const noexcept;

  const data::FederatedDataset* dataset_;
  nn::ModelFactory factory_;
  AsyncSimulationConfig config_;
  Rng master_rng_;
  tangle::ModelStore store_;
  tangle::Tangle tangle_;
  AsyncStats stats_;
  // Keyed by prefix count: holds the latest wake horizons plus the full
  // eval view.
  tangle::ViewCache view_cache_{4};
  // Shared loss-probe engine (cache + model pool + pre-batched splits).
  EvalEngine eval_engine_;
  tangle::MilestoneTracker pruner_;
  // Publish-path codec driver; pass-through when no wire stage is on.
  tangle::PayloadPipeline payload_pipeline_{config_.codec};

  // Timeline mode only; null otherwise.
  std::unique_ptr<tangle::HealthTracker> health_;
  std::unique_ptr<obs::RegistrySampler> timeline_sampler_;

  std::vector<std::size_t> malicious_users_;
  std::vector<data::UserData> poisoned_users_;
};

/// Convenience wrapper mirroring run_tangle_learning.
RunResult run_async_tangle_learning(const data::FederatedDataset& dataset,
                                    nn::ModelFactory factory,
                                    const AsyncSimulationConfig& config,
                                    std::string label = "tangle-async");

}  // namespace tanglefl::core
