// Round-based simulation engine for the learning tangle (Section IV).
// Training is organized in rounds: a subset of nodes participates per
// round, transactions published in round r become visible in round r+1,
// and a fraction of nodes can be declared malicious from a configurable
// attack-start round onward. Node steps within a round run in parallel on
// a thread pool; determinism is preserved because every step derives its
// randomness from (seed, round, slot).
#pragma once

#include <memory>
#include <vector>

#include "core/eval_engine.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"
#include "data/poison.hpp"
#include "obs/timeline.hpp"
#include "support/thread_pool.hpp"
#include "tangle/health.hpp"
#include "tangle/milestones.hpp"
#include "tangle/payload_codec.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::core {

enum class AttackType {
  kNone,
  kRandomPoison,  // Fig. 5: N(0,1) parameter transactions
  kLabelFlip,     // Fig. 6: source-class samples labeled as target class
  kBackdoor,      // Section VI outlook: boosted trigger-patch backdoor [29]
};

struct SimulationConfig {
  std::size_t rounds = 50;
  std::size_t nodes_per_round = 10;

  // Evaluation cadence; the paper validates every 20 training rounds on
  // the test data of a random 10% of all nodes.
  std::size_t eval_every = 5;
  double eval_nodes_fraction = 0.1;

  NodeConfig node;

  AttackType attack = AttackType::kNone;
  double malicious_fraction = 0.0;
  std::uint64_t attack_start_round = 0;  // rounds >= this run the attack
  data::LabelFlip flip{3, 8};

  // Backdoor attack parameters (attack == kBackdoor).
  data::BackdoorTrigger trigger;
  double backdoor_boost = 3.0;
  double backdoor_data_fraction = 0.5;

  std::uint64_t seed = 1;
  std::size_t threads = 1;  // worker threads for per-round node training

  // Worker threads for the intra-node NN kernels (GEMM/conv row
  // partitioning). 0 or 1 runs kernels serially inside each node step —
  // the right default when `threads` already saturates the machine.
  // Results are bit-identical for any value.
  std::size_t kernel_threads = 0;

  // Share one cone cache entry per round view across all participants
  // instead of recomputing cumulative weights per node. Results are
  // bit-identical either way; disable only to measure the redundant
  // recompute cost (see tangle/view_cache.hpp).
  bool use_view_cache = true;

  // Cache loss-probe results across probes and rounds in the shared eval
  // engine (see core/eval_engine.hpp). Losses are pure functions of
  // (params, split), so outputs are byte-identical either way; disable
  // only to measure the redundant re-evaluation cost.
  bool use_eval_cache = true;
  // Batched multi-model candidate probes (EvalEngineConfig::use_batched):
  // off replays the exact per-probe serial path. Outputs are byte-identical
  // either way.
  bool use_eval_batch = true;

  // Paper: "we set the number of sampling rounds for establishing the
  // consensus and for selecting the parent tips for training equal to the
  // number of active nodes per round". When true, confidence sampling
  // rounds are forced to nodes_per_round (health probes included).
  bool auto_confidence_samples = true;

  // Publish-path payload codec (see tangle/payload_codec.hpp): every
  // published payload is replaced by its canonical decoded form
  // decode(encode(payload)), so the ledger holds exactly the bytes any
  // decoder reconstructs, and codec.chunk switches the ModelStore to
  // content-defined chunk dedup. Every stage defaults off; with only
  // lossless stages on, outputs stay byte-identical to codec-off runs.
  tangle::PayloadCodecConfig codec;

  // Milestone pruning (see tangle/milestones.hpp): at every prune.interval
  // round barriers the engine looks for a transaction approved by every
  // current tip, freezes the cone below it, and releases frozen ModelStore
  // payloads. Bounds walk depth and payload memory for long runs at the
  // cost of the documented frozen-history approximations. Requires
  // use_view_cache (walk roots ride on cache entries); disabled (the
  // default), every output stays byte-identical to prior versions.
  tangle::MilestoneConfig prune;

  // Optional per-round time-series sink (see obs/timeline.hpp). When set,
  // the engine probes DAG health (tips, orphans, approval depth,
  // first-approval / confirmation latency) and snapshots registry deltas
  // at every round barrier; null keeps all probing off. The pointed-to
  // timeline must outlive the run.
  obs::Timeline* timeline = nullptr;
  tangle::HealthConfig health;
};

class TangleSimulation {
 public:
  /// The dataset and factory must outlive the simulation.
  TangleSimulation(const data::FederatedDataset& dataset,
                   nn::ModelFactory factory, SimulationConfig config);

  /// Runs all configured rounds; returns the evaluation history.
  RunResult run();

  /// Advances one round (rounds are 1-based; call with consecutive values).
  /// Returns the number of transactions published this round.
  std::size_t run_round(std::uint64_t round);

  /// Evaluates the current consensus model on pooled test data of a random
  /// node subset, as the paper does between training rounds.
  RoundRecord evaluate(std::uint64_t round);

  const tangle::Tangle& tangle() const noexcept { return tangle_; }
  const tangle::ModelStore& store() const noexcept { return store_; }
  const std::vector<std::size_t>& malicious_users() const noexcept {
    return malicious_users_;
  }

  /// Consensus parameters right now (Algorithm 1 over the full ledger).
  nn::ParamVector consensus_params();

  /// Shared evaluation engine (loss cache + model pool), exposed for tests.
  EvalEngine& eval_engine() noexcept { return eval_engine_; }

 private:
  bool attack_active(std::uint64_t round) const noexcept;
  bool is_malicious(std::size_t user) const noexcept;

  /// Runs the DAG health probe over the full ledger (timeline mode only).
  void probe_health(std::uint64_t round);

  /// Full Algorithm 1 result over the current ledger (transactions,
  /// payload ids, averaged params) — consensus_params() returns its params.
  ReferenceResult consensus_reference();

  const data::FederatedDataset* dataset_;
  nn::ModelFactory factory_;
  SimulationConfig config_;
  Rng master_rng_;
  tangle::ModelStore store_;
  tangle::Tangle tangle_;
  ThreadPool pool_;
  // Intra-node kernel pool, shared by all node steps (parallel_for is safe
  // to call from concurrent node steps). Null when kernel_threads <= 1.
  std::unique_ptr<ThreadPool> kernel_pool_;
  // Round views are strict prefixes that grow monotonically, so a couple
  // of slots cover the live round view plus the full eval view.
  tangle::ViewCache view_cache_{4};
  // Shared loss-probe engine: payload-loss cache, model pool, pre-batched
  // validation splits. All node steps and round-record evals go through it.
  EvalEngine eval_engine_;
  tangle::MilestoneTracker pruner_;
  // Publish-path codec driver; pass-through when no wire stage is on.
  tangle::PayloadPipeline payload_pipeline_{config_.codec};

  // Timeline mode (config_.timeline != nullptr) only; null otherwise so
  // the default path pays nothing for the probes.
  std::unique_ptr<tangle::HealthTracker> health_;
  std::unique_ptr<obs::RegistrySampler> timeline_sampler_;

  std::vector<std::size_t> malicious_users_;    // sorted user indices
  std::vector<data::UserData> poisoned_users_;  // parallel to malicious_users_

  double last_publish_rate_ = 0.0;
  // Accumulated every round, so evaluate() reports complete publish series
  // even when eval_every samples only a subset of rounds.
  std::uint64_t published_total_ = 0;
  std::uint64_t suppressed_total_ = 0;
};

/// Convenience wrapper: construct, run, and label a simulation.
RunResult run_tangle_learning(const data::FederatedDataset& dataset,
                              nn::ModelFactory factory,
                              const SimulationConfig& config,
                              std::string label = "tangle");

}  // namespace tanglefl::core
