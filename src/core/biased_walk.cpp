#include "core/biased_walk.hpp"

#include <algorithm>
#include <cmath>

#include "core/eval_engine.hpp"
#include "obs/metrics.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::core {
namespace {

// Shares the plain walk's statistics namespace: biased walks are still tip
// selection walks, just with an extra loss term in the bias.
obs::Counter& biased_walk_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.biased_count");
  return counter;
}

obs::Histogram& biased_walk_length_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.tip_walk.length", obs::BucketLayout::exponential(1.0, 2.0, 14));
  return hist;
}

obs::Counter& walk_loss_eval_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.loss_evals");
  return counter;
}

}  // namespace

double LocalLossCache::loss(const tangle::TangleView& view,
                            tangle::TxIndex index) {
  if (const auto it = cache_.find(index); it != cache_.end()) {
    return it->second;
  }
  double value = 0.0;
  if (engine_ != nullptr) {
    if (batched_ != nullptr) {
      const EvalOutcome outcome = engine_->payload_eval(
          *store_, view.tangle().transaction(index).payload, *batched_);
      value = outcome.result.loss;
      if (!outcome.cache_hit) {
        ++evaluations_;
        walk_loss_eval_counter().increment();
      }
    }
    // else: no data to bias with; degenerate to structural walk
  } else if (validation_->empty()) {
    value = 0.0;  // no data to bias with; degenerate to structural walk
  } else {
    nn::Model model = (*factory_)();
    model.set_parameters(
        store_->get(view.tangle().transaction(index).payload));
    value = data::evaluate(model, *validation_).loss;
    ++evaluations_;
    walk_loss_eval_counter().increment();
  }
  cache_.emplace(index, value);
  return value;
}

void LocalLossCache::prefetch(const tangle::TangleView& view,
                              std::span<const tangle::TxIndex> indices) {
  if (engine_ == nullptr || batched_ == nullptr) return;
  std::vector<tangle::TxIndex> pending;
  std::vector<tangle::PayloadId> payloads;
  for (const tangle::TxIndex index : indices) {
    if (cache_.find(index) != cache_.end()) continue;
    pending.push_back(index);
    payloads.push_back(view.tangle().transaction(index).payload);
  }
  if (pending.empty()) return;
  // One group per branch: the engine resolves payload-cache hits up front
  // and fuses the misses. Distinct transactions sharing a payload memoize
  // the same loss, exactly as serial probes would via the payload cache.
  const std::vector<EvalOutcome> outcomes =
      engine_->payloads_eval_many(*store_, payloads, *batched_, pool_);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    cache_.emplace(pending[i], outcomes[i].result.loss);
    if (!outcomes[i].cache_hit) {
      ++evaluations_;
      walk_loss_eval_counter().increment();
    }
  }
}

namespace {

/// Core biased walk; `approvers_of(index)` must yield in-view approvers in
/// ascending order so the cached and direct paths consume the RNG
/// identically (see tangle/tip_selection.cpp for the same pattern).
template <typename ApproversFn>
tangle::TxIndex biased_walk_to_tip(const tangle::TangleView& view,
                                   tangle::TxIndex start,
                                   std::span<const std::uint32_t> future_cones,
                                   ApproversFn&& approvers_of,
                                   LocalLossCache& cache, Rng& rng,
                                   const BiasedWalkConfig& config) {
  biased_walk_counter().increment();
  // Prune frontier under milestone pruning, genesis otherwise; loss probes
  // only ever touch approvers of walked nodes, which all lie in the live
  // window, so released payloads are never fetched.
  tangle::TxIndex current = start;
  std::vector<double> weights;
  std::uint64_t steps = 0;
  for (;;) {
    const auto approvers = approvers_of(current);
    if (approvers.empty()) {
      biased_walk_length_histogram().record(static_cast<double>(steps));
      return current;
    }
    ++steps;
    if (approvers.size() == 1) {
      current = approvers.front();
      continue;
    }

    // Normalize both terms against the branch optimum for stability.
    // Group-probe the branch first: every approver's loss is needed below,
    // and one fused evaluation beats per-approver standalone forwards.
    if (config.beta != 0.0) cache.prefetch(view, approvers);
    std::uint32_t max_weight = 0;
    double min_loss = 1e300;
    for (const tangle::TxIndex a : approvers) {
      max_weight = std::max(max_weight, future_cones[a]);
      if (config.beta != 0.0) {
        min_loss = std::min(min_loss, cache.loss(view, a));
      }
    }
    weights.clear();
    for (const tangle::TxIndex a : approvers) {
      double exponent = config.alpha * (static_cast<double>(future_cones[a]) -
                                        static_cast<double>(max_weight));
      if (config.beta != 0.0) {
        exponent -= config.beta * (cache.loss(view, a) - min_loss);
      }
      weights.push_back(std::exp(exponent));
    }
    current = approvers[rng.weighted_choice(weights)];
  }
}

}  // namespace

tangle::TxIndex biased_random_walk_tip(
    const tangle::TangleView& view,
    std::span<const std::uint32_t> future_cones, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config) {
  return biased_walk_to_tip(
      view, view.tangle().prune_floor(), future_cones,
      [&view](tangle::TxIndex i) { return view.approvers(i); }, cache, rng,
      config);
}

tangle::TxIndex biased_random_walk_tip(const tangle::TangleView& view,
                                       const tangle::ViewCacheEntry& cones,
                                       LocalLossCache& cache, Rng& rng,
                                       const BiasedWalkConfig& config) {
  return biased_walk_to_tip(
      view, cones.root(), cones.future_cone_sizes(),
      [&cones](tangle::TxIndex i) { return cones.approvers(i); }, cache, rng,
      config);
}

std::vector<tangle::TxIndex> biased_select_tips(
    const tangle::TangleView& view, std::size_t count, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config) {
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  std::vector<tangle::TxIndex> tips;
  tips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(
        biased_random_walk_tip(view, future_cones, cache, rng, config));
  }
  return tips;
}

std::vector<tangle::TxIndex> biased_select_tips(
    const tangle::TangleView& view, const tangle::ViewCacheEntry& cones,
    std::size_t count, LocalLossCache& cache, Rng& rng,
    const BiasedWalkConfig& config) {
  std::vector<tangle::TxIndex> tips;
  tips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(biased_random_walk_tip(view, cones, cache, rng, config));
  }
  return tips;
}

}  // namespace tanglefl::core
