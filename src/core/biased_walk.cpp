#include "core/biased_walk.hpp"

#include <algorithm>
#include <cmath>

namespace tanglefl::core {

double LocalLossCache::loss(const tangle::TangleView& view,
                            tangle::TxIndex index) {
  if (const auto it = cache_.find(index); it != cache_.end()) {
    return it->second;
  }
  double value = 0.0;
  if (validation_->empty()) {
    value = 0.0;  // no data to bias with; degenerate to structural walk
  } else {
    nn::Model model = (*factory_)();
    model.set_parameters(
        store_->get(view.tangle().transaction(index).payload));
    value = data::evaluate(model, *validation_).loss;
    ++evaluations_;
  }
  cache_.emplace(index, value);
  return value;
}

tangle::TxIndex biased_random_walk_tip(
    const tangle::TangleView& view,
    std::span<const std::uint32_t> future_cones, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config) {
  tangle::TxIndex current = view.tangle().genesis();
  std::vector<double> weights;
  for (;;) {
    const std::vector<tangle::TxIndex> approvers = view.approvers(current);
    if (approvers.empty()) return current;
    if (approvers.size() == 1) {
      current = approvers.front();
      continue;
    }

    // Normalize both terms against the branch optimum for stability.
    std::uint32_t max_weight = 0;
    double min_loss = 1e300;
    for (const tangle::TxIndex a : approvers) {
      max_weight = std::max(max_weight, future_cones[a]);
      if (config.beta != 0.0) {
        min_loss = std::min(min_loss, cache.loss(view, a));
      }
    }
    weights.clear();
    for (const tangle::TxIndex a : approvers) {
      double exponent = config.alpha * (static_cast<double>(future_cones[a]) -
                                        static_cast<double>(max_weight));
      if (config.beta != 0.0) {
        exponent -= config.beta * (cache.loss(view, a) - min_loss);
      }
      weights.push_back(std::exp(exponent));
    }
    current = approvers[rng.weighted_choice(weights)];
  }
}

std::vector<tangle::TxIndex> biased_select_tips(
    const tangle::TangleView& view, std::size_t count, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config) {
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  std::vector<tangle::TxIndex> tips;
  tips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(
        biased_random_walk_tip(view, future_cones, cache, rng, config));
  }
  return tips;
}

}  // namespace tanglefl::core
