#include "core/simulation.hpp"

#include <algorithm>
#include <cassert>

#include "core/rng_streams.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tanglefl::core {
namespace {

// Engine-level publish accounting: every round contributes (not only eval
// rounds), so the publish/suppress series is complete.
obs::Counter& rounds_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("sim.rounds");
  return counter;
}

obs::Counter& published_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("sim.published");
  return counter;
}

obs::Counter& published_malicious_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("sim.published.malicious");
  return counter;
}

obs::Counter& suppressed_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("sim.suppressed");
  return counter;
}

obs::Gauge& ledger_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("sim.ledger_bytes");
  return gauge;
}

nn::ParamVector make_genesis_params(const nn::ModelFactory& factory,
                                    Rng rng) {
  nn::Model model = factory();
  model.init(rng);
  return model.get_parameters();
}

EvalEngineConfig eval_engine_config(bool use_cache, bool use_batched) {
  EvalEngineConfig config;
  config.use_cache = use_cache;
  config.use_batched = use_batched;
  return config;
}

}  // namespace

TangleSimulation::TangleSimulation(const data::FederatedDataset& dataset,
                                   nn::ModelFactory factory,
                                   SimulationConfig config)
    : dataset_(&dataset),
      factory_(std::move(factory)),
      config_(config),
      master_rng_(config.seed),
      store_(),
      tangle_([&] {
        // Chunking must be configured before the first payload lands.
        if (config.codec.chunk) {
          store_.configure_chunking(tangle::ChunkParams{});
        }
        // Genesis payload: a randomly initialized model every node starts
        // from.
        const auto added = store_.add(make_genesis_params(
            factory_, master_rng_.split(streams::kGenesis)));
        return tangle::Tangle(added.id, added.hash);
      }()),
      pool_(std::max<std::size_t>(1, config.threads)),
      kernel_pool_(config.kernel_threads > 1
                       ? std::make_unique<ThreadPool>(config.kernel_threads)
                       : nullptr),
      eval_engine_(factory_,
                   eval_engine_config(config.use_eval_cache,
                                      config.use_eval_batch)),
      pruner_(config.prune) {
  if (config_.auto_confidence_samples) {
    config_.node.reference.confidence.sample_rounds = config_.nodes_per_round;
    config_.health.confidence.sample_rounds = config_.nodes_per_round;
  }
  if (config_.timeline != nullptr) {
    health_ = std::make_unique<tangle::HealthTracker>(config_.health);
    timeline_sampler_ = std::make_unique<obs::RegistrySampler>();
  }

  // Declare a fixed random subset of users malicious.
  const std::size_t num_users = dataset_->num_users();
  const auto malicious_count = static_cast<std::size_t>(
      config_.malicious_fraction * static_cast<double>(num_users) + 0.5);
  if (malicious_count > 0 && config_.attack != AttackType::kNone) {
    Rng rng = master_rng_.split(streams::kMalicious);
    malicious_users_ =
        rng.sample_without_replacement(num_users, malicious_count);
    std::sort(malicious_users_.begin(), malicious_users_.end());
    if (config_.attack == AttackType::kLabelFlip) {
      poisoned_users_.reserve(malicious_users_.size());
      for (const std::size_t u : malicious_users_) {
        poisoned_users_.push_back(
            data::make_label_flip_user(dataset_->user(u), config_.flip));
      }
    }
  }
}

bool TangleSimulation::attack_active(std::uint64_t round) const noexcept {
  return config_.attack != AttackType::kNone &&
         round >= config_.attack_start_round && !malicious_users_.empty();
}

bool TangleSimulation::is_malicious(std::size_t user) const noexcept {
  return std::binary_search(malicious_users_.begin(), malicious_users_.end(),
                            user);
}

void TangleSimulation::probe_health(std::uint64_t round) {
  const tangle::TangleView view = tangle_.view();
  const std::shared_ptr<const tangle::ViewCacheEntry> cones =
      config_.use_view_cache ? view_cache_.get(view, &pool_) : nullptr;
  // Dedicated stream: probing must never perturb simulation randomness, so
  // timeline runs stay bit-identical to probe-free runs.
  Rng rng = master_rng_.split(streams::kHealth).split(round);
  health_->sample(view, cones.get(), round, rng);
}

std::size_t TangleSimulation::run_round(std::uint64_t round) {
  obs::TraceScope span("sim.round");
  // Samples registry deltas into the timeline when the round body closes,
  // after the health probe below has refreshed the health gauges.
  std::optional<obs::RoundScope> round_scope;
  if (config_.timeline != nullptr) {
    round_scope.emplace(*timeline_sampler_, *config_.timeline, round);
  }
  assert(round >= 1);
  const std::size_t num_users = dataset_->num_users();
  const std::size_t participants =
      std::min(config_.nodes_per_round, num_users);

  Rng selection_rng = master_rng_.split(streams::kParticipant).split(round);
  const std::vector<std::size_t> chosen =
      selection_rng.sample_without_replacement(num_users, participants);

  const tangle::TangleView view =
      tangle_.view_prefix(tangle_.visible_count_for_round(round));
  // One cone computation for the whole round, shared read-only by every
  // participant, instead of one per node step.
  const std::shared_ptr<const tangle::ViewCacheEntry> cones =
      config_.use_view_cache ? view_cache_.get(view, &pool_) : nullptr;
  const bool attacking = attack_active(round);

  struct SlotResult {
    std::optional<PublishRequest> publish;
    bool malicious = false;
  };
  std::vector<SlotResult> results(participants);

  pool_.parallel_for(participants, [&](std::size_t slot) {
    const std::size_t user_index = chosen[slot];
    const bool malicious = attacking && is_malicious(user_index);
    results[slot].malicious = malicious;

    NodeContext context{view, store_, factory_, round,
                        master_rng_.split(streams::kNode)
                            .split(round)
                            .split(user_index + 1),
                        cones, kernel_pool_.get(), &eval_engine_};

    if (!malicious) {
      HonestNode node(config_.node);
      results[slot].publish = node.step(context, dataset_->user(user_index));
      return;
    }
    switch (config_.attack) {
      case AttackType::kRandomPoison: {
        RandomPoisonNode node(config_.node);
        results[slot].publish =
            node.step(context, dataset_->user(user_index));
        break;
      }
      case AttackType::kLabelFlip: {
        const auto it = std::lower_bound(malicious_users_.begin(),
                                         malicious_users_.end(), user_index);
        const auto offset =
            static_cast<std::size_t>(it - malicious_users_.begin());
        LabelFlipNode node(config_.node);
        results[slot].publish =
            node.step(context, poisoned_users_[offset]);
        break;
      }
      case AttackType::kBackdoor: {
        BackdoorNode node(config_.node, config_.trigger,
                          config_.backdoor_boost,
                          config_.backdoor_data_fraction);
        results[slot].publish =
            node.step(context, dataset_->user(user_index));
        break;
      }
      case AttackType::kNone:
        break;
    }
  });

  // Round barrier: everything published this round lands in the ledger
  // now and becomes visible from round + 1 on.
  std::size_t published = 0;
  std::size_t honest_published = 0;
  std::size_t honest_participants = 0;
  std::size_t malicious_published = 0;
  for (std::size_t slot = 0; slot < participants; ++slot) {
    auto& result = results[slot];
    if (!result.malicious) ++honest_participants;
    if (!result.publish) continue;
    const auto added = store_.add(payload_pipeline_.process(
        std::move(result.publish->params), result.publish->parents, tangle_,
        store_));
    tangle_.add_transaction(result.publish->parents, added.id, added.hash,
                            round,
                            result.malicious
                                ? "malicious"
                                : dataset_->user(chosen[slot]).user_id);
    ++published;
    if (result.malicious) ++malicious_published;
    else ++honest_published;
  }
  last_publish_rate_ =
      honest_participants > 0
          ? static_cast<double>(honest_published) /
                static_cast<double>(honest_participants)
          : 0.0;

  const std::size_t suppressed = participants - published;
  published_total_ += published;
  suppressed_total_ += suppressed;
  rounds_counter().increment();
  published_counter().add(published);
  published_malicious_counter().add(malicious_published);
  suppressed_counter().add(suppressed);
  // Milestone pruning at the round barrier: every participant of this round
  // already trained, and the frontier only ever advances onto history every
  // later view contains. Walk roots come from cache entries, so pruning
  // requires the view cache.
  if (config_.prune.enabled && config_.use_view_cache && pruner_.tick()) {
    const tangle::TangleView full = tangle_.view();
    pruner_.advance(tangle_, store_, *view_cache_.get(full, &pool_));
  }
  ledger_bytes_gauge().set(static_cast<double>(store_.live_bytes()));
  if (config_.timeline != nullptr) probe_health(round);
  return published;
}

ReferenceResult TangleSimulation::consensus_reference() {
  // kConsensus, not kEval: consensus walks and eval-user sampling used to
  // share the kEval root, colliding whenever tangle_.size() == round (see
  // core/rng_streams.hpp).
  Rng rng = master_rng_.split(streams::kConsensus).split(tangle_.size());
  const tangle::TangleView view = tangle_.view();
  return config_.use_view_cache
             ? choose_reference(view, store_, *view_cache_.get(view, &pool_),
                                rng, config_.node.reference)
             : choose_reference(view, store_, rng, config_.node.reference);
}

nn::ParamVector TangleSimulation::consensus_params() {
  return consensus_reference().params;
}

RoundRecord TangleSimulation::evaluate(std::uint64_t round) {
  obs::TraceScope span("sim.evaluate");
  RoundRecord record;
  record.round = round;
  record.tangle_size = tangle_.size();
  record.tip_count =
      config_.use_view_cache
          ? view_cache_.get(tangle_.view(), &pool_)->tips().size()
          : tangle_.view().tips().size();
  record.publish_rate = last_publish_rate_;
  record.published_cumulative = published_total_;
  record.suppressed_cumulative = suppressed_total_;
  record.ledger_bytes = store_.live_bytes();
  ledger_bytes_gauge().set(static_cast<double>(record.ledger_bytes));

  // Pool the test data of a random eval_nodes_fraction of all users.
  const std::size_t num_users = dataset_->num_users();
  const auto eval_users = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.eval_nodes_fraction *
                                  static_cast<double>(num_users) +
                                  0.5));
  Rng eval_rng = master_rng_.split(streams::kEval).split(round);
  const std::vector<std::size_t> users =
      eval_rng.sample_without_replacement(num_users, eval_users);
  const data::DataSplit pooled = dataset_->pooled_test(users);
  if (pooled.empty()) return record;

  // Consensus eval via the engine: the pooled split is batched once per
  // eval round, the model comes from the pool, and the (reference payload
  // list, split) result caches — a repeat eval of an unchanged consensus
  // model on the same eval users costs no forward passes.
  const ReferenceResult reference = consensus_reference();
  const std::shared_ptr<const BatchedSplit> prepared =
      eval_engine_.prepare(pooled);
  const EvalRequest request{reference.params, ParamsKey{reference.payloads}};
  const data::EvalResult eval =
      eval_engine_
          .evaluate_many(std::span<const EvalRequest>(&request, 1), *prepared,
                         kernel_pool_.get())
          .front()
          .result;
  record.accuracy = eval.accuracy;
  record.loss = eval.loss;
  // The attack metrics run direct forwards over transformed inputs, so they
  // still need a concrete model instance carrying the reference weights.
  EvalEngine::ModelLease lease = eval_engine_.acquire();
  lease.model().set_parameters(reference.params);
  record.target_misclassification = data::targeted_misclassification_rate(
      lease.model(), pooled, config_.flip.source_class,
      config_.flip.target_class);
  if (config_.attack == AttackType::kBackdoor) {
    record.backdoor_success =
        data::backdoor_success_rate(lease.model(), pooled, config_.trigger);
  }
  return record;
}

RunResult TangleSimulation::run() {
  RunResult result;
  result.label = "tangle";
  for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
    const std::size_t published = run_round(round);
    if (round % config_.eval_every == 0 || round == config_.rounds) {
      const RoundRecord record = evaluate(round);
      result.history.push_back(record);
      log_info() << "tangle round " << round << ": acc="
                 << record.accuracy << " loss=" << record.loss
                 << " tx=" << record.tangle_size
                 << " tips=" << record.tip_count
                 << " published=" << published
                 << " published_total=" << record.published_cumulative
                 << " suppressed_total=" << record.suppressed_cumulative;
    }
  }
  return result;
}

RunResult run_tangle_learning(const data::FederatedDataset& dataset,
                              nn::ModelFactory factory,
                              const SimulationConfig& config,
                              std::string label) {
  if (config.timeline != nullptr) config.timeline->begin_run(label);
  TangleSimulation simulation(dataset, std::move(factory), config);
  RunResult result = simulation.run();
  result.label = std::move(label);
  return result;
}

}  // namespace tanglefl::core
