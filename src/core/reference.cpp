#include "core/reference.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "tangle/view_cache.hpp"

namespace tanglefl::core {
namespace {

ReferenceResult choose_reference_impl(const tangle::TangleView& view,
                                      const tangle::ModelStore& store,
                                      std::vector<double> confidences,
                                      std::vector<double> ratings,
                                      const ReferenceConfig& config) {
  // Priority queue over confidence * rating, exactly as in Algorithm 1.
  // Ties (e.g. the all-zero priorities right after genesis) resolve to the
  // newest transaction so early rounds track fresh training results.
  using Entry = std::pair<double, tangle::TxIndex>;
  std::priority_queue<Entry> queue;
  for (tangle::TxIndex i = 0; i < view.size(); ++i) {
    queue.emplace(confidences[i] * ratings[i], i);
  }

  const std::size_t take =
      std::max<std::size_t>(1, std::min(config.num_reference_models,
                                        view.size()));
  ReferenceResult result;
  std::vector<const nn::ParamVector*> payloads;
  while (result.transactions.size() < take && !queue.empty()) {
    const auto [priority, index] = queue.top();
    queue.pop();
    (void)priority;
    result.transactions.push_back(index);
    payloads.push_back(&store.get(view.tangle().transaction(index).payload));
  }
  result.params = nn::average_params(payloads);
  return result;
}

}  // namespace

ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store, Rng& rng,
                                 const ReferenceConfig& config) {
  assert(view.size() > 0);
  return choose_reference_impl(
      view, store, tangle::compute_confidences(view, rng, config.confidence),
      tangle::compute_ratings(view), config);
}

ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store,
                                 const tangle::ViewCacheEntry& cones, Rng& rng,
                                 const ReferenceConfig& config) {
  assert(view.size() > 0);
  return choose_reference_impl(
      view, store,
      tangle::compute_confidences(view, cones, rng, config.confidence),
      tangle::compute_ratings(cones), config);
}

}  // namespace tanglefl::core
